"""Design-choice ablation: the DFS/SFS mixing weight gamma (Eq. 26).

The paper fixes the mixing form but not gamma's value; DESIGN.md
defaults it to 0.5.  This bench sweeps gamma to document sensitivity.
"""

from conftest import print_metric_rows

from repro.experiments.common import run_model


def test_gamma_sweep(benchmark, budget):
    dataset = budget.dataset("beauty")

    def sweep():
        return {
            f"gamma={g}": run_model("SLIME4Rec", dataset, budget, gamma=g)
            for g in (0.0, 0.25, 0.5, 0.75, 1.0)
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_metric_rows("gamma ablation (beauty)", rows)
    assert all(0 <= m["HR@5"] <= 1 for m in rows.values())
