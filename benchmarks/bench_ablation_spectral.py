"""Design-choice ablation: fused FFT op vs DFT-matmul reference.

DESIGN.md calls out the fused rFFT implementation as a performance
choice; this bench quantifies the speedup and re-checks exactness at
benchmark scale.
"""

import numpy as np

from repro.autograd.spectral import (
    num_frequency_bins,
    spectral_filter,
    spectral_filter_reference,
)
from repro.autograd.tensor import Tensor


def _inputs(n=64, d=64, batch=64):
    rng = np.random.default_rng(0)
    m = num_frequency_bins(n)
    x = Tensor(rng.normal(size=(batch, n, d)).astype(np.float32), requires_grad=True)
    wr = Tensor(rng.normal(size=(m, d)).astype(np.float32), requires_grad=True)
    wi = Tensor(rng.normal(size=(m, d)).astype(np.float32), requires_grad=True)
    mask = np.ones(m, dtype=np.float32)
    return x, wr, wi, mask


def test_fused_spectral_op(benchmark):
    x, wr, wi, mask = _inputs()

    def run():
        out = spectral_filter(x, wr, wi, mask)
        out.sum().backward()
        return out

    benchmark(run)


def test_reference_spectral_op(benchmark):
    x, wr, wi, mask = _inputs()

    def run():
        out = spectral_filter_reference(x, wr, wi, mask)
        out.sum().backward()
        return out

    benchmark(run)


def test_fused_equals_reference_at_benchmark_scale():
    x, wr, wi, mask = _inputs()
    fast = spectral_filter(x, wr, wi, mask)
    ref = spectral_filter_reference(x, wr, wi, mask)
    assert np.allclose(fast.data, ref.data, atol=1e-3)  # float32 tolerance
