#!/usr/bin/env python
"""Checkpoint-every-epoch vs never: what does crash safety cost?

The fault-tolerant runtime archives the complete run state (model
parameters, Adam moments, best-validation snapshot, every RNG stream,
history) into a rotated, checksummed store with atomic fsync-ed writes.
This benchmark answers the question that decides whether to leave it on
by default: how much does an epoch-boundary checkpoint add to training
wall time?

Two identical trainers run on the same dataset, interleaved epoch by
epoch (A/B/A/B, cancelling thermal/cache drift): one saves a full
run-state checkpoint at every epoch boundary, one never saves.  The
save time is *included* in the checkpointing variant's epoch wall time
— amortized checkpoint cost is exactly what the comparison is about —
and also reported separately.  Writes:

- ``benchmarks/results/checkpoint_overhead.json`` — the committed
  comparison record;
- one ``variant``-tagged line per variant (``ckpt_never`` /
  ``ckpt_epoch``) to ``benchmarks/results/step_time_history.jsonl``
  (skipped with ``--no-record`` or ``PERF_SMOKE_NO_RECORD=1``).  The
  perf-smoke rolling-median gate compares strictly within a variant,
  so these lines never contaminate the default-geometry baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_checkpoint_overhead.py
    PYTHONPATH=src python benchmarks/bench_checkpoint_overhead.py --epochs 5
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUT_PATH = RESULTS_DIR / "checkpoint_overhead.json"
HISTORY_PATH = RESULTS_DIR / "step_time_history.jsonl"


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="beauty")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--max-len", type=int, default=32)
    parser.add_argument("--hidden-dim", type=int, default=64)
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--dtype", choices=("float32", "float64"), default="float32")
    parser.add_argument("--epochs", type=int, default=5,
                        help="interleaved epochs timed per variant")
    parser.add_argument("--keep-last", type=int, default=3)
    parser.add_argument("--no-record", action="store_true",
                        help="do not append history lines")
    return parser


def make_trainer(args, dataset, checkpoint_dir):
    from repro.baselines import build_baseline
    from repro.train import TrainConfig, Trainer

    model = build_baseline(
        "SLIME4Rec", dataset,
        hidden_dim=args.hidden_dim, seed=0, dtype=args.dtype,
    )
    config = TrainConfig(
        epochs=args.epochs,
        batch_size=args.batch_size,
        checkpoint_dir=checkpoint_dir,
        keep_last=args.keep_last,
    )
    return Trainer(model, dataset, config, with_same_target=True)


def run_epoch(trainer, epoch):
    """One training epoch (plus the boundary save when a store exists).

    Returns ``(epoch_seconds, save_seconds)``; the save time is a
    subset of the epoch time, not an addition to it.
    """
    trainer.model.train()
    start = time.perf_counter()
    for batch in trainer.iterator.epoch():
        trainer._train_step(batch)
    trainer.history.losses.append(float(np.mean(trainer._epoch_losses)))
    trainer._epoch_losses = []
    trainer._epoch = epoch + 1
    save_s = 0.0
    if trainer.store is not None:
        save_start = time.perf_counter()
        trainer._save_run_state()
        save_s = time.perf_counter() - save_start
    return time.perf_counter() - start, save_s


def main() -> int:
    args = build_parser().parse_args()

    from repro.data.synthetic import load_preset

    dataset = load_preset(args.dataset, scale=args.scale, max_len=args.max_len)

    with tempfile.TemporaryDirectory(prefix="ckpt-bench-") as tmp:
        trainers = {
            "ckpt_never": make_trainer(args, dataset, None),
            "ckpt_epoch": make_trainer(args, dataset, tmp),
        }
        steps_per_epoch = len(trainers["ckpt_never"].iterator)

        for trainer in trainers.values():
            run_epoch(trainer, 0)  # untimed warmup (caches, allocator)

        epoch_s: dict[str, list[float]] = {name: [] for name in trainers}
        save_s: dict[str, list[float]] = {name: [] for name in trainers}
        for epoch in range(1, args.epochs + 1):  # interleaved A/B/A/B
            for name, trainer in trainers.items():
                seconds, save = run_epoch(trainer, epoch)
                epoch_s[name].append(seconds)
                save_s[name].append(save)

        archive_bytes = sum(
            p.stat().st_size for p in Path(tmp).glob("ckpt-*.npz")
        ) // max(1, len(list(Path(tmp).glob("ckpt-*.npz"))))

    summary = {}
    for name in trainers:
        per_step_ms = np.asarray(epoch_s[name]) / steps_per_epoch * 1000.0
        summary[name] = {
            "min_step_ms": round(float(per_step_ms.min()), 2),
            "median_step_ms": round(float(np.median(per_step_ms)), 2),
            "total_s": round(float(np.sum(epoch_s[name])), 2),
            "save_ms_median": round(float(np.median(save_s[name])) * 1000.0, 2),
        }
        print(f"[{name:>10}] min {summary[name]['min_step_ms']:8.2f} ms/step  "
              f"median {summary[name]['median_step_ms']:8.2f} ms/step  "
              f"save {summary[name]['save_ms_median']:7.2f} ms/epoch")
    overhead = (
        summary["ckpt_epoch"]["min_step_ms"] / summary["ckpt_never"]["min_step_ms"]
        - 1.0
    ) * 100.0
    print(f"epoch-boundary checkpointing overhead: {overhead:+.1f}% per step "
          f"({steps_per_epoch} steps/epoch, ~{archive_bytes / 1024:.0f} KiB/archive, "
          f"{args.dtype})")

    record = {
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git": _git_revision(),
        "dtype": args.dtype,
        "dataset": args.dataset,
        "scale": args.scale,
        "max_len": args.max_len,
        "hidden_dim": args.hidden_dim,
        "batch_size": args.batch_size,
        "epochs": args.epochs,
        "steps_per_epoch": steps_per_epoch,
        "archive_bytes": int(archive_bytes),
        "model": "SLIME4Rec",
        "overhead_pct": round(overhead, 1),
        "variants": summary,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"comparison record written to {OUT_PATH}")

    if not args.no_record and not os.environ.get("PERF_SMOKE_NO_RECORD"):
        with HISTORY_PATH.open("a", encoding="utf-8") as fh:
            for name in trainers:
                fh.write(json.dumps({
                    "date": record["date"],
                    "git": record["git"],
                    "dtype": args.dtype,
                    "variant": name,
                    "step_ms": summary[name]["min_step_ms"],
                    "dataset": args.dataset,
                    "scale": args.scale,
                    "max_len": args.max_len,
                    "hidden_dim": args.hidden_dim,
                    "batch_size": args.batch_size,
                    "model": "SLIME4Rec",
                }) + "\n")
        print(f"variant-tagged step-time records appended to {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
