"""Section III-F: filter mixer vs self-attention runtime scaling."""

from repro.experiments import run_complexity_comparison


def test_complexity_scaling(benchmark):
    results = benchmark.pedantic(
        run_complexity_comparison,
        kwargs={"seq_lens": (16, 32, 64, 128), "repeats": 2},
        rounds=1,
        iterations=1,
    )
    print("\n=== Section III-F complexity (ms per layer fwd+bwd) ===")
    print(f"{'N':>6} {'filter_mixer':>14} {'self_attention':>16}")
    for n in sorted(results["filter_mixer"]):
        print(f"{n:>6} {results['filter_mixer'][n]:>14.2f} {results['self_attention'][n]:>16.2f}")
    # Shape check: attention's cost must grow faster with N than the
    # filter mixer's (O(N^2) vs O(N log N)).
    fm = results["filter_mixer"]
    sa = results["self_attention"]
    fm_growth = fm[128] / fm[16]
    sa_growth = sa[128] / sa[16]
    assert sa_growth > fm_growth, (fm_growth, sa_growth)
