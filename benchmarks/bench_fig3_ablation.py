"""Figure 3: ablation of contrastive learning and the two filter modules."""

from conftest import print_metric_rows

from repro.experiments import run_fig3_ablation


def test_fig3_ablation(benchmark, budget):
    rows = benchmark.pedantic(run_fig3_ablation, args=(budget,), rounds=1, iterations=1)
    print_metric_rows("Figure 3 ablation", rows)
    # Shape check: the full model should not be dominated by every variant.
    for ds_name in budget.dataset_names():
        full = rows[f"{ds_name}/SLIME4Rec"]["HR@5"]
        variants = [rows[f"{ds_name}/{v}"]["HR@5"] for v in ("w/oC", "w/oD", "w/oS")]
        assert full >= min(variants) * 0.8
