"""Figure 4: dynamic filter size ratio alpha sweep vs DuoRec."""

from conftest import print_metric_rows

from repro.experiments import run_fig4_alpha_sweep


def test_fig4_alpha_sweep(benchmark, budget):
    rows = benchmark.pedantic(
        run_fig4_alpha_sweep,
        args=(budget,),
        kwargs={"alphas": (0.1, 0.4, 0.7, 1.0)},
        rounds=1,
        iterations=1,
    )
    print_metric_rows("Figure 4 alpha sweep", rows)
    assert all(0 <= m["HR@5"] <= 1 for m in rows.values())
