"""Figure 5: sensitivity to input sequence length N and hidden size d."""

from conftest import print_metric_rows

from repro.experiments import run_fig5_seqlen_and_hidden


def test_fig5_seqlen_and_hidden(benchmark, budget):
    rows = benchmark.pedantic(
        run_fig5_seqlen_and_hidden,
        args=(budget,),
        kwargs={"seq_lens": (8, 16), "hidden_dims": (16, 32)},
        rounds=1,
        iterations=1,
    )
    print_metric_rows("Figure 5 (N and d sweeps)", rows)
    assert all(0 <= m["HR@5"] <= 1 for m in rows.values())
