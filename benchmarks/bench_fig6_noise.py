"""Figure 6: robustness to synthetic representation noise."""

from conftest import print_metric_rows

from repro.experiments import run_fig6_noise_robustness


def test_fig6_noise_robustness(benchmark, budget):
    rows = benchmark.pedantic(
        run_fig6_noise_robustness,
        args=(budget,),
        kwargs={"eps_values": (0.0, 0.2, 0.4)},
        rounds=1,
        iterations=1,
    )
    print_metric_rows("Figure 6 noise robustness", rows)
    # Clean evaluation should not be worse than the noisiest one by a
    # large margin for SLIME4Rec (robustness claim, shape-level).
    for ds_name in budget.dataset_names():
        clean = rows[f"{ds_name}/SLIME4Rec/eps=0.0"]["HR@5"]
        noisy = rows[f"{ds_name}/SLIME4Rec/eps=0.4"]["HR@5"]
        assert noisy <= clean + 0.15
