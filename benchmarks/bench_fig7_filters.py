"""Figure 7: visualization of the learned slide filters."""

from repro.experiments import ascii_heatmap, run_fig7_filter_visualization


def test_fig7_filter_visualization(benchmark, budget):
    out = benchmark.pedantic(
        run_fig7_filter_visualization, args=(budget,), rounds=1, iterations=1
    )
    print()
    print(ascii_heatmap(out["dfs_amplitude"], title="Figure 7a: dynamic filters |W_D|"))
    print(ascii_heatmap(out["sfs_amplitude"], title="Figure 7b: static filters |W_S|"))
    recaptured = out["recaptured_by_sfs"]
    print(f"Figure 7c: bins missed by DFS but recaptured by SFS: {int(recaptured.sum())}"
          f" / {recaptured.shape[0]}")
    # The paper's alpha=0.1 < 1/L setting leaves DFS gaps that SFS covers.
    assert recaptured.sum() > 0
