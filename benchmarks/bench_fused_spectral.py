"""Fused vs. unfused filter-mixer step time.

The fused :func:`spectral_filter_mixed` op runs one FFT pair forward
and one backward per mixer layer, where the seed's two-call path ran
two of each on the same input.  This benchmark times one full
forward+backward through a layer's ``mix_spectra`` under both regimes
on realistic geometry and records the measured ratio, so the repo's
perf trajectory is tracked alongside the paper artifacts.
"""

import time

import numpy as np
import pytest

from conftest import print_metric_rows

from repro.autograd import functional as F
from repro.autograd.spectral import num_frequency_bins, spectral_filter
from repro.autograd.tensor import Tensor
from repro.core.filter_mixer import FilterMixerLayer

#: (batch, seq_len, hidden) — the throughput-benchmark geometry.
GEOMETRY = (128, 32, 64)


def make_layer(seed=0):
    batch, n, d = GEOMETRY
    m = num_frequency_bins(n)
    rng = np.random.default_rng(seed)
    dfs_mask = np.zeros(m)
    dfs_mask[: 2 * m // 3] = 1.0
    sfs_mask = np.zeros(m)
    sfs_mask[m // 3 :] = 1.0
    layer = FilterMixerLayer(n, d, dfs_mask, sfs_mask, gamma=0.5, rng=rng)
    x = rng.normal(size=(batch, n, d))
    return layer, x


def fused_step(layer, x):
    inp = Tensor(x, requires_grad=True)
    out = layer.mix_spectra(inp)  # fused: both branches on one FFT pair
    F.sum(out).backward()
    return float(out.data.sum())


def unfused_step(layer, x):
    inp = Tensor(x, requires_grad=True)
    dfs = spectral_filter(inp, layer.dfs_real, layer.dfs_imag, layer.dfs_mask)
    sfs = spectral_filter(inp, layer.sfs_real, layer.sfs_imag, layer.sfs_mask)
    out = F.add(F.mul(dfs, 1.0 - layer.gamma), F.mul(sfs, layer.gamma))
    F.sum(out).backward()
    return float(out.data.sum())


STEPS = {"fused": fused_step, "unfused": unfused_step}


@pytest.mark.parametrize("mode", sorted(STEPS))
def test_mix_spectra_step(benchmark, mode):
    layer, x = make_layer()
    result = benchmark(STEPS[mode], layer, x)
    assert np.isfinite(result)


def test_fused_not_slower_and_identical(capsys):
    """Record the fused/unfused ratio and cross-check the outputs."""
    layer, x = make_layer()
    timings = {}
    for mode, step in STEPS.items():
        step(layer, x)  # warmup
        start = time.perf_counter()
        reps = 10
        for _ in range(reps):
            step(layer, x)
        timings[mode] = (time.perf_counter() - start) / reps * 1000.0

    inp = Tensor(x)
    fused_out = layer.mix_spectra(inp)
    dfs = spectral_filter(inp, layer.dfs_real, layer.dfs_imag, layer.dfs_mask)
    sfs = spectral_filter(inp, layer.sfs_real, layer.sfs_imag, layer.sfs_mask)
    unfused_out = (1.0 - layer.gamma) * dfs.data + layer.gamma * sfs.data
    assert np.allclose(fused_out.data, unfused_out, atol=1e-10)

    speedup = timings["unfused"] / timings["fused"]
    print_metric_rows(
        "Fused spectral mixer step",
        {
            "fused": {"ms": timings["fused"]},
            "unfused": {"ms": timings["unfused"]},
            "speedup": {"x": speedup},
        },
    )
    # Generous bound: the fused path must at minimum not regress.  On an
    # unloaded machine it measures ~1.5-2x faster (half the FFTs).
    assert speedup > 0.9, f"fused path slower than two-call path: {speedup:.2f}x"
