#!/usr/bin/env python
"""Sampled-softmax vs chunked full-catalog CE at production catalog size.

The question this answers: past what catalog size does bounding the
prediction-layer *compute* (``train_num_negatives`` — score the
positive plus K sampled negatives) beat bounding only its *memory*
(``ce_chunk_size`` — stream the full ``(B, V+1)`` softmax over table
chunks)?  The full-catalog loss is ``O(B·V·d)`` per step in both
directions regardless of chunking; the sampled loss is ``O(B·K·d)``,
independent of ``V``.

Runs one-optimizer-step timings of SLIME4Rec (``cl_weight=0`` so the
prediction layer dominates) on a synthetic ``--num-items`` catalog
(default 100k, no dataset build — random id batches at the training
geometry), interleaving the two variants A/B/A/B to cancel thermal /
cache drift, and writes:

- ``benchmarks/results/sampled_softmax_step_time.json`` — the
  committed comparison record;
- one ``variant``-tagged line per variant to
  ``benchmarks/results/step_time_history.jsonl`` (skipped with
  ``--no-record`` or ``PERF_SMOKE_NO_RECORD=1``).  The perf-smoke
  rolling-median gate compares strictly within a variant, so these
  lines never contaminate the default-geometry baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_sampled_softmax.py
    PYTHONPATH=src python benchmarks/bench_sampled_softmax.py --num-items 250000
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUT_PATH = RESULTS_DIR / "sampled_softmax_step_time.json"
HISTORY_PATH = RESULTS_DIR / "step_time_history.jsonl"


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-items", type=int, default=100_000)
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--max-len", type=int, default=32)
    parser.add_argument("--hidden-dim", type=int, default=64)
    parser.add_argument("--num-negatives", type=int, default=512)
    parser.add_argument("--ce-chunk-size", type=int, default=8192)
    parser.add_argument("--dtype", choices=("float32", "float64"), default="float32")
    parser.add_argument("--reps", type=int, default=7, help="timed steps per variant")
    parser.add_argument("--no-record", action="store_true",
                        help="do not append history lines")
    return parser


def make_step(args, **knobs):
    """Build a model + one optimizer-step closure for a loss variant."""
    from repro.core import Slime4Rec, SlimeConfig
    from repro.data.batching import Batch
    from repro.optim import Adam

    config = SlimeConfig(
        num_items=args.num_items,
        max_len=args.max_len,
        hidden_dim=args.hidden_dim,
        cl_weight=0.0,  # isolate the prediction layer
        seed=0,
        dtype=args.dtype,
        **knobs,
    )
    model = Slime4Rec(config)
    model.train()
    rng = np.random.default_rng(0)
    inputs = rng.integers(1, args.num_items + 1, size=(args.batch_size, args.max_len))
    inputs[:, : args.max_len // 4] = 0
    batch = Batch(
        input_ids=inputs,
        targets=rng.integers(1, args.num_items + 1, size=args.batch_size),
    )
    optimizer = Adam(model.parameters())

    def step() -> float:
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    return step


def main() -> int:
    args = build_parser().parse_args()

    variants = {
        "chunked_ce": dict(ce_chunk_size=args.ce_chunk_size),
        "sampled_ce": dict(
            train_num_negatives=args.num_negatives, negative_sampling="log_uniform"
        ),
    }
    steps = {name: make_step(args, **knobs) for name, knobs in variants.items()}

    losses = {name: step() for name, step in steps.items()}  # warmup, unbudgeted
    times: dict[str, list[float]] = {name: [] for name in variants}
    for _ in range(args.reps):  # interleaved A/B/A/B
        for name, step in steps.items():
            start = time.perf_counter()
            losses[name] = step()
            times[name].append((time.perf_counter() - start) * 1000.0)

    summary = {}
    for name in variants:
        t = np.asarray(times[name])
        summary[name] = {
            "min_ms": round(float(t.min()), 2),
            "median_ms": round(float(np.median(t)), 2),
            "final_loss": round(losses[name], 4),
        }
        print(f"[{name:>10}] min {summary[name]['min_ms']:8.1f} ms/step  "
              f"median {summary[name]['median_ms']:8.1f} ms/step  "
              f"loss {losses[name]:.4f}")
    speedup = summary["chunked_ce"]["min_ms"] / summary["sampled_ce"]["min_ms"]
    print(f"sampled-softmax speedup over chunked full-catalog CE: {speedup:.2f}x "
          f"(V={args.num_items}, K={args.num_negatives}, "
          f"chunk={args.ce_chunk_size}, {args.dtype})")

    record = {
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git": _git_revision(),
        "dtype": args.dtype,
        "num_items": args.num_items,
        "batch_size": args.batch_size,
        "max_len": args.max_len,
        "hidden_dim": args.hidden_dim,
        "num_negatives": args.num_negatives,
        "ce_chunk_size": args.ce_chunk_size,
        "reps": args.reps,
        "model": "SLIME4Rec",
        "speedup_sampled_over_chunked": round(speedup, 2),
        "variants": summary,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"comparison record written to {OUT_PATH}")

    if not args.no_record and not os.environ.get("PERF_SMOKE_NO_RECORD"):
        with HISTORY_PATH.open("a", encoding="utf-8") as fh:
            for name in variants:
                fh.write(json.dumps({
                    "date": record["date"],
                    "git": record["git"],
                    "dtype": args.dtype,
                    "variant": name,
                    "step_ms": summary[name]["min_ms"],
                    "dataset": "random-ids",
                    "num_items": args.num_items,
                    "max_len": args.max_len,
                    "hidden_dim": args.hidden_dim,
                    "batch_size": args.batch_size,
                    "model": "SLIME4Rec",
                }) + "\n")
        print(f"variant-tagged step-time records appended to {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
