#!/usr/bin/env python
"""Serving-latency A/B: the fast online path vs the naive baseline.

The question this answers: at a production catalog (default 100k
items), what do the serving subsystem's four optimizations — cached
user state, request micro-batching, the float16 item table and blocked
``argpartition`` top-k — buy over the naive loop that re-encodes every
request and full-sorts the float32 catalog?

Setup (no dataset build — random-id traffic at serving geometry):

1. Build SLIME4Rec on a ``--num-items`` catalog and briefly train it
   with sampled softmax on Zipf-popular sequences whose next item
   follows a fixed hidden successor map, so top-k has real signal.
2. **Fidelity gate**: serve the same held-out users through the fast
   arm (float16 table + blocked top-k) and the reference arm (float32
   + full sort); HR@10 / NDCG@10 must agree within 0.01 absolute.
3. **Latency replay**: closed-loop worker threads replay a Zipfian
   user stream (observe one event, then recommend) against each arm,
   interleaving the arms round-robin to cancel thermal/cache drift.

Besides the fast/naive pair, two resilience arms ride along:
``serve_degraded`` replays the same stream against the permanent
popularity fallback (the latency floor when the model path is down)
and ``serve_overload`` replays at 2x concurrency against a
deliberately under-provisioned shed-policy service (answered-request
latency + shed rate when overload is explicit instead of absorbed).

Writes:

- ``benchmarks/results/serving_latency.json`` — the committed A/B
  record (p50/p99/QPS per arm + the fidelity numbers);
- one ``variant``-tagged line per arm (``serve_fast`` /
  ``serve_naive`` / ``serve_degraded`` / ``serve_overload``) to
  ``benchmarks/results/step_time_history.jsonl``
  (skipped with ``--no-record`` or ``PERF_SMOKE_NO_RECORD=1``).  The
  perf-smoke rolling-median gate compares strictly within a variant.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_latency.py
    PYTHONPATH=src python benchmarks/bench_serving_latency.py --num-items 250000
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUT_PATH = RESULTS_DIR / "serving_latency.json"
HISTORY_PATH = RESULTS_DIR / "step_time_history.jsonl"

FIDELITY_TOLERANCE = 0.01  # max |HR@10 / NDCG@10 delta| fast vs reference


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-items", type=int, default=100_000)
    parser.add_argument("--max-len", type=int, default=32)
    parser.add_argument("--hidden-dim", type=int, default=64)
    parser.add_argument("--dtype", choices=("float32", "float64"), default="float32")
    parser.add_argument("--train-steps", type=int, default=30)
    parser.add_argument("--num-negatives", type=int, default=512)
    parser.add_argument("--users", type=int, default=2000,
                        help="resident serving sessions")
    parser.add_argument("--eval-users", type=int, default=500,
                        help="held-out users for the fidelity gate")
    parser.add_argument("--requests", type=int, default=600,
                        help="replay requests per arm (split across rounds)")
    parser.add_argument("--rounds", type=int, default=4,
                        help="A/B interleaving rounds")
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--observe-prob", type=float, default=0.25,
                        help="fraction of requests that carry a new event "
                        "(the rest are pure reads and can reuse cached state)")
    parser.add_argument("--zipf-a", type=float, default=1.2)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-record", action="store_true",
                        help="do not append history lines")
    return parser


# ----------------------------------------------------------------------
# Synthetic traffic: Zipf-popular items with a hidden successor map
# ----------------------------------------------------------------------


class Traffic:
    """Item popularity (Zipf rank-frequency) + a successor map.

    ``succ[i]`` is the item that deterministically follows item ``i``;
    a model that learns it beats popularity ranking, giving the
    fidelity gate real HR@10 signal instead of noise-vs-noise.
    """

    def __init__(self, num_items: int, a: float, rng) -> None:
        self.num_items = num_items
        ranks = np.arange(1, num_items + 1, dtype=np.float64)
        probs = ranks ** (-a)
        self._probs = probs / probs.sum()
        self._by_rank = rng.permutation(num_items) + 1  # rank -> item id
        self.succ = np.zeros(num_items + 1, dtype=np.int64)
        self.succ[1:] = rng.permutation(num_items) + 1

    def draw_items(self, size, rng) -> np.ndarray:
        return self._by_rank[
            rng.choice(self.num_items, size=size, p=self._probs)
        ]

    def history(self, length: int, rng) -> np.ndarray:
        """A popularity-seeded successor walk (10% random restarts)."""
        items = self.draw_items(length, rng)
        for t in range(1, length):
            if rng.random() < 0.9:
                items[t] = self.succ[items[t - 1]]
        return items


def train_model(args, traffic: Traffic, rng):
    """Brief sampled-softmax training so rankings carry signal."""
    from repro.core import Slime4Rec, SlimeConfig
    from repro.data.batching import Batch
    from repro.optim import Adam

    config = SlimeConfig(
        num_items=args.num_items,
        max_len=args.max_len,
        hidden_dim=args.hidden_dim,
        cl_weight=0.0,
        seed=args.seed,
        dtype=args.dtype,
        train_num_negatives=args.num_negatives,
        negative_sampling="log_uniform",
    )
    model = Slime4Rec(config)
    model.train()
    optimizer = Adam(model.parameters())
    start = time.perf_counter()
    loss_value = float("nan")
    for _ in range(args.train_steps):
        inputs = np.stack([traffic.history(args.max_len, rng) for _ in range(128)])
        inputs[:, : args.max_len // 4] = 0  # left padding, as in training
        batch = Batch(
            input_ids=inputs, targets=traffic.succ[inputs[:, -1]]
        )
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        loss_value = float(loss.data)
    elapsed = time.perf_counter() - start
    print(f"trained {args.train_steps} sampled-softmax steps in {elapsed:.1f}s "
          f"(final loss {loss_value:.4f})")
    model.eval()
    return model


# ----------------------------------------------------------------------
# The two arms
# ----------------------------------------------------------------------


def arm_configs(args) -> dict:
    from repro.serving import ServingConfig

    return {
        "serve_fast": ServingConfig(
            k=args.k,
            table_dtype="float16",
            topk="blocked",
            micro_batch=32,
            max_wait_ms=2.0,
            batching=True,
            reuse_user_state=True,
        ),
        "serve_naive": ServingConfig(
            k=args.k,
            table_dtype="float32",
            topk="full_sort",
            batching=False,
            reuse_user_state=False,
        ),
        # permanent popularity fallback: the floor the service degrades
        # to when the model path is down (enter_fallback after seeding)
        "serve_degraded": ServingConfig(
            k=args.k,
            table_dtype="float16",
            topk="blocked",
            micro_batch=32,
            max_wait_ms=2.0,
            batching=True,
            reuse_user_state=True,
        ),
        # deliberately under-provisioned + shed admission: measures the
        # latency of the *answered* requests when overload is explicit
        # instead of absorbed as queue time (replayed at 2x concurrency)
        "serve_overload": ServingConfig(
            k=args.k,
            table_dtype="float16",
            topk="blocked",
            micro_batch=4,
            max_wait_ms=2.0,
            batching=True,
            reuse_user_state=True,
            queue_capacity=4,
            admission_policy="shed",
            request_timeout_ms=2000.0,
        ),
    }


#: arms in the fidelity gate and the headline fast-vs-naive speedup
PRIMARY_ARMS = ("serve_fast", "serve_naive")


def fidelity_gate(args, model, traffic: Traffic, rng) -> dict:
    """HR@10/NDCG@10 of the fp16-blocked arm vs the f32 full-sort arm.

    Both arms rank the same held-out users against the same hidden
    successor targets (targets never appear in the history, so
    seen-masking cannot hide them).
    """
    from repro.serving import RecommenderService

    histories, targets = [], []
    for _ in range(args.eval_users):
        length = int(rng.integers(5, args.max_len + 1))
        while True:
            history = traffic.history(length, rng)
            target = int(traffic.succ[history[-1]])
            if target not in history:
                break
        histories.append(history)
        targets.append(target)
    targets = np.asarray(targets)

    metrics = {}
    configs = arm_configs(args)
    for name in PRIMARY_ARMS:
        config = configs[name]
        with RecommenderService(model, config) as service:
            for user, history in enumerate(histories):
                service.observe_history(user, history)
            results = service.recommend_many(range(len(histories)), k=args.k)
        ids = np.concatenate([r.ids for r in results], axis=0)
        hit = ids == targets[:, None]
        ranks = np.argmax(hit, axis=1)
        found = hit.any(axis=1)
        hr = float(found.mean())
        ndcg = float(np.where(found, 1.0 / np.log2(ranks + 2), 0.0).mean())
        metrics[name] = {"HR@10": round(hr, 4), "NDCG@10": round(ndcg, 4)}
        print(f"[{name:>11}] fidelity: HR@10 {hr:.4f}  NDCG@10 {ndcg:.4f}")
    delta = max(
        abs(metrics["serve_fast"]["HR@10"] - metrics["serve_naive"]["HR@10"]),
        abs(metrics["serve_fast"]["NDCG@10"] - metrics["serve_naive"]["NDCG@10"]),
    )
    ok = delta <= FIDELITY_TOLERANCE
    print(f"fidelity max |delta| {delta:.4f} "
          f"({'within' if ok else 'EXCEEDS'} {FIDELITY_TOLERANCE})")
    return {"arms": metrics, "max_abs_delta": round(delta, 4),
            "tolerance": FIDELITY_TOLERANCE, "ok": ok}


def replay_segment(
    service, users, events, writes, latencies, offset, concurrency, counters=None
) -> float:
    """Closed-loop replay of one pre-drawn request segment; returns wall.

    Shed / deadline-expired requests record NaN latency (they got a
    typed error, not an answer) and are tallied into ``counters`` along
    with degraded answers.
    """
    from repro.serving import DeadlineExceeded, Overloaded

    count = len(users)
    cursor = [0]
    cursor_lock = threading.Lock()
    if counters is None:
        counters = {}
    counters.setdefault("shed", 0)
    counters.setdefault("deadline_expired", 0)
    counters.setdefault("degraded", 0)

    def worker() -> None:
        while True:
            with cursor_lock:
                i = cursor[0]
                if i >= count:
                    return
                cursor[0] += 1
            if writes[i]:
                service.observe(int(users[i]), int(events[i]))
            start = time.perf_counter()
            try:
                result = service.recommend(int(users[i]))
            except Overloaded:
                latencies[offset + i] = np.nan
                with cursor_lock:
                    counters["shed"] += 1
                # client-side backoff on an explicit 429-style shed;
                # without it the closed loop spin-sheds the whole
                # pre-drawn stream while one batch is in flight
                time.sleep(0.025)
                continue
            except DeadlineExceeded:
                latencies[offset + i] = np.nan
                with cursor_lock:
                    counters["deadline_expired"] += 1
                continue
            latencies[offset + i] = (time.perf_counter() - start) * 1000.0
            if result.degraded:
                with cursor_lock:
                    counters["degraded"] += 1

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, daemon=True) for _ in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start


def latency_ab(args, model, traffic: Traffic, rng) -> dict:
    """Interleaved closed-loop Zipf replay of both arms."""
    from repro.serving import RecommenderService

    # Resident sessions, identical in both arms.
    user_histories = [
        traffic.history(int(rng.integers(5, args.max_len + 1)), rng)
        for _ in range(args.users)
    ]
    # Pre-draw the whole request stream once; both arms replay the
    # same users and events in the same order.
    ranks = np.arange(1, args.users + 1, dtype=np.float64)
    probs = ranks ** (-args.zipf_a)
    probs /= probs.sum()
    by_rank = rng.permutation(args.users)
    users = by_rank[rng.choice(args.users, size=args.requests, p=probs)]
    events = traffic.draw_items(args.requests, rng)
    writes = rng.random(args.requests) < args.observe_prob

    # the overload arm models more clients than the service is
    # provisioned for; the others replay at the configured concurrency
    concurrency = {
        name: args.concurrency * 2 if name == "serve_overload" else args.concurrency
        for name in arm_configs(args)
    }

    services, latencies, walls, counters = {}, {}, {}, {}
    for name, config in arm_configs(args).items():
        services[name] = RecommenderService(model, config)
        for user, history in enumerate(user_histories):
            services[name].observe_history(user, history)
        latencies[name] = np.zeros(args.requests)
        walls[name] = 0.0
        counters[name] = {}
        # warm up: table snapshot + one request outside the timing
        services[name].recommend(0)
        if name == "serve_degraded":
            # the benchmark's model-path-down floor: everything from
            # here on is answered by the popularity fallback
            services[name].enter_fallback("benchmark")
            check = services[name].recommend(0)
            assert check.degraded, "degraded arm must flag its results"
            live = check.ids[0][check.ids[0] >= 0]
            assert 0 not in live and len(np.unique(live)) == len(live), (
                "degraded arm must return a valid masked top-k"
            )

    per_round = max(args.requests // args.rounds, 1)
    for round_idx in range(args.rounds):  # interleaved A/B/A/B
        lo = round_idx * per_round
        hi = args.requests if round_idx == args.rounds - 1 else lo + per_round
        if lo >= hi:
            continue
        for name, service in services.items():
            walls[name] += replay_segment(
                service, users[lo:hi], events[lo:hi], writes[lo:hi],
                latencies[name], lo, concurrency[name], counters[name],
            )

    summary = {}
    for name, service in services.items():
        lat = latencies[name]
        answered = int(np.isfinite(lat).sum())
        stats = service.stats()
        service.close()
        summary[name] = {
            "p50_ms": round(float(np.nanpercentile(lat, 50)), 3),
            "p99_ms": round(float(np.nanpercentile(lat, 99)), 3),
            "qps": round(answered / walls[name], 1) if walls[name] else 0.0,
            "answered": answered,
            "shed": counters[name]["shed"],
            "deadline_expired": counters[name]["deadline_expired"],
            "degraded_requests": counters[name]["degraded"],
            "shed_rate": round(
                (args.requests - answered) / args.requests, 4
            ),
            "concurrency": concurrency[name],
            "mean_batch_size": round(stats["mean_batch_size"], 2),
            "encodes": stats["encodes"],
            "user_vec_reuses": stats["user_vec_reuses"],
            "table_dtype": stats["table_dtype"],
            "table_mb": round(stats["table_nbytes"] / 1e6, 1),
        }
        print(f"[{name:>14}] p50 {summary[name]['p50_ms']:8.2f} ms  "
              f"p99 {summary[name]['p99_ms']:8.2f} ms  "
              f"{summary[name]['qps']:8.1f} QPS  "
              f"(mean batch {summary[name]['mean_batch_size']:.1f}, "
              f"encodes {summary[name]['encodes']}, "
              f"shed {summary[name]['shed']}, "
              f"degraded {summary[name]['degraded_requests']})")
    return summary


def main() -> int:
    args = build_parser().parse_args()
    rng = np.random.default_rng(args.seed)
    traffic = Traffic(args.num_items, args.zipf_a, rng)

    model = train_model(args, traffic, rng)
    fidelity = fidelity_gate(args, model, traffic, rng)
    summary = latency_ab(args, model, traffic, rng)

    p50_speedup = summary["serve_naive"]["p50_ms"] / summary["serve_fast"]["p50_ms"]
    qps_speedup = (
        summary["serve_fast"]["qps"] / summary["serve_naive"]["qps"]
        if summary["serve_naive"]["qps"] else 0.0
    )
    print(f"fast-arm speedup over naive: {p50_speedup:.1f}x p50 latency, "
          f"{qps_speedup:.1f}x QPS (V={args.num_items}, "
          f"concurrency={args.concurrency}, {args.dtype} model)")

    record = {
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git": _git_revision(),
        "model": "SLIME4Rec",
        "dtype": args.dtype,
        "num_items": args.num_items,
        "max_len": args.max_len,
        "hidden_dim": args.hidden_dim,
        "train_steps": args.train_steps,
        "users": args.users,
        "requests": args.requests,
        "rounds": args.rounds,
        "concurrency": args.concurrency,
        "observe_prob": args.observe_prob,
        "zipf_a": args.zipf_a,
        "k": args.k,
        "p50_speedup_fast_over_naive": round(p50_speedup, 2),
        "qps_speedup_fast_over_naive": round(qps_speedup, 2),
        "arms": summary,
        "fidelity": fidelity,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"serving A/B record written to {OUT_PATH}")

    if not args.no_record and not os.environ.get("PERF_SMOKE_NO_RECORD"):
        with HISTORY_PATH.open("a", encoding="utf-8") as fh:
            for name in summary:
                fh.write(json.dumps({
                    "date": record["date"],
                    "git": record["git"],
                    "dtype": args.dtype,
                    "variant": name,
                    "step_ms": summary[name]["p50_ms"],
                    "p99_ms": summary[name]["p99_ms"],
                    "qps": summary[name]["qps"],
                    "shed_rate": summary[name]["shed_rate"],
                    "dataset": "random-ids",
                    "num_items": args.num_items,
                    "max_len": args.max_len,
                    "hidden_dim": args.hidden_dim,
                    "concurrency": args.concurrency,
                    "model": "SLIME4Rec",
                }) + "\n")
        print(f"variant-tagged serving records appended to {HISTORY_PATH}")
    return 0 if fidelity["ok"] else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
