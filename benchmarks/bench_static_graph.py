#!/usr/bin/env python
"""Static-graph tape replay vs the dynamic engine: what does capture buy?

The dynamic engine re-walks every module ``__call__`` and rebuilds the
autograd graph on every optimizer step.  The static-graph executor
(``repro.autograd.graph``) captures one step into a tape and replays it
as a flat loop of kernel calls — bitwise-identical numbers (the replay
runs the same numpy expressions in the same order), no per-step graph
construction.  This benchmark measures how much of a step that
Python-side work actually is at the training smoke geometry.

Two identical float32 SLIME4Rec models run the same optimizer loop on
the same batch, interleaved in alternating blocks (A/B/A/B, cancelling
thermal and cache drift): one through a :class:`TapeExecutor` (first
step captures, the rest replay), one through plain ``loss.backward()``.
Before any timing, a bitwise equality cell asserts the two arms produce
identical losses and parameters over the warmup steps — a benchmark of
a wrong fast path is worthless.  Writes:

- ``benchmarks/results/static_graph_step_time.json`` — the committed
  comparison record;
- one ``variant="static_graph"`` line to
  ``benchmarks/results/step_time_history.jsonl`` (skipped with
  ``--no-record`` or ``PERF_SMOKE_NO_RECORD=1``); the dynamic arm is
  not appended — it would shadow the perf smoke's ``default`` baseline
  with a different timing loop.

Honesty note: the step is dominated by numpy kernels (GEMMs, FFTs,
softmax) whose cost the tape cannot change; the replay removes module
dispatch, graph construction and Tensor allocation — Python-side
overhead that shrinks *relative* to kernel time as the geometry grows.
The committed record states the measured ratio at this geometry, not a
headline claim.

Usage::

    PYTHONPATH=src python benchmarks/bench_static_graph.py
    PYTHONPATH=src python benchmarks/bench_static_graph.py --rounds 8
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUT_PATH = RESULTS_DIR / "static_graph_step_time.json"
HISTORY_PATH = RESULTS_DIR / "step_time_history.jsonl"


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="beauty")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--max-len", type=int, default=32)
    parser.add_argument("--hidden-dim", type=int, default=64)
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--dtype", choices=("float32", "float64"), default="float32")
    parser.add_argument("--rounds", type=int, default=6,
                        help="interleaved A/B rounds (blocks) per arm")
    parser.add_argument("--block", type=int, default=5,
                        help="optimizer steps timed per block")
    parser.add_argument("--no-record", action="store_true",
                        help="do not append a history line")
    return parser


def build_arm(args, dataset, static: bool):
    """One (model, stepper) arm; both arms share batch geometry and seed."""
    from repro.autograd.graph import TapeExecutor
    from repro.baselines import build_baseline
    from repro.data.batching import BatchIterator
    from repro.optim import Adam

    model = build_baseline(
        "SLIME4Rec", dataset,
        hidden_dim=args.hidden_dim, seed=0, dtype=args.dtype,
    )
    iterator = BatchIterator(
        dataset, batch_size=args.batch_size, with_same_target=True, seed=0
    )
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())
    executor = TapeExecutor(model) if static else None

    def step() -> float:
        optimizer.zero_grad()
        if executor is not None:
            result = executor.step(batch)
            result.backward()
            value = result.loss
        else:
            loss = model.loss(batch)
            loss.backward()
            value = float(loss.data)
        optimizer.step()
        return value

    return model, step, executor


def main() -> int:
    args = build_parser().parse_args()

    from repro.data.synthetic import load_preset

    dataset = load_preset(args.dataset, scale=args.scale, max_len=args.max_len)

    arms = {
        "dynamic": build_arm(args, dataset, static=False),
        "static_graph": build_arm(args, dataset, static=True),
    }

    # Equality cell before any timing: 3 warmup steps per arm (capture +
    # 2 replays on the static side) must stay bitwise-identical —
    # losses and every parameter.
    warmup_losses = {name: [arm[1]() for _ in range(3)] for name, arm in arms.items()}
    if warmup_losses["dynamic"] != warmup_losses["static_graph"]:
        raise SystemExit(
            f"FAIL: static-graph losses diverged from dynamic during warmup: "
            f"{warmup_losses['static_graph']} != {warmup_losses['dynamic']}"
        )
    dynamic_params = dict(arms["dynamic"][0].named_parameters())
    for name, p in arms["static_graph"][0].named_parameters():
        if not np.array_equal(p.data, dynamic_params[name].data):
            raise SystemExit(f"FAIL: parameter '{name}' diverged during warmup")
    stats = arms["static_graph"][2].stats()
    assert stats["captures"] == 1 and stats["replays"] == 2, stats
    print(f"equality cell: 3 warmup steps bitwise-identical "
          f"(losses {warmup_losses['dynamic']})")

    step_ms: dict[str, list[float]] = {name: [] for name in arms}
    for _ in range(args.rounds):  # interleaved A/B/A/B
        for name, (_, step, _ex) in arms.items():
            start = time.perf_counter()
            for _ in range(args.block):
                step()
            step_ms[name].append(
                (time.perf_counter() - start) / args.block * 1000.0
            )

    summary = {}
    for name in arms:
        times = np.asarray(step_ms[name])
        summary[name] = {
            "min_step_ms": round(float(times.min()), 2),
            "median_step_ms": round(float(np.median(times)), 2),
        }
        print(f"[{name:>12}] min {summary[name]['min_step_ms']:8.2f} ms/step  "
              f"median {summary[name]['median_step_ms']:8.2f} ms/step")
    speedup = summary["dynamic"]["min_step_ms"] / summary["static_graph"]["min_step_ms"]
    print(f"static-graph replay speedup over dynamic: {speedup:.3f}x "
          f"({args.block} steps/block x {args.rounds} rounds, {args.dtype})")

    record = {
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git": _git_revision(),
        "dtype": args.dtype,
        "dataset": args.dataset,
        "scale": args.scale,
        "max_len": args.max_len,
        "hidden_dim": args.hidden_dim,
        "batch_size": args.batch_size,
        "rounds": args.rounds,
        "block": args.block,
        "model": "SLIME4Rec",
        "equality_cell": "3 warmup steps bitwise-identical (losses + parameters)",
        "speedup": round(speedup, 3),
        "variants": summary,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"comparison record written to {OUT_PATH}")

    if not args.no_record and not os.environ.get("PERF_SMOKE_NO_RECORD"):
        with HISTORY_PATH.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "date": record["date"],
                "git": record["git"],
                "dtype": args.dtype,
                "variant": "static_graph",
                "step_ms": summary["static_graph"]["min_step_ms"],
                "dataset": args.dataset,
                "scale": args.scale,
                "max_len": args.max_len,
                "hidden_dim": args.hidden_dim,
                "batch_size": args.batch_size,
                "model": "SLIME4Rec",
            }) + "\n")
        print(f"variant-tagged step-time record appended to {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
