"""Table I: dataset statistics after preprocessing."""

from conftest import print_metric_rows

from repro.experiments import run_table1_dataset_stats
from repro.experiments.common import ExperimentBudget


def test_table1_dataset_stats(benchmark):
    budget = ExperimentBudget.quick()
    budget.datasets = ["beauty", "clothing", "sports", "ml1m", "yelp"]
    rows = benchmark.pedantic(
        run_table1_dataset_stats, args=(budget,), rounds=1, iterations=1
    )
    print_metric_rows("Table I (scaled synthetic presets)", rows)
    # Shape checks mirroring the paper: ml1m is the dense outlier.
    assert rows["ml1m"]["avg_length"] > rows["beauty"]["avg_length"]
    assert rows["ml1m"]["sparsity"] < rows["beauty"]["sparsity"]
