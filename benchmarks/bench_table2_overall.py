"""Table II: overall performance of all models on the benchmark suite."""

from conftest import print_metric_rows

from repro.experiments import run_table2_overall_performance


def test_table2_overall_performance(benchmark, budget):
    table = benchmark.pedantic(
        run_table2_overall_performance, args=(budget,), rounds=1, iterations=1
    )
    for ds_name, rows in table.items():
        print_metric_rows(f"Table II — {ds_name}", rows)
    # Shape check: averaged over datasets and metrics, SLIME4Rec must
    # land in the top half of the eleven-model field.  (Per-dataset
    # orderings are noisy at benchmark scale; the paper-scale ordering
    # is exercised by the ExperimentBudget.small()/full() budgets.)
    ranks = []
    for rows in table.values():
        model_rows = {k: v for k, v in rows.items() if not k.startswith("_")}
        for metric in ("HR@5", "HR@10", "NDCG@5", "NDCG@10"):
            ordered = sorted(model_rows, key=lambda m: -model_rows[m][metric])
            ranks.append(ordered.index("SLIME4Rec"))
    mean_rank = sum(ranks) / len(ranks)
    assert mean_rank <= 5.0, f"SLIME4Rec mean rank {mean_rank:.2f} of 11"
