"""Table III: DFS-only vs DFS+SFS filter module designs."""

from conftest import print_metric_rows

from repro.experiments import run_table3_filter_module_designs


def test_table3_filter_module_designs(benchmark, budget):
    rows = benchmark.pedantic(
        run_table3_filter_module_designs, args=(budget,), rounds=1, iterations=1
    )
    print_metric_rows("Table III", rows)
    # Shape check: adding SFS should not collapse performance; count how
    # often DFS+SFS >= DFS (paper: always better or equal).
    wins = 0
    total = 0
    for key in rows:
        if key.endswith("/DFS"):
            total += 1
            if rows[key[: -len("DFS")] + "DFS+SFS"]["HR@5"] >= rows[key]["HR@5"] * 0.9:
                wins += 1
    assert wins >= total * 0.5
