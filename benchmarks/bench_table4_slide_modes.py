"""Table IV: the four frequency-ramp slide modes."""

from conftest import print_metric_rows

from repro.experiments import run_table4_slide_modes


def test_table4_slide_modes(benchmark, budget):
    rows = benchmark.pedantic(
        run_table4_slide_modes, args=(budget,), rounds=1, iterations=1
    )
    print_metric_rows("Table IV", rows)
    # All four modes must produce sane metrics.
    assert all(0 <= m["HR@5"] <= 1 for m in rows.values())
