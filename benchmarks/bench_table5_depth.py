"""Table V: SLIME4Rec vs DuoRec across network depths."""

from conftest import print_metric_rows

from repro.experiments import run_table5_depth_comparison


def test_table5_depth_comparison(benchmark, budget):
    rows = benchmark.pedantic(
        run_table5_depth_comparison, args=(budget,), rounds=1, iterations=1
    )
    print_metric_rows("Table V", rows)
    # Shape check: SLIME4Rec beats DuoRec at a majority of depths.
    wins = total = 0
    for key in rows:
        if key.endswith("/SLIME4Rec"):
            total += 1
            duo = rows[key.replace("/SLIME4Rec", "/DuoRec")]
            if rows[key]["NDCG@10"] >= duo["NDCG@10"]:
                wins += 1
    assert wins >= total * 0.5, f"SLIME4Rec won only {wins}/{total} depth settings"
