"""Training-step throughput of each model family, in both dtypes.

Not a paper artifact, but the number a downstream user asks first:
how expensive is one optimizer step of SLIME4Rec vs the baselines on
identical data — and how much the float32 compute core saves over the
float64 default (the measured comparison is committed under
``benchmarks/results/dtype_step_time.json``).

The models run on the shared per-step workspace fast paths by default
(fused Q/K/V attention, scipy-backed spectral FFTs with workspace
scratch reuse, seed-compatible dropout, and the stacked ``(3B, N, d)``
multi-view contrastive encode).  Extra variants measure the opt-in
non-seed-compatible dropout-mask path
(``test_train_step_throughput_fast_masks``), the batched-vs-unbatched
contrastive A/B on the two contrastive headliners
(``test_train_step_batched_views_ab`` — pytest-benchmark interleaves
its own rounds, and ``benchmarks/results/batched_views_step_time.json``
records a committed interleaved comparison), and the chunked
full-catalog cross-entropy (``test_train_step_chunked_ce``).
``docs/PERFORMANCE.md`` documents how to read and record the results.
"""

import numpy as np
import pytest

from repro.baselines import build_baseline
from repro.data.batching import BatchIterator
from repro.nn.workspace import fast_dropout_masks
from repro.optim import Adam
from repro.train import TrainConfig, Trainer

MODELS = ["SASRec", "FMLP-Rec", "GRU4Rec", "SLIME4Rec", "DuoRec"]
DTYPES = ["float64", "float32"]


@pytest.fixture(scope="module")
def setup(request):
    from repro.data.synthetic import load_preset

    dataset = load_preset("beauty", scale=0.2, max_len=32)
    return dataset


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", MODELS)
def test_train_step_throughput(benchmark, setup, name, dtype):
    dataset = setup
    model = build_baseline(name, dataset, hidden_dim=64, seed=0, dtype=dtype)
    iterator = BatchIterator(dataset, batch_size=128, with_same_target=True, seed=0)
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())

    def step():
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    result = benchmark(step)
    assert np.isfinite(result)


@pytest.mark.parametrize("batched", [True, False], ids=["batched", "unbatched"])
@pytest.mark.parametrize("name", ["SLIME4Rec", "DuoRec"])
def test_train_step_batched_views_ab(benchmark, setup, name, batched):
    """Stacked (3B, N, d) multi-view encode vs the three-pass reference.

    Float32 with contrastive loss enabled — the A/B behind the
    ``batched_views`` flag.  Both variants share every other fast path,
    so the pair isolates the stacking itself; the committed interleaved
    comparison lives in
    ``benchmarks/results/batched_views_step_time.json``.
    """
    dataset = setup
    model = build_baseline(
        name, dataset, hidden_dim=64, seed=0, dtype="float32", batched_views=batched
    )
    iterator = BatchIterator(dataset, batch_size=128, with_same_target=True, seed=0)
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())

    def step():
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    result = benchmark(step)
    assert np.isfinite(result)


@pytest.mark.parametrize("static", [True, False], ids=["static_graph", "dynamic"])
def test_train_step_static_graph_ab(benchmark, setup, static):
    """Tape replay vs per-step dynamic graph construction.

    Float32 SLIME4Rec through the static-graph executor: the first step
    captures the tape (outside the timing, via warmup rounds), every
    timed step replays it as a flat loop of kernel calls.  The dynamic
    arm runs the identical optimizer loop without an executor.  The
    committed interleaved comparison lives in
    ``benchmarks/results/static_graph_step_time.json``
    (``bench_static_graph.py``).
    """
    from repro.autograd.graph import TapeExecutor

    dataset = setup
    model = build_baseline("SLIME4Rec", dataset, hidden_dim=64, seed=0, dtype="float32")
    iterator = BatchIterator(dataset, batch_size=128, with_same_target=True, seed=0)
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())
    executor = TapeExecutor(model) if static else None

    def step():
        optimizer.zero_grad()
        if executor is not None:
            result = executor.step(batch)
            result.backward()
            value = result.loss
        else:
            loss = model.loss(batch)
            loss.backward()
            value = float(loss.data)
        optimizer.step()
        return value

    result = benchmark(step)
    assert np.isfinite(result)


def test_train_step_chunked_ce(benchmark, setup):
    """Float32 SLIME4Rec step with the streaming chunked cross-entropy."""
    dataset = setup
    model = build_baseline(
        "SLIME4Rec", dataset, hidden_dim=64, seed=0, dtype="float32",
        ce_chunk_size=512,
    )
    iterator = BatchIterator(dataset, batch_size=128, with_same_target=True, seed=0)
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())

    def step():
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    result = benchmark(step)
    assert np.isfinite(result)


@pytest.mark.parametrize("sampling", ["uniform", "log_uniform"])
def test_train_step_sampled_softmax(benchmark, setup, sampling):
    """Float32 SLIME4Rec step with sampled-softmax training (K=128).

    At the smoke geometry's small catalog this mostly measures the
    overhead floor; the catalog-scaling comparison against the chunked
    full-catalog CE lives in ``bench_sampled_softmax.py`` (committed
    record ``benchmarks/results/sampled_softmax_step_time.json``).
    """
    dataset = setup
    model = build_baseline(
        "SLIME4Rec", dataset, hidden_dim=64, seed=0, dtype="float32",
        train_num_negatives=128, negative_sampling=sampling,
    )
    iterator = BatchIterator(dataset, batch_size=128, with_same_target=True, seed=0)
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())

    def step():
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    result = benchmark(step)
    assert np.isfinite(result)


@pytest.mark.parametrize(
    "every", [0, 8], ids=["no_checkpoint", "checkpoint_every_8"]
)
def test_train_step_checkpoint_overhead(benchmark, setup, tmp_path, every):
    """Float32 SLIME4Rec step with periodic full-run-state checkpointing.

    The ``checkpoint_every_8`` variant amortizes one durable
    :class:`~repro.utils.io.CheckpointStore` save (model + optimizer +
    RNG streams, atomic write + fsync + checksum) over every 8 steps;
    ``no_checkpoint`` is the same trainer step without a store.  The
    committed epoch-boundary A/B lives in
    ``benchmarks/results/checkpoint_overhead.json``
    (``bench_checkpoint_overhead.py``).
    """
    dataset = setup
    model = build_baseline("SLIME4Rec", dataset, hidden_dim=64, seed=0, dtype="float32")
    config = TrainConfig(
        batch_size=128,
        checkpoint_dir=str(tmp_path / "store") if every else None,
        checkpoint_every=every,
        keep_last=2,
    )
    trainer = Trainer(model, dataset, config, with_same_target=True)
    batch = next(iter(trainer.iterator.epoch()))
    model.train()

    def step():
        trainer._train_step(batch)
        return trainer._epoch_losses[-1]

    result = benchmark(step)
    assert np.isfinite(result)


@pytest.mark.parametrize("name", ["SLIME4Rec", "SASRec"])
def test_train_step_throughput_fast_masks(benchmark, setup, name):
    """Float32 step time with the fast (non-seed-compatible) dropout masks."""
    dataset = setup
    model = build_baseline(name, dataset, hidden_dim=64, seed=0, dtype="float32")
    iterator = BatchIterator(dataset, batch_size=128, with_same_target=True, seed=0)
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())

    def step():
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    with fast_dropout_masks():
        result = benchmark(step)
    assert np.isfinite(result)
