#!/usr/bin/env python
"""CI perf smoke check: fail fast on pathological training slowdowns.

Runs a 5-step SLIME4Rec training loop in **both dtypes** (the float64
default and the float32 fast path) plus one full-catalog evaluation
pass on the synthetic beauty preset, and exits non-zero when any of
them exceeds its wall-clock budget.  A **static-graph smoke** follows:
one capture-replay-equality cell (tape replay pinned bitwise against
the dynamic engine, variant ``static_graph`` in the history).  Then a
**serving smoke**: an
inline Zipf replay through the fast online arm (float16 item table +
blocked top-k, ``repro.serving``) whose p50/p99 are gated the same way
under the ``serve_p50`` / ``serve_p99`` history variants, and a
**serving chaos cell**: concurrent traffic through a shed-policy
service while the encode path crashes twice (deterministic injection
via ``repro.utils.faults``), gating that the answered-request p99
stays bounded, the popularity fallback returned valid masked top-k,
and the service came back to the model path.  The budgets are deliberately
loose (several times the expected duration on a loaded CI worker): the
goal is to catch order-of-magnitude regressions — an accidentally
quadratic path, a dropped cache, a float-pow in a hot loop, a silent
float64 upcast that erases the float32 win — not to benchmark.

Each run also appends one JSON line per dtype to
``benchmarks/results/step_time_history.jsonl`` (git revision, step
time, eval time), building the per-PR step-time record the ROADMAP
asks for.  Set ``PERF_SMOKE_NO_RECORD=1`` to skip the append.

Once that history holds **at least 3 matching records** for a dtype
(same model/geometry *and* loss variant — records tagged with another
``variant``, e.g. the sampled-CE benchmark's, never mix into this
script's ``"default"`` median), the check also compares the measured step time
against the rolling median of the most recent ones and fails on a
>1.3x regression — a much tighter bound than the static budgets, while
still noise-tolerant (the median spans several PRs, and a failing
measurement is re-run once before it counts).  The history mixes
machines unless CI hardware is pinned; set ``PERF_SMOKE_NO_HISTORY=1``
to skip the comparison on a foreign machine, or widen
``PERF_SMOKE_HISTORY_FACTOR`` (default 1.3).

Usage::

    PYTHONPATH=src python benchmarks/check_perf_smoke.py

Environment overrides: ``PERF_SMOKE_TRAIN_BUDGET_S`` (default 15),
``PERF_SMOKE_EVAL_BUDGET_S`` (default 5), ``PERF_SMOKE_SERVE_BUDGET_MS``
(default 250, the static serving-p99 ceiling),
``PERF_SMOKE_SERVE_SLACK_MS`` (default 2, absolute grace on the serving
history gate), ``PERF_SMOKE_CHAOS_BUDGET_MS`` (default 1500, the
answered-p99 ceiling of the injected-fault cell), ``PERF_SMOKE_NO_RECORD``,
``PERF_SMOKE_NO_HISTORY``, ``PERF_SMOKE_HISTORY_FACTOR``.
No pytest or pytest-benchmark dependency — plain stdlib + the repo
itself.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"
HISTORY_PATH = RESULTS_DIR / "step_time_history.jsonl"

GEOMETRY = {
    "dataset": "beauty",
    "scale": 0.2,
    "max_len": 32,
    "hidden_dim": 64,
    "batch_size": 128,
    "model": "SLIME4Rec",
}

#: Geometry of the serving-smoke records (variants ``serve_p50`` /
#: ``serve_p99``): an inline fp16-table blocked-top-k replay on the
#: same preset/model as the training smoke.
SERVING_GEOMETRY = {
    "dataset": "beauty",
    "scale": 0.2,
    "max_len": 32,
    "hidden_dim": 64,
    "model": "SLIME4Rec",
    "table_dtype": "float16",
    "topk": "blocked",
    "requests": 250,
}

#: Timed optimizer steps per dtype (shared by measurement and budget math).
STEPS = 5

#: Rolling-median window and minimum history size for the regression gate.
HISTORY_WINDOW = 7
HISTORY_MIN_RECORDS = 3

#: Variant of the records this script measures and gates on.  Other
#: benchmarks (e.g. ``bench_sampled_softmax.py``) append records with
#: their own variant tag to the same history file; the median gate
#: compares strictly within one variant, never across.
DEFAULT_VARIANT = "default"


def _history_median(
    dtype: str, variant: str = DEFAULT_VARIANT, geometry: dict = GEOMETRY
) -> tuple:
    """Median ``step_ms`` of recent history records matching this config.

    Returns ``(median, count)``; ``(None, count)`` when fewer than
    ``HISTORY_MIN_RECORDS`` comparable records exist.  Only records
    whose dtype, *variant* and full ``geometry`` match count — a record
    taken at a different batch size or model, or under a different loss
    variant (sampled-CE vs the default full softmax), is not a
    baseline.  Records predating the variant field count as
    ``"default"``.  Each record family (training smoke, serving smoke,
    standalone benchmarks) passes its own geometry dict.
    """
    if not HISTORY_PATH.exists():
        return None, 0
    times = []
    for line in HISTORY_PATH.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if rec.get("dtype") != dtype:
            continue
        if rec.get("variant", DEFAULT_VARIANT) != variant:
            continue
        if any(rec.get(key) != value for key, value in geometry.items()):
            continue
        if isinstance(rec.get("step_ms"), (int, float)):
            times.append(float(rec["step_ms"]))
    times = times[-HISTORY_WINDOW:]
    if len(times) < HISTORY_MIN_RECORDS:
        return None, len(times)
    return statistics.median(times), len(times)


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def _measure(dataset, dtype: str, steps: int = STEPS):
    """Train ``steps`` batches + one eval pass; return timings/losses."""
    from repro.baselines import build_baseline
    from repro.data.batching import BatchIterator
    from repro.evaluation import Evaluator
    from repro.optim import Adam

    model = build_baseline(
        GEOMETRY["model"], dataset,
        hidden_dim=GEOMETRY["hidden_dim"], seed=0, dtype=dtype,
    )
    iterator = BatchIterator(
        dataset, batch_size=GEOMETRY["batch_size"], with_same_target=True, seed=0
    )
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())

    def step() -> float:
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    step()  # warmup outside the budget: first call pays FFT/cache setup
    start = time.perf_counter()
    losses = [step() for _ in range(steps)]
    train_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    result = Evaluator(dataset).evaluate(model, split="valid")
    eval_elapsed = time.perf_counter() - start
    return {
        "steps": steps,
        "train_s": train_elapsed,
        "step_ms": train_elapsed / steps * 1000.0,
        "eval_s": eval_elapsed,
        "losses": losses,
        "result": result,
    }


def _measure_static_graph(dataset, steps: int = STEPS):
    """Static-graph replay step time + the inline capture-replay equality cell.

    Two identically seeded float32 models run the same batch: one
    dynamically, one through the tape executor (first step captures,
    later steps replay).  The cell asserts bitwise-equal losses over
    the warmup steps — a fast path that drifts from the dynamic engine
    must fail the smoke, not just run fast — then times ``steps``
    replayed optimizer steps.
    """
    from repro.autograd.graph import TapeExecutor
    from repro.baselines import build_baseline
    from repro.data.batching import BatchIterator
    from repro.optim import Adam

    def build():
        model = build_baseline(
            GEOMETRY["model"], dataset,
            hidden_dim=GEOMETRY["hidden_dim"], seed=0, dtype="float32",
        )
        iterator = BatchIterator(
            dataset, batch_size=GEOMETRY["batch_size"], with_same_target=True, seed=0
        )
        batch = next(iter(iterator.epoch()))
        return model, batch, Adam(model.parameters())

    d_model, d_batch, d_opt = build()
    s_model, s_batch, s_opt = build()
    executor = TapeExecutor(s_model)

    equal = True
    for _ in range(3):  # capture + 2 replays, pinned against dynamic
        d_opt.zero_grad()
        loss = d_model.loss(d_batch)
        loss.backward()
        d_opt.step()
        s_opt.zero_grad()
        result = executor.step(s_batch)
        result.backward()
        s_opt.step()
        if float(loss.data) != result.loss:
            equal = False

    def replay_step() -> float:
        s_opt.zero_grad()
        result = executor.step(s_batch)
        result.backward()
        s_opt.step()
        return result.loss

    start = time.perf_counter()
    losses = [replay_step() for _ in range(steps)]
    elapsed = time.perf_counter() - start
    stats = executor.stats()
    return {
        "steps": steps,
        "step_ms": elapsed / steps * 1000.0,
        "losses": losses,
        "equal": equal and stats["captures"] == 1 and stats["fallback_steps"] == 0,
        "stats": stats,
    }


def _measure_serving(dataset):
    """Inline Zipf replay through the fast serving arm; p50/p99 in ms.

    Single-threaded and unbatched (``batching=False``) so the numbers
    measure the serving pipeline itself — encode, fp16-table scoring,
    blocked top-k — without collector-wait or thread-scheduling noise.
    """
    import numpy as np

    from repro.baselines import build_baseline
    from repro.serving import RecommenderService, ServingConfig

    model = build_baseline(
        SERVING_GEOMETRY["model"], dataset,
        hidden_dim=SERVING_GEOMETRY["hidden_dim"], seed=0, dtype="float32",
    )
    config = ServingConfig(
        table_dtype=SERVING_GEOMETRY["table_dtype"],
        topk=SERVING_GEOMETRY["topk"],
        batching=False,
    )
    requests = SERVING_GEOMETRY["requests"]
    rng = np.random.default_rng(0)
    ranks = np.arange(1, dataset.num_users + 1, dtype=np.float64)
    probs = ranks ** -1.2
    probs /= probs.sum()
    users = rng.choice(dataset.num_users, size=requests, p=probs)
    events = rng.integers(1, dataset.num_items + 1, size=requests)
    latencies = []
    with RecommenderService(model, config) as service:
        for user_id, seq in enumerate(dataset.sequences):
            service.observe_history(user_id, seq[-dataset.max_len:])
        service.recommend(0)  # warmup: table snapshot outside the timing
        for i in range(requests):
            if i % 4 == 0:  # a 25% write mix, as in the latency bench
                service.observe(int(users[i]), int(events[i]))
            start = time.perf_counter()
            service.recommend(int(users[i]))
            latencies.append((time.perf_counter() - start) * 1000.0)
    latencies.sort()
    return {
        "p50_ms": latencies[len(latencies) // 2],
        "p99_ms": latencies[min(int(len(latencies) * 0.99), len(latencies) - 1)],
    }


def _measure_serving_chaos(dataset):
    """One injected-fault serving cell: shed policy under a dying encode.

    Replays concurrent traffic through a deliberately small-queue,
    shed-policy service while the first two encode passes crash
    (``serve.encode``, ``on_error="degrade"``).  Returns the answered
    requests' p99, the outcome tally, whether every degraded answer
    honored the masked-top-k contract, and whether the service came
    back to the model path once the fault passed — the smoke gate
    asserts all of it.
    """
    import threading

    import numpy as np

    from repro.baselines import build_baseline
    from repro.serving import (
        DeadlineExceeded,
        Overloaded,
        RecommenderService,
        ServingConfig,
    )
    from repro.utils.faults import FaultInjector, inject

    model = build_baseline(
        SERVING_GEOMETRY["model"], dataset,
        hidden_dim=SERVING_GEOMETRY["hidden_dim"], seed=0, dtype="float32",
    )
    config = ServingConfig(
        table_dtype=SERVING_GEOMETRY["table_dtype"],
        topk=SERVING_GEOMETRY["topk"],
        batching=True,
        micro_batch=4,
        max_wait_ms=2.0,
        queue_capacity=8,
        admission_policy="shed",
        request_timeout_ms=1000.0,
    )
    injector = FaultInjector().crash_at("serve.encode", times=2)
    latencies, counts = [], {"ok": 0, "degraded": 0, "shed": 0, "expired": 0}
    valid = [True]
    lock = threading.Lock()
    with RecommenderService(model, config) as service:
        for user_id, seq in enumerate(dataset.sequences[:64]):
            service.observe_history(user_id, seq[-dataset.max_len:])

        def worker(uid):
            for _ in range(12):
                start = time.perf_counter()
                try:
                    result = service.recommend(uid)
                except Overloaded:
                    with lock:
                        counts["shed"] += 1
                    continue
                except DeadlineExceeded:
                    with lock:
                        counts["expired"] += 1
                    continue
                elapsed = (time.perf_counter() - start) * 1000.0
                with lock:
                    latencies.append(elapsed)
                    if result.degraded:
                        counts["degraded"] += 1
                        live = result.ids[0][result.ids[0] >= 0]
                        if 0 in live or len(np.unique(live)) != len(live):
                            valid[0] = False
                    else:
                        counts["ok"] += 1

        with inject(injector):
            threads = [
                threading.Thread(target=worker, args=(uid,), daemon=True)
                for uid in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        recovered = False
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                recovered = not service.recommend(0).degraded
                break
            except (DeadlineExceeded, Overloaded):
                continue
    latencies.sort()
    p99 = (
        latencies[min(int(len(latencies) * 0.99), len(latencies) - 1)]
        if latencies else float("inf")
    )
    return {
        "p99_ms": p99,
        "counts": counts,
        "fired": len(injector.fired),
        "degraded_valid": valid[0],
        "recovered": recovered,
    }


def main() -> int:
    train_budget = float(os.environ.get("PERF_SMOKE_TRAIN_BUDGET_S", "15"))
    eval_budget = float(os.environ.get("PERF_SMOKE_EVAL_BUDGET_S", "5"))

    from repro.data.synthetic import load_preset

    dataset = load_preset(
        GEOMETRY["dataset"], scale=GEOMETRY["scale"], max_len=GEOMETRY["max_len"]
    )

    history_factor = float(os.environ.get("PERF_SMOKE_HISTORY_FACTOR", "1.3"))
    use_history = not os.environ.get("PERF_SMOKE_NO_HISTORY")

    ok = True
    records = []
    measured = {}
    for dtype in ("float64", "float32"):
        m = _measure(dataset, dtype)
        measured[dtype] = m
        if use_history:
            median, count = _history_median(dtype)
            if median is None:
                print(f"[{dtype}] history gate skipped "
                      f"({count} comparable records, need {HISTORY_MIN_RECORDS})")
            else:
                budget_ms = history_factor * median
                print(f"[{dtype}] history gate: {m['step_ms']:.0f} ms/step vs "
                      f"rolling median {median:.0f} ms over {count} records "
                      f"(limit {budget_ms:.0f} ms)")
                if m["step_ms"] > budget_ms:
                    print(f"[{dtype}] over the history limit — re-measuring once "
                          f"to rule out a loaded worker")
                    m = _measure(dataset, dtype)
                    measured[dtype] = m
                    print(f"[{dtype}] re-run: {m['step_ms']:.0f} ms/step")
                    if m["step_ms"] > budget_ms:
                        print(f"FAIL: {dtype} step time regressed "
                              f"{m['step_ms'] / median:.2f}x over the rolling median "
                              f"({m['step_ms']:.0f} ms > {budget_ms:.0f} ms)",
                              file=sys.stderr)
                        ok = False
        print(f"[{dtype}] train: {m['steps']} steps in {m['train_s']:.2f}s "
              f"({m['step_ms']:.0f} ms/step, budget {train_budget:.0f}s), "
              f"final loss {m['losses'][-1]:.4f}")
        if not all(math.isfinite(l) for l in m["losses"]):
            print(f"FAIL: non-finite training loss in {dtype}", file=sys.stderr)
            ok = False
        if m["train_s"] > train_budget:
            print(f"FAIL: {dtype} training exceeded budget "
                  f"({m['train_s']:.2f}s > {train_budget:.0f}s)", file=sys.stderr)
            ok = False
        print(f"[{dtype}] eval: full pass in {m['eval_s']:.2f}s "
              f"(budget {eval_budget:.0f}s), {m['result'].as_row()}")
        if m["eval_s"] > eval_budget:
            print(f"FAIL: {dtype} evaluation exceeded budget "
                  f"({m['eval_s']:.2f}s > {eval_budget:.0f}s)", file=sys.stderr)
            ok = False
        records.append({
            "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            "git": _git_revision(),
            "dtype": dtype,
            "variant": DEFAULT_VARIANT,
            "step_ms": round(m["step_ms"], 2),
            "eval_s": round(m["eval_s"], 3),
            **GEOMETRY,
        })

    def _speedup() -> float:
        f32 = measured["float32"]["step_ms"]
        return measured["float64"]["step_ms"] / f32 if f32 else 0.0

    print(f"float32 step speedup over float64: {_speedup():.2f}x")
    # A float32 step markedly slower than the float64 step means the
    # fast path regressed into widening copies somewhere.  A single
    # 5-step timing is noisy on a loaded worker, so re-measure both
    # dtypes once before failing; only a persistent inversion is real.
    if _speedup() < 1.0 / 1.3:
        print("float32 slower than float64 — re-measuring once to rule out noise")
        measured["float64"] = _measure(dataset, "float64")
        measured["float32"] = _measure(dataset, "float32")
        print(f"float32 step speedup over float64 (re-run): {_speedup():.2f}x")
        if _speedup() < 1.0 / 1.3:
            print("FAIL: float32 step is persistently slower than float64 — "
                  "a widening copy likely crept into the hot path", file=sys.stderr)
            ok = False

    # --- static-graph smoke: replay must stay bitwise + not regress ---
    sg = _measure_static_graph(dataset)
    print(f"[static_graph] equality cell: capture + replay vs dynamic "
          f"{'bitwise-identical' if sg['equal'] else 'DIVERGED'} "
          f"({sg['stats']['captures']} capture, {sg['stats']['replays']} replays)")
    if not sg["equal"]:
        print("FAIL: static-graph replay diverged from the dynamic engine",
              file=sys.stderr)
        ok = False
    print(f"[static_graph] replay: {sg['steps']} steps "
          f"({sg['step_ms']:.0f} ms/step)")
    if not all(math.isfinite(l) for l in sg["losses"]):
        print("FAIL: non-finite loss under static-graph replay", file=sys.stderr)
        ok = False
    if use_history:
        median, count = _history_median("float32", "static_graph")
        if median is None:
            print(f"[static_graph] history gate skipped "
                  f"({count} comparable records, need {HISTORY_MIN_RECORDS})")
        else:
            budget_ms = history_factor * median
            print(f"[static_graph] history gate: {sg['step_ms']:.0f} ms/step vs "
                  f"rolling median {median:.0f} ms over {count} records "
                  f"(limit {budget_ms:.0f} ms)")
            if sg["step_ms"] > budget_ms:
                print("[static_graph] over the history limit — re-measuring once "
                      "to rule out a loaded worker")
                sg = _measure_static_graph(dataset)
                print(f"[static_graph] re-run: {sg['step_ms']:.0f} ms/step")
                if sg["step_ms"] > budget_ms:
                    print(f"FAIL: static-graph step time regressed "
                          f"{sg['step_ms'] / median:.2f}x over the rolling median "
                          f"({sg['step_ms']:.0f} ms > {budget_ms:.0f} ms)",
                          file=sys.stderr)
                    ok = False
    records.append({
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git": _git_revision(),
        "dtype": "float32",
        "variant": "static_graph",
        "step_ms": round(sg["step_ms"], 2),
        **GEOMETRY,
    })

    # --- serving smoke: the online path must not regress either -------
    serve_budget = float(os.environ.get("PERF_SMOKE_SERVE_BUDGET_MS", "250"))
    # Millisecond-scale percentiles jitter multiplicatively on a loaded
    # worker, so the history gate gets a small absolute grace on top of
    # the ratio — it exists to catch order-of-magnitude regressions
    # (a full sort sneaking back in), not 2 ms of scheduler noise.
    serve_slack = float(os.environ.get("PERF_SMOKE_SERVE_SLACK_MS", "2"))

    def _serve_failures(m) -> list:
        failures = []
        if m["p99_ms"] > serve_budget:
            failures.append(
                f"serving p99 {m['p99_ms']:.1f} ms over static budget "
                f"{serve_budget:.0f} ms"
            )
        if use_history:
            for stat in ("p50", "p99"):
                median, count = _history_median(
                    "float32", f"serve_{stat}", SERVING_GEOMETRY
                )
                if median is None:
                    print(f"[serving] {stat} history gate skipped ({count} "
                          f"comparable records, need {HISTORY_MIN_RECORDS})")
                    continue
                limit = history_factor * median + serve_slack
                print(f"[serving] {stat} history gate: {m[stat + '_ms']:.2f} ms "
                      f"vs rolling median {median:.2f} ms over {count} records "
                      f"(limit {limit:.2f} ms)")
                if m[stat + "_ms"] > limit:
                    failures.append(
                        f"serving {stat} regressed "
                        f"{m[stat + '_ms'] / median:.2f}x over the rolling "
                        f"median ({m[stat + '_ms']:.1f} ms > {limit:.1f} ms)"
                    )
        return failures

    serving = _measure_serving(dataset)
    print(f"[serving] inline fp16-blocked replay: p50 {serving['p50_ms']:.2f} ms  "
          f"p99 {serving['p99_ms']:.2f} ms")
    failures = _serve_failures(serving)
    if failures:
        print("[serving] over a limit — re-measuring once to rule out a "
              "loaded worker")
        serving = _measure_serving(dataset)
        print(f"[serving] re-run: p50 {serving['p50_ms']:.2f} ms  "
              f"p99 {serving['p99_ms']:.2f} ms")
        failures = _serve_failures(serving)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
            ok = False
    for stat in ("p50", "p99"):
        records.append({
            "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            "git": _git_revision(),
            "dtype": "float32",
            "variant": f"serve_{stat}",
            "step_ms": round(serving[stat + "_ms"], 3),
            **SERVING_GEOMETRY,
        })

    # --- serving chaos cell: failure semantics must hold every pass ---
    # Static-budget gate only (no history line): the p99 of *answered*
    # requests under an injected encode crash + shed admission must stay
    # bounded — a fault that turns into unbounded caller latency is a
    # broken deadline path, not noise.
    chaos_budget = float(os.environ.get("PERF_SMOKE_CHAOS_BUDGET_MS", "1500"))
    chaos = _measure_serving_chaos(dataset)
    print(f"[serving-chaos] shed policy under injected encode crash: "
          f"answered p99 {chaos['p99_ms']:.2f} ms "
          f"(budget {chaos_budget:.0f} ms), outcomes {chaos['counts']}, "
          f"faults fired {chaos['fired']}, "
          f"recovered {'yes' if chaos['recovered'] else 'NO'}")
    if chaos["p99_ms"] > chaos_budget:
        print(f"FAIL: chaos-cell p99 {chaos['p99_ms']:.1f} ms exceeds "
              f"{chaos_budget:.0f} ms — a fault is turning into unbounded "
              f"latency", file=sys.stderr)
        ok = False
    if chaos["counts"]["degraded"] == 0:
        print("FAIL: chaos cell produced no degraded answers — the injected "
              "fault never exercised the fallback arm", file=sys.stderr)
        ok = False
    if not chaos["degraded_valid"]:
        print("FAIL: a degraded answer violated the masked top-k contract",
              file=sys.stderr)
        ok = False
    if not chaos["recovered"]:
        print("FAIL: service did not return to the model path after the "
              "injected fault passed", file=sys.stderr)
        ok = False

    if not ok:
        # A failing run must not write its regressed step times into the
        # rolling-median baseline — repeated CI retries would otherwise
        # ratchet the regression into the history until the gate passed.
        print("failing run: step-time record NOT appended to history")
    elif not os.environ.get("PERF_SMOKE_NO_RECORD"):
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        with HISTORY_PATH.open("a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        print(f"step-time record appended to {HISTORY_PATH}")

    print("perf smoke:", "OK" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
