#!/usr/bin/env python
"""CI perf smoke check: fail fast on pathological training slowdowns.

Runs a 5-step SLIME4Rec training loop plus one full-catalog evaluation
pass on the synthetic beauty preset and exits non-zero when either
exceeds its wall-clock budget.  The budgets are deliberately loose
(several times the expected duration on a loaded CI worker): the goal
is to catch order-of-magnitude regressions — an accidentally quadratic
path, a dropped cache, a float-pow in a hot loop — not to benchmark.

Usage::

    PYTHONPATH=src python benchmarks/check_perf_smoke.py

Environment overrides: ``PERF_SMOKE_TRAIN_BUDGET_S`` (default 15),
``PERF_SMOKE_EVAL_BUDGET_S`` (default 5).  No pytest or
pytest-benchmark dependency — plain stdlib + the repo itself.
"""

from __future__ import annotations

import os
import sys
import time


def main() -> int:
    train_budget = float(os.environ.get("PERF_SMOKE_TRAIN_BUDGET_S", "15"))
    eval_budget = float(os.environ.get("PERF_SMOKE_EVAL_BUDGET_S", "5"))

    from repro.baselines import build_baseline
    from repro.data.batching import BatchIterator
    from repro.data.synthetic import load_preset
    from repro.evaluation import Evaluator
    from repro.optim import Adam

    dataset = load_preset("beauty", scale=0.2, max_len=32)
    model = build_baseline("SLIME4Rec", dataset, hidden_dim=64, seed=0)
    iterator = BatchIterator(dataset, batch_size=128, with_same_target=True, seed=0)
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())

    def step() -> float:
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    step()  # warmup outside the budget: first call pays FFT/cache setup
    start = time.perf_counter()
    losses = [step() for _ in range(5)]
    train_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    result = Evaluator(dataset).evaluate(model, split="valid")
    eval_elapsed = time.perf_counter() - start

    ok = True
    print(f"train: 5 steps in {train_elapsed:.2f}s (budget {train_budget:.0f}s), "
          f"final loss {losses[-1]:.4f}")
    if not all(l == l and l != float("inf") for l in losses):  # NaN/inf guard
        print("FAIL: non-finite training loss", file=sys.stderr)
        ok = False
    if train_elapsed > train_budget:
        print(f"FAIL: training exceeded budget ({train_elapsed:.2f}s > {train_budget:.0f}s)",
              file=sys.stderr)
        ok = False
    print(f"eval: full pass in {eval_elapsed:.2f}s (budget {eval_budget:.0f}s), "
          f"{result.as_row()}")
    if eval_elapsed > eval_budget:
        print(f"FAIL: evaluation exceeded budget ({eval_elapsed:.2f}s > {eval_budget:.0f}s)",
              file=sys.stderr)
        ok = False
    print("perf smoke:", "OK" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
