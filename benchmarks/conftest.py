"""Benchmark fixtures.

Every benchmark regenerates one paper artifact (table or figure) under
a small budget and prints the resulting rows, so running

    pytest benchmarks/ --benchmark-only

produces both timing data and the reproduced numbers.  Budgets are
intentionally tiny: the goal is the *shape* of each result (orderings,
trends), not the paper's absolute numbers — see EXPERIMENTS.md.
"""

import re
from pathlib import Path

import pytest

from repro.experiments import ExperimentBudget
from repro.utils import save_results

#: Where each bench persists its reproduced rows, so the artifact
#: survives pytest's output capturing (inspect after any run).
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def budget():
    """Shared benchmark budget: tiny datasets, few epochs, cached."""
    b = ExperimentBudget.quick()
    b.datasets = ["beauty", "ml1m"]
    b.epochs = 3
    return b


def print_metric_rows(title, rows):
    """Print reproduced rows and persist them under benchmarks/results/."""
    print(f"\n=== {title} ===")
    for key, metrics in rows.items():
        if isinstance(metrics, dict):
            body = "  ".join(f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
                             for k, v in metrics.items())
        else:
            body = str(metrics)
        print(f"{key:<40} {body}")
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    save_results(rows, RESULTS_DIR / f"{slug}.json")
