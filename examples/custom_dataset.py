"""Using your own interaction log instead of the synthetic presets.

Any whitespace/CSV file with ``user item [timestamp]`` lines can be fed
through :func:`repro.load_interactions_file`.  This example writes a
small demo file, loads it, and trains on it — swap the path for a real
Amazon/ML-1M/Yelp dump to reproduce the paper on actual data.

Run with::

    python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    SequenceDataset,
    SlimeConfig,
    Slime4Rec,
    TrainConfig,
    Trainer,
    load_interactions_file,
)


def write_demo_log(path: Path) -> None:
    """Simulate an exported interaction log (user item timestamp)."""
    rng = np.random.default_rng(0)
    lines = []
    for user in range(120):
        length = int(rng.integers(6, 20))
        favourites = rng.choice(60, size=4, replace=False)
        for step in range(length):
            item = favourites[step % 4] if rng.random() > 0.2 else rng.integers(60)
            lines.append(f"{user} {item} {step}")
    path.write_text("\n".join(lines))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "interactions.txt"
        write_demo_log(log_path)

        interactions = load_interactions_file(log_path)
        dataset = SequenceDataset(interactions, name="custom", max_len=16, k_core=5)
        print(dataset.stats().as_row())

        model = Slime4Rec(
            SlimeConfig(num_items=dataset.num_items, max_len=16, hidden_dim=32)
        )
        trainer = Trainer(model, dataset, TrainConfig(epochs=5, patience=2))
        trainer.fit()
        print("test:", trainer.test().as_row())


if __name__ == "__main__":
    main()
