"""Frequency patterns in e-commerce behaviour (the paper's Figure 1 story).

The paper motivates SLIME4Rec with users like "Bob", who buys clothing
at short intervals (high-frequency behaviour) and electronics at long
intervals (low-frequency behaviour), entangled in one chronological
sequence.  This example:

1. generates a workload with two planted behaviour frequencies,
2. shows the category-usage spectrum of a user (the planted peaks),
3. trains SLIME4Rec and a pure time-domain model (SASRec) on it,
4. reports how much of the spectrum each DFS/SFS layer attends to.

Run with::

    python examples/ecommerce_frequency_patterns.py
"""

import numpy as np

from repro import SlimeConfig, Slime4Rec, TrainConfig, Trainer, build_baseline
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.experiments.visualization import ascii_heatmap


def main() -> None:
    # Two categories: "clothing" with a 4-step period, "electronics"
    # with a 32-step period — exactly the Figure 1 setup.
    cfg = SyntheticConfig(
        name="figure1-world",
        num_users=220,
        num_items=120,
        num_categories=2,
        user_categories=2,
        min_period=4.0,
        max_period=32.0,
        mean_length=48.0,
        temperature=0.25,
        noise_prob=0.03,
        seed=42,
    )
    interactions = generate_interactions(cfg)
    dataset = SequenceDataset(interactions, name=cfg.name, max_len=32)
    print(dataset.stats().as_row())

    # --- inspect one user's category spectrum --------------------------
    from repro.data.synthetic import _category_assignment

    item_category, periods = _category_assignment(cfg)
    print(f"\nplanted category periods: {np.round(periods, 1).tolist()} steps")
    seq = next(s for s in dataset.sequences if len(s) >= 32)
    # item ids are 1-based; map back through the generator's categories
    signal = np.array([s % 2 for s in seq[:32]], dtype=float)
    spectrum = np.abs(np.fft.rfft(signal - signal.mean()))
    print(ascii_heatmap(spectrum[None, :], title="one user's category-usage spectrum"))

    # --- train frequency-domain vs time-domain models -----------------
    train_cfg = TrainConfig(epochs=6, batch_size=256, patience=2)
    slime = Slime4Rec(
        SlimeConfig(num_items=dataset.num_items, max_len=32, hidden_dim=48,
                    num_layers=2, alpha=0.4, seed=0)
    )
    slime_trainer = Trainer(slime, dataset, train_cfg)
    slime_trainer.fit()
    slime_result = slime_trainer.test()

    sasrec = build_baseline("SASRec", dataset, hidden_dim=48, seed=0)
    sasrec_trainer = Trainer(sasrec, dataset, train_cfg)
    sasrec_trainer.fit()
    sasrec_result = sasrec_trainer.test()

    print("\nfrequency domain (SLIME4Rec):", slime_result.as_row())
    print("time domain      (SASRec):   ", sasrec_result.as_row())

    # --- what did the filters learn? -----------------------------------
    amps = slime.filter_amplitudes()
    print()
    print(ascii_heatmap(
        np.stack([a.mean(axis=1) for a in amps["dfs"]]),
        title="learned dynamic filters (rows = layers)",
    ))


if __name__ == "__main__":
    main()
