"""Grid search over SLIME4Rec hyper-parameters (the paper's protocol).

The paper tunes the dynamic filter size ratio alpha on the validation
split per dataset (Section IV-D, Figure 4).  This example reproduces
that workflow with :func:`repro.train.grid_search`, then inspects the
winning configuration's spectral coverage against the dataset's own
frequency profile using the analysis toolkit.

Run with::

    python examples/hyperparameter_tuning.py
"""

import numpy as np

from repro import SlimeConfig, Slime4Rec, TrainConfig, load_preset
from repro.analysis import dataset_spectral_profile
from repro.experiments.visualization import ascii_heatmap
from repro.train import grid_search


def main() -> None:
    dataset = load_preset("beauty", scale=0.25, max_len=16)
    print(dataset.stats().as_row())

    def build(**params):
        return Slime4Rec(
            SlimeConfig(
                num_items=dataset.num_items,
                max_len=dataset.max_len,
                hidden_dim=32,
                seed=0,
                **params,
            )
        )

    result = grid_search(
        build,
        dataset,
        param_grid={"alpha": [0.2, 0.4, 0.8], "num_layers": [2, 4]},
        train_config=TrainConfig(epochs=4, batch_size=256, patience=0),
        monitor="NDCG@10",
        with_same_target=True,
    )
    print()
    print(result.summary())
    best = result.best
    print(f"\nbest params: {best['params']}")
    print(f"test metrics of the winner: {best['test_metrics']}")

    # How periodic is this dataset, and where does its energy live?
    profile = dataset_spectral_profile(dataset.sequences, n=dataset.max_len)
    print(f"\nmean periodicity score: {float(profile['periodicity']):.3f}")
    print(ascii_heatmap(
        profile["mean_spectrum"][None, :],
        title="dataset novelty spectrum (freq bins left=low, right=high)",
    ))
    bands = profile["band_energy"]
    print(f"energy by SFS-style band (low->high): {np.round(bands / bands.sum(), 3).tolist()}")


if __name__ == "__main__":
    main()
