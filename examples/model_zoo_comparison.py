"""Mini Table II: compare the full model zoo on one dataset.

Trains all eleven models (BPR-MF ... SLIME4Rec) on a scaled-down
synthetic Yelp-style workload with identical budgets and prints a
ranking — the shape of the paper's Table II on one dataset.

Run with::

    python examples/model_zoo_comparison.py
"""

import time

from repro import BASELINE_NAMES, TrainConfig, Trainer, build_baseline, load_preset


def main() -> None:
    dataset = load_preset("yelp", scale=0.25, max_len=20)
    print(dataset.stats().as_row())
    print(f"{'model':<14} {'HR@5':>8} {'HR@10':>8} {'NDCG@5':>8} {'NDCG@10':>8} {'secs':>7}")

    rows = []
    for name in BASELINE_NAMES:
        start = time.time()
        model = build_baseline(name, dataset, hidden_dim=32, num_layers=2, seed=0)
        needs_positive = name in ("DuoRec", "SLIME4Rec")
        trainer = Trainer(
            model, dataset,
            TrainConfig(epochs=5, batch_size=256, patience=2),
            with_same_target=needs_positive,
        )
        trainer.fit()
        metrics = trainer.test().metrics
        rows.append((name, metrics, time.time() - start))
        print(
            f"{name:<14} {metrics['HR@5']:>8.4f} {metrics['HR@10']:>8.4f} "
            f"{metrics['NDCG@5']:>8.4f} {metrics['NDCG@10']:>8.4f} {rows[-1][2]:>7.1f}"
        )

    best = max(rows, key=lambda r: r[1]["NDCG@10"])
    print(f"\nbest by NDCG@10: {best[0]} ({best[1]['NDCG@10']:.4f})")


if __name__ == "__main__":
    main()
