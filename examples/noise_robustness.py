"""Figure 6 demo: robustness to synthetic representation noise.

Trains SLIME4Rec and DuoRec on the same dense workload, then evaluates
both under increasing uniform noise injected into every layer input.
The paper's claim: the slide filters separate noise in the frequency
domain, so SLIME4Rec degrades more gracefully.

Run with::

    python examples/noise_robustness.py
"""

from repro import TrainConfig, Trainer, build_baseline, load_preset


def main() -> None:
    dataset = load_preset("ml1m", scale=0.25, max_len=24)
    print(dataset.stats().as_row())

    trainers = {}
    for name in ("SLIME4Rec", "DuoRec"):
        model = build_baseline(name, dataset, hidden_dim=32, seed=0)
        trainer = Trainer(
            model, dataset,
            TrainConfig(epochs=4, batch_size=256, patience=2),
            with_same_target=True,
        )
        trainer.fit()
        trainers[name] = trainer

    eps_values = (0.0, 0.1, 0.2, 0.4, 0.8)
    print(f"\n{'eps':>6} {'SLIME4Rec HR@5':>16} {'DuoRec HR@5':>14}")
    for eps in eps_values:
        scores = {}
        for name, trainer in trainers.items():
            trainer.model.noise_eps = eps
            scores[name] = trainer.evaluator.evaluate(trainer.model, split="test")["HR@5"]
            trainer.model.noise_eps = 0.0
        print(f"{eps:>6.1f} {scores['SLIME4Rec']:>16.4f} {scores['DuoRec']:>14.4f}")


if __name__ == "__main__":
    main()
