"""Quickstart: train SLIME4Rec on a synthetic Amazon-Beauty-style dataset.

Run with::

    python examples/quickstart.py

Builds a scaled-down frequency-structured workload, trains the model
for a few epochs with early stopping, and reports HR/NDCG on the
held-out test items.
"""

from repro import SlimeConfig, Slime4Rec, TrainConfig, Trainer, load_preset


def main() -> None:
    print("Loading the 'beauty' preset (scaled for a quick demo)...")
    dataset = load_preset("beauty", scale=0.4, max_len=24)
    print(dataset.stats().as_row())
    print(f"training instances: {len(dataset.train_instances)}")

    config = SlimeConfig(
        num_items=dataset.num_items,
        max_len=dataset.max_len,
        hidden_dim=48,
        num_layers=2,
        alpha=0.4,          # dynamic filter covers 40% of the spectrum
        gamma=0.5,          # equal mix of dynamic and static branches
        cl_weight=0.1,      # lambda of Eq. 36
        dtype="float32",    # single-precision fast path (~2x step time;
                            # omit for the bit-exact float64 default)
        seed=0,
    )
    model = Slime4Rec(config)
    print(f"model parameters: {model.num_parameters():,}")

    trainer = Trainer(
        model,
        dataset,
        TrainConfig(epochs=8, batch_size=256, patience=3, verbose=True),
    )
    history = trainer.fit()
    print(f"\ntraining done: {history.summary()}")
    print(f"test metrics:  {trainer.test().as_row()}")


if __name__ == "__main__":
    main()
