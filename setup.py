"""Setuptools shim.

The environment has no ``wheel`` package and no network access, so PEP
517 editable installs fail; ``python setup.py develop`` (or the .pth
fallback below) installs the package in editable mode instead.
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
