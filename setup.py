"""Setuptools shim.

The environment has no ``wheel`` package and no network access, so PEP
517 editable installs fail; ``python setup.py develop`` (or the .pth
fallback below) installs the package in editable mode instead.
"""

from setuptools import find_packages, setup

if __name__ == "__main__":
    setup(
        name="repro",
        packages=find_packages("src"),
        package_dir={"": "src"},
        entry_points={
            "console_scripts": [
                "repro-lint=repro.analysis.lint.cli:main",
            ],
        },
    )
