"""SLIME4Rec reproduction: contrastive enhanced slide filter mixer.

A from-scratch reproduction of *"Contrastive Enhanced Slide Filter
Mixer for Sequential Recommendation"* (ICDE 2023) including its full
substrate: a numpy autograd engine, neural-network modules, ten
baseline recommenders, synthetic frequency-structured workloads, the
leave-one-out evaluation protocol, and an experiment harness that
regenerates every table and figure of the paper.

Quickstart::

    from repro import SlimeConfig, Slime4Rec, Trainer, TrainConfig, load_preset

    dataset = load_preset("beauty", scale=0.3, max_len=24)
    model = Slime4Rec(SlimeConfig(num_items=dataset.num_items, max_len=24))
    trainer = Trainer(model, dataset, TrainConfig(epochs=10))
    trainer.fit()
    print(trainer.test().as_row())
"""

from repro.autograd import Tensor, no_grad
from repro.core import SlideMode, Slime4Rec, SlimeConfig
from repro.data import SequenceDataset, load_preset, load_interactions_file
from repro.evaluation import Evaluator
from repro.train import TrainConfig, Trainer
from repro.baselines import BASELINE_NAMES, build_baseline

__version__ = "1.0.0"

__all__ = [
    "Tensor",
    "no_grad",
    "SlimeConfig",
    "SlideMode",
    "Slime4Rec",
    "SequenceDataset",
    "load_preset",
    "load_interactions_file",
    "Evaluator",
    "TrainConfig",
    "Trainer",
    "BASELINE_NAMES",
    "build_baseline",
    "__version__",
]
