"""Frequency-domain analysis of user behaviour sequences.

Tools behind the paper's Figure 1 narrative: decompose interaction
sequences into frequency components, measure spectral energy per band,
and quantify how much of a dataset's behaviour is periodic — useful
both for understanding why frequency-domain recommenders win on a
given dataset and for validating synthetic workloads.

The subpackage :mod:`repro.analysis.lint` points the same analytical
eye at the codebase itself: ``repro-lint`` is an AST-based checker for
the repo's hand-maintained invariants (replay coverage, dtype
stability, grad-buffer ownership, serving lock discipline, trip-point
hygiene, export drift) — see ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.lint import Finding, LintReport, run_lint
from repro.analysis.spectrum import (
    sequence_spectrum,
    band_energy,
    dataset_spectral_profile,
    periodicity_score,
)

__all__ = [
    "sequence_spectrum",
    "band_energy",
    "dataset_spectral_profile",
    "periodicity_score",
    "Finding",
    "LintReport",
    "run_lint",
]
