"""Frequency-domain analysis of user behaviour sequences.

Tools behind the paper's Figure 1 narrative: decompose interaction
sequences into frequency components, measure spectral energy per band,
and quantify how much of a dataset's behaviour is periodic — useful
both for understanding why frequency-domain recommenders win on a
given dataset and for validating synthetic workloads.
"""

from repro.analysis.spectrum import (
    sequence_spectrum,
    band_energy,
    dataset_spectral_profile,
    periodicity_score,
)

__all__ = [
    "sequence_spectrum",
    "band_energy",
    "dataset_spectral_profile",
    "periodicity_score",
]
