"""repro-lint: an AST-based checker for this repo's invariant families.

Every rule encodes a convention that was violated in shipped code at
least once before a human audit or a pinned test caught it — grad
buffer ownership (PR 8), replay-closure capture safety (PR 8), dtype
stability (PR 2), serving lock discipline (PR 9), fault trip-point
hygiene (PR 6/9), and export-surface drift.  See
``docs/STATIC_ANALYSIS.md`` for the catalogue and
:mod:`repro.analysis.lint.cli` for the command-line entry point.
"""

from __future__ import annotations

from repro.analysis.lint.baseline import (
    BaselineEntry,
    BaselineError,
    load_baseline,
    render_baseline,
)
from repro.analysis.lint.engine import (
    Finding,
    LintReport,
    Project,
    Rule,
    SourceFile,
    all_rules,
    format_finding,
    format_findings,
    run_lint,
)

__all__ = [
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "format_finding",
    "format_findings",
    "run_lint",
    "BaselineEntry",
    "BaselineError",
    "load_baseline",
    "render_baseline",
]
