"""Justification-annotated finding baselines for repro-lint.

A baseline is the committed list of findings the team has looked at
and accepted, each with a one-line justification.  The file format is
line-oriented and diff-friendly — one finding per line, sorted, keyed
by the finding's content fingerprint rather than its line number, so
unrelated edits to the same file never churn the baseline::

    # repro-lint baseline.  One accepted finding per line:
    # <fingerprint> <rule> <path> <scope> -- <justification>
    3f9ab2c1d0 R4 src/repro/serving/service.py RecommenderService.stats._sheds -- stats() is a diagnostic snapshot; torn reads acceptable

Lines starting with ``#`` and blank lines are ignored.  The
justification after `` -- `` is mandatory: a baseline entry without a
reason is itself a lint error (the whole point is that every accepted
violation carries its excuse in-repo).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.analysis.lint.engine import Finding

__all__ = ["BaselineEntry", "BaselineError", "load_baseline", "render_baseline"]

_SEP = " -- "


class BaselineError(ValueError):
    """A malformed baseline file (missing fields or justification)."""


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    scope: str
    justification: str


def load_baseline(path: Optional[Path]) -> Dict[str, BaselineEntry]:
    """Parse a baseline file into ``{fingerprint: entry}``.

    A missing file is an empty baseline (so fresh checkouts and new
    projects lint without ceremony); a malformed line raises
    :class:`BaselineError` naming the offending line.
    """
    if path is None or not Path(path).is_file():
        return {}
    entries: Dict[str, BaselineEntry] = {}
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if _SEP not in stripped:
            raise BaselineError(
                f"{path}:{lineno}: baseline entry has no ' -- justification'"
            )
        head, justification = stripped.split(_SEP, 1)
        justification = justification.strip()
        if not justification:
            raise BaselineError(
                f"{path}:{lineno}: baseline justification is empty"
            )
        fields = head.split()
        if len(fields) < 3:
            raise BaselineError(
                f"{path}:{lineno}: expected '<fingerprint> <rule> <path> "
                f"[scope] -- <justification>'"
            )
        fingerprint, rule, rel = fields[0], fields[1], fields[2]
        scope = " ".join(fields[3:])
        entries[fingerprint] = BaselineEntry(
            fingerprint, rule, rel, scope, justification
        )
    return entries


def render_baseline(
    findings: Iterable[Finding], justifications: Optional[Dict[str, str]] = None
) -> str:
    """Render findings as baseline text (one entry per fingerprint).

    Fresh entries get a ``TODO: justify`` placeholder the author must
    replace before committing — :func:`load_baseline` accepts it as
    text, but review should not.
    """
    justifications = justifications or {}
    seen = set()
    lines = [
        "# repro-lint baseline.  One accepted finding per line:",
        "# <fingerprint> <rule> <path> <scope> -- <justification>",
    ]
    for f in sorted(
        findings, key=lambda f: (f.path, f.rule, f.scope, f.message)
    ):
        if f.fingerprint in seen:
            continue
        seen.add(f.fingerprint)
        reason = justifications.get(f.fingerprint, "TODO: justify")
        scope = f" {f.scope}" if f.scope else ""
        lines.append(f"{f.fingerprint} {f.rule} {f.path}{scope} -- {reason}")
    return "\n".join(lines) + "\n"
