"""``repro-lint`` — run the invariant checker from the command line.

Usage::

    repro-lint                        # lint src/repro against the baseline
    repro-lint src/repro/serving      # lint a subtree (full project context)
    repro-lint --changed-only         # only report findings in files git
                                      # says changed (fast local loop)
    repro-lint --write-baseline       # accept current findings (existing
                                      # justifications are preserved;
                                      # new entries get a TODO to fill in)
    repro-lint --rules R4,R5          # subset of rules
    repro-lint --list-rules

Exit status: 0 clean, 1 non-baselined findings, 2 usage/config error.
Output is stable (sorted by path, line, rule) so two runs diff cleanly.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.analysis.lint.baseline import (
    BaselineError,
    load_baseline,
    render_baseline,
)
from repro.analysis.lint.engine import (
    all_rules,
    format_finding,
    run_lint,
)

__all__ = ["main"]


def _changed_files(root: Path) -> Optional[Set[str]]:
    """Root-relative paths git considers changed (staged, unstaged, or
    untracked); ``None`` if git is unavailable."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return {
        line.strip()
        for line in (diff.stdout + untracked.stdout).splitlines()
        if line.strip()
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: <root>/src/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root (default: inferred from the first path)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: <root>/lint_baseline.txt)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline file",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report findings only in files git sees as changed",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset, e.g. R1,R4",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in sorted(rules.values(), key=lambda r: r.name):
            print(f"{rule.name}  {rule.slug + '-ok':14s} {rule.title}")
        return 0

    selected = None
    if args.rules:
        selected = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in selected if r not in rules]
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(unknown)} "
                f"(have {', '.join(rules)})",
                file=sys.stderr,
            )
            return 2

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        probe = args.root or Path.cwd()
        default = probe / "src" / "repro"
        if not default.is_dir():
            print(
                f"repro-lint: no paths given and {default} does not exist",
                file=sys.stderr,
            )
            return 2
        paths = [default]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-lint: no such path: "
            f"{', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    root = args.root
    if root is None:
        from repro.analysis.lint.engine import _infer_root

        root = _infer_root(paths[0].resolve())
    root = Path(root).resolve()
    baseline = None
    if not args.no_baseline:
        baseline = args.baseline or (root / "lint_baseline.txt")

    changed: Optional[Set[str]] = None
    if args.changed_only:
        changed = _changed_files(root)
        if changed is None:
            print(
                "repro-lint: --changed-only needs git; linting everything",
                file=sys.stderr,
            )

    try:
        report = run_lint(
            paths,
            root=root,
            baseline=baseline,
            rules=selected,
            changed_only=changed,
        )
    except BaselineError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline or (root / "lint_baseline.txt")
        existing = load_baseline(target) if target.is_file() else {}
        justifications = {
            fp: e.justification
            for fp, e in existing.items()
            if e.justification != "TODO: justify"
        }
        target.write_text(
            render_baseline(
                report.findings + report.baselined, justifications
            ),
            encoding="utf-8",
        )
        print(
            f"repro-lint: wrote {target} "
            f"({len({f.fingerprint for f in report.findings + report.baselined})} "
            f"entries)"
        )
        return 0

    for f in report.findings:
        print(format_finding(f))
    for fp in report.stale_baseline:
        print(
            f"repro-lint: warning: baseline entry {fp} no longer matches "
            f"any finding — remove it (or run --write-baseline)",
            file=sys.stderr,
        )
    mode = " (changed files only)" if changed is not None else ""
    print(
        f"repro-lint: {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} "
        f"pragma-suppressed; {report.files_analyzed} files in "
        f"{report.duration:.2f}s{mode}"
    )
    return 1 if report.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
