"""Core of the repro-lint rule engine: files, findings, pragmas, registry.

The linter is a repo-specific static-analysis pass: it parses
``src/repro/**`` with :mod:`ast` and enforces the hand-maintained
invariant families that were each violated in shipped code at least
once before being caught by a human audit (see
``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the incident
each rule encodes).  This module owns everything rule-agnostic:

- :class:`SourceFile` — one parsed file plus its ``# lint: <slug>-ok(...)``
  pragma map (line pragmas silence that line; a pragma on a ``def``
  line silences the whole function span);
- :class:`Project` — the loaded file set.  *Target* files are the ones
  the user asked to lint; *context* files (the project's ``tests/``
  and ``benchmarks/`` trees) are loaded so project-wide rules such as
  trip-point hygiene and import resolution can see both sides;
- :class:`Finding` — one violation, with a **line-number-independent
  fingerprint** (rule + path + scope + detail) so baselines survive
  unrelated edits to the same file;
- the rule registry and :func:`run_lint`, the single entry point used
  by the CLI and by ``tests/test_lint_clean.py``.

Output is deliberately stable and diff-friendly: findings sort by
(path, line, rule, message) and render one per line.
"""

from __future__ import annotations

import ast
import hashlib
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "SourceFile",
    "Project",
    "Rule",
    "LintReport",
    "register_rule",
    "all_rules",
    "run_lint",
    "format_finding",
    "format_findings",
    "call_name",
]

#: ``# lint: replay-ok(reason)`` — one or more per line, reason required
#: to be non-empty only by convention (the reason is for the reader).
_PRAGMA_RE = re.compile(r"#\s*lint:\s*([a-z][a-z0-9-]*)-ok\(([^)]*)\)")

#: Directories never descended into when scanning a project tree.  The
#: analyzer's own test corpus lives under ``tests/lint_fixtures/`` and
#: contains deliberate violations; it must not leak into a real-repo
#: run (fixture roots themselves are passed explicitly by the tests).
_SKIP_DIRS = {"__pycache__", "lint_fixtures", ".git", ".pytest_cache"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``detail`` is the stable identity used for the fingerprint — rules
    set it to a content key (e.g. ``Class.method.attr``) so the
    fingerprint survives line-number churn; when ``None`` the message
    itself is used.
    """

    rule: str  # "R1".."R6"
    slug: str  # pragma slug: replay | dtype | grad | unlocked | trip | export
    path: str  # project-root-relative posix path
    line: int
    scope: str  # dotted qualname of the enclosing scope ("" = module)
    message: str
    detail: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        key = f"{self.rule}|{self.path}|{self.scope}|{self.detail or self.message}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:10]


def format_finding(f: Finding) -> str:
    where = f" {f.scope}:" if f.scope else ""
    return f"{f.path}:{f.line}: {f.rule} [{f.fingerprint}]{where} {f.message}"


def format_findings(findings: Iterable[Finding]) -> str:
    return "\n".join(format_finding(f) for f in findings)


class SourceFile:
    """A parsed source file plus its pragma map and test-side flag."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.tree = ast.parse(text, filename=rel)
        parts = Path(rel).parts
        self.is_test = (
            "tests" in parts
            or "benchmarks" in parts
            or Path(rel).name.startswith("test_")
        )
        self.line_pragmas: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            if "lint:" not in line:
                continue
            slugs = {m.group(1) for m in _PRAGMA_RE.finditer(line)}
            if slugs:
                self.line_pragmas[lineno] = slugs
        # A pragma on a `def` (or `class`) line silences its whole span.
        self.span_pragmas: List[Tuple[int, int, Set[str]]] = []
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                slugs = self.line_pragmas.get(node.lineno)
                if slugs:
                    self.span_pragmas.append(
                        (node.lineno, node.end_lineno or node.lineno, slugs)
                    )

    def suppressed(self, slug: str, line: int) -> bool:
        if slug in self.line_pragmas.get(line, ()):
            return True
        for start, end, slugs in self.span_pragmas:
            if start <= line <= end and slug in slugs:
                return True
        return False

    @property
    def module(self) -> Optional[str]:
        """Dotted module name (``src/`` prefix stripped), if derivable."""
        parts = list(Path(self.rel).parts)
        if parts and parts[0] == "src":
            parts = parts[1:]
        if not parts or not parts[-1].endswith(".py"):
            return None
        parts[-1] = parts[-1][: -len(".py")]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) if parts else None


class Project:
    """The analyzed file set: explicit targets plus project context."""

    def __init__(self, root: Path, files: List[SourceFile], targets: Set[str]):
        self.root = root
        self.files = files
        self.targets = targets
        self.by_rel: Dict[str, SourceFile] = {f.rel: f for f in files}
        self.by_module: Dict[str, SourceFile] = {}
        for f in files:
            if f.is_test:
                continue
            mod = f.module
            if mod:
                self.by_module.setdefault(mod, f)

    @property
    def target_files(self) -> List[SourceFile]:
        return [f for f in self.files if f.rel in self.targets]

    @classmethod
    def load(cls, paths: Sequence[Path], root: Optional[Path] = None) -> "Project":
        paths = [Path(p).resolve() for p in paths]
        if root is None:
            root = _infer_root(paths[0] if paths else Path.cwd())
        root = Path(root).resolve()
        target_paths = _collect(paths, root)
        context_paths: List[Path] = []
        for extra in ("tests", "benchmarks"):
            d = root / extra
            if d.is_dir():
                context_paths.extend(_collect([d], root))
        files: List[SourceFile] = []
        seen: Set[Path] = set()
        targets: Set[str] = set()
        for p, is_target in [(p, True) for p in target_paths] + [
            (p, False) for p in context_paths
        ]:
            if p in seen:
                if is_target:
                    targets.add(_rel(p, root))
                continue
            seen.add(p)
            try:
                text = p.read_text(encoding="utf-8")
                sf = SourceFile(p, _rel(p, root), text)
            except (OSError, SyntaxError, UnicodeDecodeError):
                continue  # unparseable context never blocks a lint run
            files.append(sf)
            if is_target:
                targets.add(sf.rel)
        return cls(root, files, targets)


def _rel(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _infer_root(start: Path) -> Path:
    cur = start if start.is_dir() else start.parent
    for candidate in [cur, *cur.parents]:
        if (candidate / ".git").exists() or (candidate / "setup.py").exists():
            return candidate
    return cur


def _collect(paths: Sequence[Path], root: Path) -> List[Path]:
    # Fixture trees live under a `lint_fixtures` dir; skip them when
    # scanning a real project, but honour them when the root itself is
    # inside one (the analyzer's own tests point at fixture roots).
    inside_fixture = "lint_fixtures" in root.parts
    out: List[Path] = []
    for p in paths:
        if p.is_file() and p.suffix == ".py":
            out.append(p)
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                rel_parts = sub.relative_to(p).parts
                skip = _SKIP_DIRS if not inside_fixture else _SKIP_DIRS - {
                    "lint_fixtures"
                }
                if any(part in skip for part in rel_parts[:-1]):
                    continue
                out.append(sub)
    return out


def call_name(node: ast.AST) -> str:
    """Dotted name of a call target: ``np.zeros``, ``self._make``, ``trip``."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")  # call on a non-name expression, e.g. f().g
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class Rule:
    name: str  # "R1".."R6"
    slug: str
    title: str
    check: Callable[[Project], List[Finding]]


_RULES: Dict[str, Rule] = {}


def register_rule(name: str, slug: str, title: str):
    def deco(fn: Callable[[Project], List[Finding]]):
        _RULES[name] = Rule(name, slug, title, fn)
        return fn

    return deco


def all_rules() -> Dict[str, Rule]:
    _ensure_rules_loaded()
    return dict(_RULES)


def _ensure_rules_loaded() -> None:
    # Rule modules self-register on import; import them lazily so the
    # engine has no import-order dependency on them.
    from repro.analysis.lint import (  # noqa: F401
        rules_dtype,
        rules_grad,
        rules_locks,
        rules_project,
        rules_replay,
    )


@dataclass
class LintReport:
    """Outcome of one lint run, split by how each finding was handled."""

    findings: List[Finding] = field(default_factory=list)  # actionable
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0  # silenced by pragmas
    stale_baseline: List[str] = field(default_factory=list)  # dead fingerprints
    files_analyzed: int = 0
    duration: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.findings


def run_lint(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
    changed_only: Optional[Set[str]] = None,
) -> LintReport:
    """Lint ``paths`` and return a :class:`LintReport`.

    ``baseline`` points at a justification-annotated baseline file (see
    :mod:`repro.analysis.lint.baseline`); matched findings move to
    ``report.baselined``.  ``changed_only`` restricts *reported*
    findings to the given root-relative paths — the whole project is
    still parsed so cross-file rules keep full context.
    """
    from repro.analysis.lint.baseline import load_baseline

    t0 = time.perf_counter()
    _ensure_rules_loaded()
    project = Project.load(paths, root=root)
    selected = (
        [_RULES[r] for r in rules] if rules is not None else list(_RULES.values())
    )
    report = LintReport(files_analyzed=len(project.target_files))
    raw: List[Finding] = []
    for rule in selected:
        raw.extend(rule.check(project))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    entries = load_baseline(baseline) if baseline else {}
    seen_fps: Set[str] = set()
    for f in raw:
        sf = project.by_rel.get(f.path)
        if sf is not None and sf.suppressed(f.slug, f.line):
            report.suppressed += 1
            continue
        if f.fingerprint in entries:
            seen_fps.add(f.fingerprint)
            report.baselined.append(f)
            continue
        if changed_only is not None and f.path not in changed_only:
            continue
        report.findings.append(f)
    # A partial (changed-only) run has not seen every finding, so it
    # cannot judge baseline staleness.
    report.stale_baseline = (
        sorted(set(entries) - seen_fps) if changed_only is None else []
    )
    report.duration = time.perf_counter() - t0
    return report
