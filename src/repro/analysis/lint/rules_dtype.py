"""R2 — dtype-stability: the float64-promotion class PR 2 audited away.

The engine's dtype contract (``docs/ARCHITECTURE.md``) is that an op's
output dtype is a pure function of its input dtypes.  PR 2's manual
audit found three silent float64 promotions, all with the same three
shapes, which this rule machine-checks inside dtype-sensitive modules
(modules defining ``Module``-descendant classes or op-style nested
``forward``/``backward`` closures):

- a ``forward``/``backward`` closure returning a bare full reduction
  (``x.sum()``, ``np.mean(x)``, ``a @ b``): a 0-d result decays to a
  numpy *scalar*, and scalars re-promote float32 operands downstream.
  The fix is re-wrapping with ``np.asarray(...)`` at the return.
- ``np.prod(...)`` used without an immediate ``int(...)`` wrapper: it
  returns ``np.int64``, and ``grad / np.int64`` promotes float32
  gradients to float64 (the PR 2 ``mean`` incident).
- dtype-less allocations — ``np.zeros/ones/empty/full`` without a
  ``dtype=`` keyword, or ``np.array``/``np.asarray`` over a Python
  literal container — which default to float64 and leak it into
  whatever they touch.

Pragma: ``# lint: dtype-ok(reason)``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.lint.engine import (
    Finding,
    Project,
    SourceFile,
    call_name,
    register_rule,
)

__all__ = ["check_dtype"]

_REDUCTIONS = {"sum", "mean", "max", "min", "prod", "var", "std"}
_ALLOC_NO_DTYPE = {"zeros", "ones", "empty", "full"}
_WRAPPERS = {"np.asarray", "np.array", "numpy.asarray", "numpy.array"}


def _module_descendants(project: Project) -> Set[str]:
    """Class names whose base-name chain reaches the literal ``Module``."""
    bases: Dict[str, List[str]] = {}
    for sf in project.files:
        if sf.is_test:
            continue
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef):
                names = []
                for b in node.bases:
                    if isinstance(b, ast.Name):
                        names.append(b.id)
                    elif isinstance(b, ast.Attribute):
                        names.append(b.attr)
                bases.setdefault(node.name, []).extend(names)
    descendants: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name in descendants:
                continue
            if any(p == "Module" or p in descendants for p in parents):
                descendants.add(name)
                changed = True
    return descendants


def _has_op_closures(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            for child in ast.walk(node):
                if (
                    child is not node
                    and isinstance(child, ast.FunctionDef)
                    and child.name in ("forward", "backward")
                ):
                    return True
    return False


def _np_name(dotted: str, leaf_set: Set[str]) -> Optional[str]:
    """The leaf if ``dotted`` is ``np.<leaf>``/``numpy.<leaf>`` for a known leaf."""
    parts = dotted.split(".")
    if len(parts) == 2 and parts[0] in ("np", "numpy") and parts[1] in leaf_set:
        return parts[1]
    return None


def _keeps_dims(call: ast.Call) -> bool:
    """True when a reduction provably returns an ndarray: a constant
    non-None ``axis`` (full reductions only happen with axis absent,
    ``axis=None``, or a runtime axis value) or ``keepdims=True``."""
    axis = None
    # np.sum(x, 0) carries the axis as arg 1; x.sum(0) as arg 0.
    if _np_name(call_name(call), _REDUCTIONS):
        if len(call.args) >= 2:
            axis = call.args[1]
    elif call.args:
        axis = call.args[0]
    for kw in call.keywords:
        if kw.arg == "axis":
            axis = kw.value
        if (
            kw.arg == "keepdims"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        ):
            return True
    return (
        isinstance(axis, (ast.Constant, ast.UnaryOp))
        and not (isinstance(axis, ast.Constant) and axis.value is None)
    )


def _is_literal_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Tuple, ast.ListComp, ast.GeneratorExp)):
        return True
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float, complex, bool)
    )


class _DtypeVisitor(ast.NodeVisitor):
    def __init__(self, sf: SourceFile) -> None:
        self.sf = sf
        self.findings: List[Finding] = []
        self.scope: List[str] = []
        self.func_depth = 0
        self.closure_stack: List[bool] = []  # inside a nested fwd/bwd closure?
        self.int_wrapped: Set[int] = set()  # id() of calls under int(...)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def _visit_func(self, node) -> None:
        is_closure = (
            self.func_depth > 0 and node.name in ("forward", "backward")
        )
        self.scope.append(node.name)
        self.func_depth += 1
        self.closure_stack.append(is_closure)
        self.generic_visit(node)
        self.closure_stack.pop()
        self.func_depth -= 1
        self.scope.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _emit(self, line: int, message: str, detail: str) -> None:
        self.findings.append(
            Finding(
                rule="R2",
                slug="dtype",
                path=self.sf.rel,
                line=line,
                scope=".".join(self.scope),
                message=message,
                detail=detail,
            )
        )

    # -- scalar returns in op closures ------------------------------------
    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and any(self.closure_stack):
            values = (
                node.value.elts
                if isinstance(node.value, ast.Tuple)
                else [node.value]
            )
            for value in values:
                red = self._reduction_name(value)
                if red is not None:
                    self._emit(
                        node.lineno,
                        f"op closure returns a bare '{red}' result that can "
                        f"decay to a numpy scalar; wrap it in np.asarray(...)",
                        detail=f"scalar-return:{self.scope[-1]}:{red}",
                    )
        self.generic_visit(node)

    def _reduction_name(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Call):
            dotted = call_name(value)
            if dotted in _WRAPPERS:
                return None  # re-wrapped, the contract's fix
            is_reduction = bool(_np_name(dotted, _REDUCTIONS)) or (
                isinstance(value.func, ast.Attribute)
                and value.func.attr in _REDUCTIONS
            )
            if is_reduction and not _keeps_dims(value):
                if _np_name(dotted, _REDUCTIONS):
                    return dotted
                return f".{value.func.attr}()"
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.MatMult):
            return "@"
        return None

    # -- np.prod and allocations -------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = call_name(node)
        if isinstance(node.func, ast.Name) and node.func.id == "int":
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    self.int_wrapped.add(id(arg))
        if _np_name(dotted, {"prod"}) and id(node) not in self.int_wrapped:
            self._emit(
                node.lineno,
                "np.prod returns a numpy integer scalar that promotes "
                "float32 gradients on division; wrap it in int(...)",
                detail=f"np-prod:{'.'.join(self.scope)}",
            )
        leaf = _np_name(dotted, _ALLOC_NO_DTYPE)
        if leaf is not None and not any(
            kw.arg == "dtype" for kw in node.keywords
        ):
            self._emit(
                node.lineno,
                f"np.{leaf} without dtype= allocates float64 by default; "
                f"pass the operand dtype explicitly",
                detail=f"alloc:{leaf}:{'.'.join(self.scope)}",
            )
        if _np_name(dotted, {"array", "asarray"}):
            if (
                node.args
                and _is_literal_container(node.args[0])
                and not any(kw.arg == "dtype" for kw in node.keywords)
            ):
                self._emit(
                    node.lineno,
                    "np.array/np.asarray over a Python literal defaults to "
                    "float64; pass dtype= explicitly",
                    detail=f"alloc:array-literal:{'.'.join(self.scope)}",
                )
        self.generic_visit(node)


@register_rule(
    "R2",
    "dtype",
    "op code must not silently promote to float64 (scalar decay, "
    "np.int64 arithmetic, dtype-less allocation)",
)
def check_dtype(project: Project) -> List[Finding]:
    descendants = _module_descendants(project)
    findings: List[Finding] = []
    for sf in project.target_files:
        if sf.is_test:
            continue
        has_model_class = any(
            isinstance(n, ast.ClassDef) and n.name in descendants
            for n in ast.walk(sf.tree)
        )
        if not has_model_class and not _has_op_closures(sf.tree):
            continue
        visitor = _DtypeVisitor(sf)
        visitor.visit(sf.tree)
        findings.extend(visitor.findings)
    return findings
