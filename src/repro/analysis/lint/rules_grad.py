"""R3 — buffer-ownership: in-place gradient mutation is a privilege.

PR 8 split gradient buffers into **owned** accumulators (the tensor
allocated them; in-place writes are safe) and **borrowed** references
(aliases into another node's buffer — e.g. shared-backward siblings;
an in-place write corrupts a neighbour, the latent double-release
class).  The runtime contract is that only two sites may mutate a
``.grad``/``._grad`` buffer in place — ``Tensor._accumulate_grad`` and
``clip_grad_norm`` — and anything else must either rebind (plain
assignment is always safe) or guard the mutation with an explicit
``_grad_owned`` check.

This rule flags in-place mutation forms applied to a ``.grad`` /
``._grad`` attribute — augmented assignment, slice assignment,
``np.copyto``, ``out=`` keyword targets, and ``.fill()`` — outside the
two sanctioned functions and outside any ``if ... _grad_owned ...:``
guard.

Pragma: ``# lint: grad-ok(reason)``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.lint.engine import (
    Finding,
    Project,
    SourceFile,
    call_name,
    register_rule,
)

__all__ = ["check_grad_ownership"]

_GRAD_ATTRS = {"grad", "_grad"}
_ALLOWED_FUNCS = {"_accumulate_grad", "clip_grad_norm"}


def _is_grad_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in _GRAD_ATTRS


def _mentions_grad_owned(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "_grad_owned":
            return True
        if isinstance(node, ast.Name) and node.id == "_grad_owned":
            return True
        if isinstance(node, ast.Call) and call_name(node) == "getattr":
            if (
                len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and node.args[1].value == "_grad_owned"
            ):
                return True
    return False


class _GradVisitor(ast.NodeVisitor):
    def __init__(self, sf: SourceFile) -> None:
        self.sf = sf
        self.findings: List[Finding] = []
        self.scope: List[str] = []
        self.func_names: List[str] = []
        self.guard_depth = 0  # nested `if ..._grad_owned...:` blocks

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def _visit_func(self, node) -> None:
        self.scope.append(node.name)
        self.func_names.append(node.name)
        self.generic_visit(node)
        self.func_names.pop()
        self.scope.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_If(self, node: ast.If) -> None:
        guarded = _mentions_grad_owned(node.test)
        if guarded:
            self.guard_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if guarded:
            self.guard_depth -= 1
        # The else branch is the not-owned path; no guard applies there.
        for stmt in node.orelse:
            self.visit(stmt)

    def _allowed(self) -> bool:
        return (
            any(name in _ALLOWED_FUNCS for name in self.func_names)
            or self.guard_depth > 0
        )

    def _emit(self, line: int, form: str) -> None:
        self.findings.append(
            Finding(
                rule="R3",
                slug="grad",
                path=self.sf.rel,
                line=line,
                scope=".".join(self.scope),
                message=(
                    f"in-place mutation of a gradient buffer ({form}) outside "
                    f"_accumulate_grad/clip_grad_norm and without a "
                    f"_grad_owned guard; borrowed buffers alias sibling "
                    f"nodes — rebind instead"
                ),
                detail=f"grad-mutation:{form}:{'.'.join(self.scope)}",
            )
        )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if _is_grad_attr(target) or (
            isinstance(target, ast.Subscript) and _is_grad_attr(target.value)
        ):
            if not self._allowed():
                self._emit(node.lineno, "augmented assignment")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and _is_grad_attr(
                target.value
            ):
                if not self._allowed():
                    self._emit(node.lineno, "slice assignment")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = call_name(node)
        if dotted in ("np.copyto", "numpy.copyto") and node.args:
            if _is_grad_attr(node.args[0]) and not self._allowed():
                self._emit(node.lineno, "np.copyto")
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "fill"
            and _is_grad_attr(node.func.value)
            and not self._allowed()
        ):
            self._emit(node.lineno, ".fill()")
        for kw in node.keywords:
            if kw.arg == "out" and _is_grad_attr(kw.value):
                if not self._allowed():
                    self._emit(node.lineno, "out= target")
        self.generic_visit(node)


@register_rule(
    "R3",
    "grad",
    "gradient buffers mutate in place only in sanctioned code or under "
    "a _grad_owned guard",
)
def check_grad_ownership(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for sf in project.target_files:
        if sf.is_test:
            continue
        visitor = _GradVisitor(sf)
        visitor.visit(sf.tree)
        findings.extend(visitor.findings)
    return findings
