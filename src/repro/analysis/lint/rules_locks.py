"""R4 — lock-discipline: PR 9's serving lock protocol, machine-checked.

``RecommenderService`` serializes state behind three locks with a
documented ownership map (model path under ``self._lock``, queue and
fallback state under ``self._cond``, refresh bookkeeping under
``self._refresh_mutex``).  The protocol decayed exactly the way such
protocols do: a method takes the lock, a later convenience accessor
reads the same attribute bare, and the race waits for production
traffic.  This rule infers the protocol instead of trusting it:

- a class **owns locks** if its ``__init__`` assigns
  ``threading.Lock()``/``RLock()``/``Condition()`` to attributes;
- an attribute is **lock-protected** if any non-``__init__`` method
  writes it while lexically inside ``with self.<lock>:`` — the
  protecting set is the union of locks ever held at a write;
- every other read or write of that attribute in a non-``__init__``
  method must hold one of its protecting locks.

Nested ``def`` bodies reset the held-lock set (closures run later, on
other threads); lambdas keep it (``cond.wait_for(lambda: ...)``
predicates run inline under the lock).  ``__init__`` is exempt —
construction precedes sharing.  Methods documented as
"caller holds the lock" opt out with the pragma, which is the point:
the exemption is visible at the definition site.

Pragma: ``# lint: unlocked-ok(reason)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.lint.engine import (
    Finding,
    Project,
    SourceFile,
    call_name,
    register_rule,
)

__all__ = ["check_lock_discipline"]

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "Lock",
    "RLock",
    "Condition",
}


@dataclass(frozen=True)
class _Access:
    attr: str
    method: str
    line: int
    held: FrozenSet[str]
    is_write: bool


def _class_locks(cls: ast.ClassDef) -> Set[str]:
    locks: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    if call_name(node.value) not in _LOCK_FACTORIES:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            locks.add(target.attr)
    return locks


class _MethodWalker(ast.NodeVisitor):
    """Collects self-attribute accesses with the lexically held locks."""

    def __init__(self, method: str, locks: Set[str]) -> None:
        self.method = method
        self.locks = locks
        self.held: List[str] = []
        self.accesses: List[_Access] = []

    def _self_attr(self, node: ast.AST) -> str:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr not in self.locks
        ):
            return node.attr
        return ""

    def _record(self, attr: str, line: int, is_write: bool) -> None:
        self.accesses.append(
            _Access(attr, self.method, line, frozenset(self.held), is_write)
        )

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.locks
            ):
                acquired.append(expr.attr)
            else:
                self.visit(expr)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self.held[-len(acquired):]

    def _visit_nested(self, node) -> None:
        # A nested def runs later (worker threads): locks held at the
        # definition site are NOT held at execution time.
        saved, self.held = self.held, []
        self.generic_visit(node)
        self.held = saved

    visit_FunctionDef = _visit_nested
    visit_AsyncFunctionDef = _visit_nested

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if attr:
            self._record(
                attr, node.lineno, isinstance(node.ctx, (ast.Store, ast.Del))
            )
        self.generic_visit(node)

    def _subscript_write(self, target: ast.AST) -> None:
        # self.counts[k] += 1 parses the attribute as a Load; record the
        # mutation explicitly so it counts as a write for inference.
        if isinstance(target, ast.Subscript):
            attr = self._self_attr(target.value)
            if attr:
                self._record(attr, target.lineno, True)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._subscript_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._subscript_write(node.target)
        self.generic_visit(node)


def _check_class(sf: SourceFile, cls: ast.ClassDef) -> List[Finding]:
    locks = _class_locks(cls)
    if not locks:
        return []
    accesses: List[_Access] = []
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name != "__init__"
        ):
            walker = _MethodWalker(stmt.name, locks)
            for inner in stmt.body:
                walker.visit(inner)
            accesses.extend(walker.accesses)
    protecting: Dict[str, Set[str]] = {}
    written_in: Dict[str, Set[Tuple[str, str]]] = {}
    for acc in accesses:
        if acc.is_write and acc.held:
            protecting.setdefault(acc.attr, set()).update(acc.held)
            for lock in acc.held:
                written_in.setdefault(acc.attr, set()).add((acc.method, lock))
    findings: List[Finding] = []
    for acc in accesses:
        guards = protecting.get(acc.attr)
        if not guards or acc.held & guards:
            continue
        origin_method, origin_lock = sorted(written_in[acc.attr])[0]
        verb = "written" if acc.is_write else "read"
        held = (
            f" (holds only {', '.join(sorted(acc.held))})" if acc.held else ""
        )
        findings.append(
            Finding(
                rule="R4",
                slug="unlocked",
                path=sf.rel,
                line=acc.line,
                scope=f"{cls.name}.{acc.method}",
                message=(
                    f"'{acc.attr}' is written under self.{origin_lock} in "
                    f"{origin_method}() but {verb} here without holding "
                    f"{' or '.join('self.' + g for g in sorted(guards))}"
                    f"{held}"
                ),
                detail=f"{cls.name}.{acc.method}.{acc.attr}",
            )
        )
    return findings


@register_rule(
    "R4",
    "unlocked",
    "attributes written under a class's lock must never be accessed bare",
)
def check_lock_discipline(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for sf in project.target_files:
        if sf.is_test:
            continue
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(_check_class(sf, node))
    return findings
