"""R5/R6 — project-wide hygiene: trip points and export surfaces.

**R5 trip-point hygiene.**  The fault-injection story (PR 6 training,
PR 9 serving chaos) only means something if the trip-point vocabulary
stays bidirectionally live: a test scheduling a fault at a point no
production ``trip()`` ever reaches silently tests nothing, and a
production trip point no test ever exercises is an untested failure
path.  Production points are the string literals passed to
``trip(...)`` in non-test code; scheduled points are the literals
passed to ``crash_at``/``io_error_at``/``delay_at`` on the test side
(``tests/`` and ``benchmarks/``).  Coverage accepts any test-side
string literal equal to the point, so parametrized matrices
(``POINTS = ("serve.encode", ...)``) count.
Pragma: ``# lint: trip-ok(reason)``.

**R6 export-drift.**  Every module in this repo declares ``__all__``;
the rule keeps that surface honest: ``__all__`` names must resolve to
a top-level binding, public top-level ``def``/``class`` symbols must be
exported or underscore-prefixed, and intra-project ``from X import y``
must name something ``X`` actually binds (or a submodule).  Module
constants are deliberately not forced into ``__all__`` — classes and
functions are the API surface being checked.
Pragma: ``# lint: export-ok(reason)``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.lint.engine import (
    Finding,
    Project,
    SourceFile,
    call_name,
    register_rule,
)

__all__ = ["check_trip_points", "check_exports", "module_bindings"]

_SCHEDULERS = {"crash_at", "io_error_at", "delay_at"}


def _leaf(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


@register_rule(
    "R5",
    "trip",
    "fault trip points must exist in production and be exercised by tests",
)
def check_trip_points(project: Project) -> List[Finding]:
    prod_points: Dict[str, Tuple[str, int]] = {}
    for sf in project.files:
        if sf.is_test:
            continue
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Call)
                and _leaf(call_name(node)) == "trip"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                prod_points.setdefault(
                    node.args[0].value, (sf.rel, node.lineno)
                )

    covered: Set[str] = set()
    scheduled: List[Tuple[str, str, int]] = []
    for sf in project.files:
        if not sf.is_test:
            continue
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                covered.add(node.value)
            if (
                isinstance(node, ast.Call)
                and _leaf(call_name(node)) in _SCHEDULERS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                scheduled.append((node.args[0].value, sf.rel, node.lineno))

    findings: List[Finding] = []
    for point, rel, line in scheduled:
        if point not in prod_points:
            findings.append(
                Finding(
                    rule="R5",
                    slug="trip",
                    path=rel,
                    line=line,
                    scope="",
                    message=(
                        f"test schedules a fault at '{point}' but no "
                        f"production trip() uses that point — the fault "
                        f"can never fire"
                    ),
                    detail=f"unknown:{point}",
                )
            )
    for point, (rel, line) in sorted(prod_points.items()):
        if point not in covered:
            findings.append(
                Finding(
                    rule="R5",
                    slug="trip",
                    path=rel,
                    line=line,
                    scope="",
                    message=(
                        f"production trip point '{point}' is never "
                        f"referenced by any test — this failure path is "
                        f"unexercised"
                    ),
                    detail=f"untested:{point}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# R6
# ---------------------------------------------------------------------------
def module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module top level, descending into If/Try/loop
    bodies (the ``try: import scipy`` fallback pattern) but not into
    functions or classes."""
    names: Set[str] = set()

    def add_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                add_target(elt)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    def collect(body) -> None:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    add_target(target)
            elif isinstance(stmt, ast.AnnAssign):
                add_target(stmt.target)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.If):
                collect(stmt.body)
                collect(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                collect(stmt.body)
                for handler in stmt.handlers:
                    collect(handler.body)
                collect(stmt.orelse)
                collect(stmt.finalbody)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                add_target(stmt.target)
                collect(stmt.body)
                collect(stmt.orelse)
            elif isinstance(stmt, ast.While):
                collect(stmt.body)
                collect(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        add_target(item.optional_vars)
                collect(stmt.body)

    collect(tree.body)
    return names


def _declared_all(tree: ast.Module) -> Tuple[List[Tuple[str, int]], int]:
    """(names-with-lines, assign-line) of a literal ``__all__``; line 0 if absent."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in stmt.targets
        ):
            if isinstance(stmt.value, (ast.List, ast.Tuple)):
                names = [
                    (elt.value, elt.lineno)
                    for elt in stmt.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                ]
                return names, stmt.lineno
            return [], stmt.lineno  # dynamic __all__: skip content checks
    return [], 0


@register_rule(
    "R6",
    "export",
    "__all__ must resolve and public symbols must be exported",
)
def check_exports(project: Project) -> List[Finding]:
    bindings_cache: Dict[str, Set[str]] = {}

    def bindings_of(mod: str) -> Set[str]:
        if mod not in bindings_cache:
            sf = project.by_module.get(mod)
            bindings_cache[mod] = module_bindings(sf.tree) if sf else set()
        return bindings_cache[mod]

    findings: List[Finding] = []
    for sf in project.target_files:
        if sf.is_test:
            continue
        bindings = module_bindings(sf.tree)
        all_names, all_line = _declared_all(sf.tree)
        exported = {name for name, _ in all_names}
        if all_line:
            for name, line in all_names:
                if name not in bindings:
                    findings.append(
                        Finding(
                            rule="R6",
                            slug="export",
                            path=sf.rel,
                            line=line,
                            scope="",
                            message=(
                                f"'{name}' is listed in __all__ but the "
                                f"module binds no such name"
                            ),
                            detail=f"unresolved:{name}",
                        )
                    )
            for stmt in sf.tree.body:
                if (
                    isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    )
                    and not stmt.name.startswith("_")
                    and stmt.name not in exported
                ):
                    findings.append(
                        Finding(
                            rule="R6",
                            slug="export",
                            path=sf.rel,
                            line=stmt.lineno,
                            scope="",
                            message=(
                                f"public symbol '{stmt.name}' is not in "
                                f"__all__; export it or prefix it with _"
                            ),
                            detail=f"drift:{stmt.name}",
                        )
                    )
        else:
            has_public = any(
                isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                and not stmt.name.startswith("_")
                for stmt in sf.tree.body
            )
            if has_public:
                findings.append(
                    Finding(
                        rule="R6",
                        slug="export",
                        path=sf.rel,
                        line=1,
                        scope="",
                        message=(
                            "module defines public symbols but no __all__"
                        ),
                        detail="no-all",
                    )
                )
        # Intra-project import resolution (any scope: lazy imports too).
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.level == 0
                and node.module
                and node.module in project.by_module
            ):
                target_bindings = bindings_of(node.module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    if (
                        alias.name not in target_bindings
                        and f"{node.module}.{alias.name}"
                        not in project.by_module
                    ):
                        findings.append(
                            Finding(
                                rule="R6",
                                slug="export",
                                path=sf.rel,
                                line=node.lineno,
                                scope="",
                                message=(
                                    f"'{alias.name}' imported from "
                                    f"{node.module}, which binds no such "
                                    f"name"
                                ),
                                detail=f"import:{node.module}.{alias.name}",
                            )
                        )
    return findings
