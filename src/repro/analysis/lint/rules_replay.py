"""R1 — replay-coverage: every autograd node must be capture-safe.

PR 8's static-graph capture only works because **every** op records a
replay closure: nodes built through the ``_make`` chokepoint pass their
``forward`` as the replay; fused multi-output nodes built directly as
``Tensor(..., _backward=...)`` must call ``record_node`` themselves in
the same function.  A node that skips both is invisible to capture and
silently produces a stale tape.  Replay closures additionally may not
touch ambient nondeterministic state (``np.random``, ``random``,
``time``, ``datetime``, ``secrets``, ``os.urandom``) — randomness must
arrive as an explicitly passed RNG stream, and host-side recomputes go
through ``record_host``.  Three checks:

- ``_make(...)`` called without a replay closure (fewer than four
  positional arguments and no ``replay=``, or an explicit
  ``replay=None``);
- ``Tensor(..., _backward=...)`` constructed in a function that never
  calls ``record_node`` (outside the module defining ``Tensor`` itself,
  whose internals are the engine);
- a replay closure (the 4th ``_make`` argument or the 2nd
  ``record_node`` argument, resolved lexically) whose body reaches an
  ambient-state root.

Pragma: ``# lint: replay-ok(reason)``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.lint.engine import (
    Finding,
    Project,
    SourceFile,
    call_name,
    register_rule,
)

__all__ = ["check_replay"]

#: Dotted-name roots a replay closure must not reach.
_AMBIENT_ROOTS = {"random", "time", "datetime", "secrets"}
_AMBIENT_PREFIXES = ("np.random", "numpy.random", "os.urandom")


def _is_ambient(dotted: str) -> bool:
    if not dotted:
        return False
    root = dotted.split(".", 1)[0]
    if root in _AMBIENT_ROOTS:
        return True
    return any(
        dotted == p or dotted.startswith(p + ".") for p in _AMBIENT_PREFIXES
    )


def _ambient_uses(closure: ast.AST) -> List[tuple]:
    """(line, dotted) for every ambient-state reference in a closure body."""
    hits = []
    for node in ast.walk(closure):
        if isinstance(node, ast.Attribute):
            dotted = call_name(node)
            if _is_ambient(dotted):
                hits.append((node.lineno, dotted))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if _is_ambient(node.func.id):
                hits.append((node.lineno, node.func.id))
    # An attribute chain like np.random.default_rng reports once per
    # Attribute level; keep the longest (first-seen deepest) per line.
    best: Dict[int, str] = {}
    for line, dotted in hits:
        if len(dotted) > len(best.get(line, "")):
            best[line] = dotted
    return sorted(best.items())


class _ReplayVisitor(ast.NodeVisitor):
    def __init__(self, sf: SourceFile, defines_tensor: bool) -> None:
        self.sf = sf
        self.defines_tensor = defines_tensor
        self.findings: List[Finding] = []
        self.scope: List[str] = []
        self.func_stack: List[ast.AST] = []
        self.checked_closures: Set[int] = set()

    # -- scope bookkeeping ------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def _visit_func(self, node) -> None:
        self.scope.append(node.name)
        self.func_stack.append(node)
        self.generic_visit(node)
        self.func_stack.pop()
        self.scope.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _qualname(self) -> str:
        return ".".join(self.scope)

    def _emit(self, line: int, message: str, detail: str) -> None:
        self.findings.append(
            Finding(
                rule="R1",
                slug="replay",
                path=self.sf.rel,
                line=line,
                scope=self._qualname(),
                message=message,
                detail=detail,
            )
        )

    def _resolve_closure(self, expr: ast.AST) -> Optional[ast.AST]:
        if isinstance(expr, ast.Lambda):
            return expr
        if isinstance(expr, ast.Name):
            for func in reversed(self.func_stack):
                for child in ast.walk(func):
                    if (
                        isinstance(child, ast.FunctionDef)
                        and child.name == expr.id
                    ):
                        return child
        return None

    def _check_closure(self, expr: ast.AST, via: str) -> None:
        closure = self._resolve_closure(expr)
        if closure is None or id(closure) in self.checked_closures:
            return
        self.checked_closures.add(id(closure))
        name = getattr(closure, "name", "<lambda>")
        for line, dotted in _ambient_uses(closure):
            self._emit(
                line,
                f"replay closure '{name}' (via {via}) calls ambient "
                f"'{dotted}'; pass an RNG stream explicitly or register "
                f"the recompute with record_host",
                detail=f"ambient:{name}:{dotted}",
            )

    # -- the checks -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name == "_make" or name.endswith("._make"):
            replay = None
            if len(node.args) >= 4:
                replay = node.args[3]
            for kw in node.keywords:
                if kw.arg == "replay":
                    replay = kw.value
            if replay is None or (
                isinstance(replay, ast.Constant) and replay.value is None
            ):
                self._emit(
                    node.lineno,
                    "_make() called without a replay closure; the node "
                    "will fail static-graph capture (GraphCaptureError)",
                    detail="make-no-replay",
                )
            else:
                self._check_closure(replay, "_make")
        elif name == "record_node" or name.endswith(".record_node"):
            if len(node.args) >= 2:
                self._check_closure(node.args[1], "record_node")
        elif (
            name == "Tensor" or name.endswith(".Tensor")
        ) and not self.defines_tensor:
            backward = next(
                (kw.value for kw in node.keywords if kw.arg == "_backward"),
                None,
            )
            if backward is not None and not (
                isinstance(backward, ast.Constant) and backward.value is None
            ):
                if not self._enclosing_records_node():
                    self._emit(
                        node.lineno,
                        "Tensor(..., _backward=...) built outside _make in a "
                        "function that never calls record_node; the node is "
                        "invisible to static-graph capture",
                        detail="tensor-no-record",
                    )
        self.generic_visit(node)

    def _enclosing_records_node(self) -> bool:
        for func in self.func_stack:
            if getattr(func, "name", "") == "_make":
                return True  # the chokepoint itself records
            for child in ast.walk(func):
                if isinstance(child, ast.Call):
                    cn = call_name(child)
                    if cn == "record_node" or cn.endswith(".record_node"):
                        return True
        return False


@register_rule(
    "R1",
    "replay",
    "autograd nodes must carry replay closures free of ambient state",
)
def check_replay(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for sf in project.target_files:
        if sf.is_test:
            continue
        defines_tensor = any(
            isinstance(n, ast.ClassDef) and n.name == "Tensor"
            for n in ast.walk(sf.tree)
        )
        visitor = _ReplayVisitor(sf, defines_tensor)
        visitor.visit(sf.tree)
        findings.extend(visitor.findings)
    return findings
