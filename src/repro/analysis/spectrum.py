"""Spectral statistics of interaction sequences.

All functions operate on *item-indicator* signals: a user sequence is
turned into one or more binary/real time series (e.g. "was the item in
category c at step t", or an embedding channel over positions), whose
rFFT spectra expose the periodic behaviour patterns the paper's filter
mixer is designed to separate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.autograd.spectral import num_frequency_bins

__all__ = [
    "sequence_spectrum",
    "band_energy",
    "dataset_spectral_profile",
    "periodicity_score",
]


def sequence_spectrum(signal: Sequence[float], n: int | None = None) -> np.ndarray:
    """Amplitude spectrum of a (mean-removed) 1-D behaviour signal.

    Parameters
    ----------
    signal:
        Real-valued series over interaction steps.
    n:
        FFT length; defaults to ``len(signal)``.  Shorter signals are
        zero-padded, longer ones truncated to the most recent ``n``.
    """
    sig = np.asarray(signal, dtype=float)
    if sig.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {sig.shape}")
    if sig.size == 0:
        raise ValueError("signal is empty")
    if n is None:
        n = sig.size
    if sig.size > n:
        sig = sig[-n:]
    sig = sig - sig.mean()
    return np.abs(np.fft.rfft(sig, n=n))


def band_energy(spectrum: np.ndarray, num_bands: int) -> np.ndarray:
    """Total spectral energy in ``num_bands`` equal frequency bands.

    Uses the same exact-partition boundaries as the paper's static
    frequency split, so band ``b`` here is exactly what SFS layer
    ``L-1-b`` (mode 4) can see.
    """
    spectrum = np.asarray(spectrum, dtype=float)
    m = spectrum.shape[0]
    bounds = [int(round(t * m / num_bands)) for t in range(num_bands + 1)]
    return np.array(
        [float((spectrum[a:b] ** 2).sum()) for a, b in zip(bounds[:-1], bounds[1:])]
    )


def periodicity_score(signal: Sequence[float]) -> float:
    """Fraction of non-DC spectral energy in the single strongest bin.

    1.0 means a pure sinusoid (perfectly periodic behaviour); values
    near ``1/M`` mean white noise.  Zero-energy signals score 0.
    """
    spec = sequence_spectrum(signal)
    energy = spec[1:] ** 2  # drop DC
    total = energy.sum()
    if total <= 0:
        return 0.0
    return float(energy.max() / total)


def dataset_spectral_profile(
    sequences: Sequence[Sequence[int]],
    n: int = 32,
    num_bands: int = 4,
    min_length: int | None = None,
) -> Dict[str, np.ndarray]:
    """Aggregate spectral statistics over a dataset's user sequences.

    Each sequence is converted to a *novelty signal* (1 when the item
    differs from the previous one, 0 on a repeat) — a cheap, id-free
    series whose rhythm reflects how users alternate between interests.

    Returns
    -------
    dict with:
        ``mean_spectrum`` — (M,) average amplitude spectrum,
        ``band_energy`` — (num_bands,) mean per-band energy,
        ``periodicity`` — scalar array: mean periodicity score,
        ``num_sequences`` — how many sequences qualified.
    """
    min_length = max(4, min_length if min_length is not None else n // 2)
    m = num_frequency_bins(n)
    spectra: List[np.ndarray] = []
    scores: List[float] = []
    for seq in sequences:
        seq = list(seq)
        if len(seq) < min_length:
            continue
        novelty = np.array(
            [1.0] + [1.0 if a != b else 0.0 for a, b in zip(seq[1:], seq[:-1])]
        )
        spectra.append(sequence_spectrum(novelty, n=n))
        scores.append(periodicity_score(novelty))
    if not spectra:
        return {
            "mean_spectrum": np.zeros(m),
            "band_energy": np.zeros(num_bands),
            "periodicity": np.array(0.0),
            "num_sequences": np.array(0),
        }
    mean_spectrum = np.mean(spectra, axis=0)
    return {
        "mean_spectrum": mean_spectrum,
        "band_energy": band_energy(mean_spectrum, num_bands),
        "periodicity": np.array(float(np.mean(scores))),
        "num_sequences": np.array(len(spectra)),
    }
