"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage is the substrate that replaces PyTorch in this
reproduction.  It provides:

- :class:`~repro.autograd.tensor.Tensor`: an ndarray wrapper that records
  a computation graph and supports broadcasting-aware backpropagation.
- :mod:`~repro.autograd.functional`: the op library (arithmetic, matmul,
  reductions, activations, softmax/cross-entropy, gather/scatter, ...).
- :mod:`~repro.autograd.spectral`: the fused FFT -> complex filter ->
  inverse-FFT operator at the heart of SLIME4Rec, with an analytically
  derived backward pass.
- :mod:`~repro.autograd.workspace`: the shared per-step compute
  workspace (scratch buffers, derived-constant caches, parameter-keyed
  caches) that the hot-path ops draw their working memory from.
- :mod:`~repro.autograd.graph`: static-graph tape capture & replay —
  records one dynamic training step into a :class:`~repro.autograd.graph.Tape`
  and replays it as a flat loop of kernel calls, bitwise-identical to
  the dynamic engine (the :class:`~repro.autograd.graph.TapeExecutor`
  drives capture/replay/fallback for the trainer).
- :mod:`~repro.autograd.gradcheck`: finite-difference gradient checking
  used throughout the test suite.
"""

from repro.autograd.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    parameter_version,
    bump_parameter_version,
)
from repro.autograd import workspace
from repro.autograd import functional
from repro.autograd.spectral import (
    spectral_filter,
    spectral_filter_mixed,
    combined_filter,
    spectral_filter_reference,
)
from repro.autograd.gradcheck import gradcheck
from repro.autograd.graph import (
    GraphCaptureError,
    Tape,
    TapeExecutor,
    capture,
    is_capturing,
)

__all__ = [
    "GraphCaptureError",
    "Tape",
    "TapeExecutor",
    "capture",
    "is_capturing",
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "parameter_version",
    "bump_parameter_version",
    "functional",
    "workspace",
    "spectral_filter",
    "spectral_filter_mixed",
    "combined_filter",
    "spectral_filter_reference",
    "gradcheck",
]
