"""Differentiable operations on :class:`~repro.autograd.tensor.Tensor`.

Every function here follows the same contract:

- accept tensors (or array-likes, which are promoted to constants),
- compute the forward value with numpy,
- when grad mode is on and any input requires grad, attach a backward
  closure returning one gradient per parent (``None`` for integer or
  non-differentiable parents).

Gradients returned by closures are reduced to the parent shape with
:func:`~repro.autograd.tensor.unbroadcast` so that all binary ops support
full numpy broadcasting.

Hot-path ops (``dropout``, ``embedding``'s backward) route their
transient working memory through the shared per-step workspace
(:mod:`repro.autograd.workspace`) so repeated calls at one ``(B, N, d)``
geometry reuse buffers instead of allocating; the workspace also owns
the dropout seed-compatibility flag (see :func:`dropout`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.graph import GraphCaptureError, record_node
from repro.autograd.graph import _active as _graph_active
from repro.autograd.tensor import Tensor, as_tensor, is_grad_enabled, unbroadcast
from repro.autograd.workspace import (
    dropout_view_count,
    fast_dropout_masks_enabled,
    get_workspace,
)

__all__ = [
    "add", "add3", "sub", "mul", "div", "neg", "pow", "exp", "log", "sqrt",
    "tanh", "sigmoid", "relu", "gelu", "matmul", "linear", "reshape",
    "transpose",
    "sum", "mean", "var", "getitem", "concat", "stack", "pad_axis",
    "softmax", "log_softmax", "cross_entropy", "linear_cross_entropy",
    "sampled_softmax_loss",
    "embedding", "dropout",
    "layer_norm", "where", "maximum", "clip", "masked_fill", "sum_to",
    "binary_cross_entropy_with_logits", "logsigmoid", "l2_normalize",
]


def _make(data: np.ndarray, parents: Tuple[Tensor, ...], backward, replay=None) -> Tensor:
    """Build an output tensor, recording the graph only when needed.

    ``replay`` is the op's forward closure (sharing saved state with
    ``backward`` via ``nonlocal``): calling it re-runs the same numpy
    expressions against the parents' *current* payloads and returns the
    fresh output array.  Under an active static-graph capture
    (:mod:`repro.autograd.graph`) every node — including grad-free ones,
    whose values are still input-dependent — is recorded with its replay
    closure; a node built without one raises :class:`GraphCaptureError`
    naming the op, so capture validates replay-safety at record time.
    """
    if is_grad_enabled() and any(p.requires_grad or p._backward is not None for p in parents):
        out = Tensor(data, _parents=parents, _backward=backward)
    else:
        out = Tensor(data)
    if _graph_active() is not None:
        name = getattr(backward, "__qualname__", "op").split(".")[0]
        if replay is None:
            raise GraphCaptureError(
                f"op '{name}' does not provide a replay closure and cannot "
                "be captured into a static graph"
            )
        record_node(out, replay, name)
    return out


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def forward():
        return a.data + b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return _make(forward(), (a, b), backward, forward)


def add3(a, b, c) -> Tensor:
    """Three-operand add ``a + b + c`` as a single graph node.

    One output buffer and one graph node instead of two of each — the
    densely-residual Eq. 30 site (``x + hidden + ffn_dropout``) runs on
    ``(B, N, d)`` activations three times per encoder layer, where the
    intermediate ``a + b`` array of the chained form is pure memory
    traffic.  Values are bitwise the chained ``add(add(a, b), c)``
    (same left-to-right elementwise order).
    """
    a, b, c = as_tensor(a), as_tensor(b), as_tensor(c)

    def forward():
        out = a.data + b.data  # binary + always allocates: safe to reuse
        if (
            out.shape == np.broadcast_shapes(out.shape, c.shape)
            and np.result_type(out, c.data) == out.dtype
        ):
            out += c.data
        else:  # c would broadcast outward or promote the dtype
            out = out + c.data
        return out

    def backward(grad):
        return (
            unbroadcast(grad, a.shape),
            unbroadcast(grad, b.shape),
            unbroadcast(grad, c.shape),
        )

    return _make(forward(), (a, b, c), backward, forward)


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def forward():
        return a.data - b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return _make(forward(), (a, b), backward, forward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def forward():
        return a.data * b.data

    def backward(grad):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return _make(forward(), (a, b), backward, forward)


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def forward():
        return a.data / b.data

    def backward(grad):
        ga = grad / b.data
        gb = -grad * a.data / (b.data * b.data)
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return _make(forward(), (a, b), backward, forward)


def neg(a) -> Tensor:
    a = as_tensor(a)

    def forward():
        return -a.data

    def backward(grad):
        return (-grad,)

    return _make(forward(), (a,), backward, forward)


def pow(a, exponent: float) -> Tensor:
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("tensor exponents are not supported; use exp/log")
    # numpy only fast-paths integer exponents up to 2; cubes through
    # ``**`` fall back to a transcendental pow that is ~40x slower than
    # two multiplies, so expand tiny integer powers explicitly.
    def forward():
        if exponent == 2:
            return a.data * a.data
        if exponent == 3:
            return a.data * a.data * a.data
        return a.data ** exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1),)

    return _make(forward(), (a,), backward, forward)


def exp(a) -> Tensor:
    a = as_tensor(a)
    out = None

    def forward():
        nonlocal out
        out = np.exp(a.data)
        return out

    def backward(grad):
        return (grad * out,)

    return _make(forward(), (a,), backward, forward)


def log(a) -> Tensor:
    a = as_tensor(a)

    def forward():
        return np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return _make(forward(), (a,), backward, forward)


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out = None

    def forward():
        nonlocal out
        out = np.sqrt(a.data)
        return out

    def backward(grad):
        return (grad * 0.5 / out,)

    return _make(forward(), (a,), backward, forward)


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out = None

    def forward():
        nonlocal out
        out = np.tanh(a.data)
        return out

    def backward(grad):
        return (grad * (1.0 - out * out),)

    return _make(forward(), (a,), backward, forward)


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    out = None

    def forward():
        nonlocal out
        out = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))
        return out

    def backward(grad):
        return (grad * out * (1.0 - out),)

    return _make(forward(), (a,), backward, forward)


def logsigmoid(a) -> Tensor:
    """Numerically stable ``log(sigmoid(x))``."""
    a = as_tensor(a)

    def forward():
        x = a.data
        out = np.where(x >= 0, -np.log1p(np.exp(-x)), x - np.log1p(np.exp(x)))
        return out.astype(x.dtype, copy=False)

    def backward(grad):
        sig = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))
        return (grad * (1.0 - sig),)

    return _make(forward(), (a,), backward, forward)


def relu(a) -> Tensor:
    a = as_tensor(a)

    def forward():
        return np.maximum(a.data, 0.0)

    def backward(grad):
        return (grad * (a.data > 0),)

    return _make(forward(), (a,), backward, forward)


_GELU_C = np.sqrt(2.0 / np.pi)


def gelu(a) -> Tensor:
    """GELU activation (tanh approximation, as used by the paper's FFN).

    Hot-path notes: cubes are expanded to multiplies (numpy's float pow
    is ~40x slower), and intermediates are folded in place — every
    rewritten expression keeps the reference's elementwise value (only
    exact power-of-two scalings and commuted multiplications differ).
    """
    a = as_tensor(a)
    x = x_sq = t = None

    def forward():
        nonlocal x, x_sq, t
        x = a.data
        x_sq = x * x
        inner = x_sq * x
        inner *= 0.044715
        inner += x
        inner *= _GELU_C
        t = np.tanh(inner, out=inner)  # inner is dead past this point
        out = t + 1.0
        out *= x
        out *= 0.5
        return out.astype(x.dtype, copy=False)

    def backward(grad):
        # dinner = C * (1 + 3*0.044715*x^2), folded into a fresh buffer.
        dinner = x_sq * (3 * 0.044715)
        dinner += 1.0
        dinner *= _GELU_C
        # dx = 0.5*(1+t) + 0.5*x*(1-t^2)*dinner
        sech_sq = t * t
        np.subtract(1.0, sech_sq, out=sech_sq)
        sech_sq *= x
        sech_sq *= 0.5
        sech_sq *= dinner
        dx = t + 1.0
        dx *= 0.5
        dx += sech_sq
        dx *= grad
        return (dx,)

    return _make(forward(), (a,), backward, forward)


def maximum(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def forward():
        return np.maximum(a.data, b.data)

    def backward(grad):
        mask = a.data >= b.data
        return (
            unbroadcast(grad * mask, a.shape),
            unbroadcast(grad * ~mask, b.shape),
        )

    return _make(forward(), (a, b), backward, forward)


def clip(a, lo: float, hi: float) -> Tensor:
    a = as_tensor(a)

    def forward():
        return np.clip(a.data, lo, hi)

    def backward(grad):
        inside = (a.data >= lo) & (a.data <= hi)
        return (grad * inside,)

    return _make(forward(), (a,), backward, forward)


def where(cond, a, b) -> Tensor:
    """Select ``a`` where ``cond`` else ``b``; ``cond`` is a plain array.

    The condition array object is baked into the closures; a
    step-dependent condition must be refreshed in place via
    :func:`repro.autograd.graph.record_host` to stay replay-correct.
    """
    cond = cond.data if isinstance(cond, Tensor) else np.asarray(cond)
    a, b = as_tensor(a), as_tensor(b)

    def forward():
        return np.where(cond, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(grad * cond, a.shape),
            unbroadcast(grad * ~cond, b.shape),
        )

    return _make(forward(), (a, b), backward, forward)


def masked_fill(a, mask, value: float) -> Tensor:
    """Set positions where ``mask`` is True to ``value`` (e.g. -inf logits).

    ``mask`` may be any shape broadcastable to ``a`` (attention passes
    ``(1, 1, N, N)`` or ``(B, 1, N, N)`` blocks against ``(B, H, N, N)``
    scores); the backward inverts the *small* mask and lets the
    multiply broadcast, instead of materializing the full-shape
    inverse.
    """
    a = as_tensor(a)
    mask = mask.data if isinstance(mask, Tensor) else np.asarray(mask)

    def forward():
        return np.where(
            np.broadcast_to(mask, a.shape), np.asarray(value, dtype=a.dtype), a.data
        )

    def backward(grad):
        return (grad * ~mask,)

    return _make(forward(), (a,), backward, forward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------

def reshape(a, shape: Tuple[int, ...]) -> Tensor:
    a = as_tensor(a)

    def forward():
        return a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return _make(forward(), (a,), backward, forward)


def transpose(a, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    a = as_tensor(a)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def forward():
        return np.transpose(a.data, axes)

    def backward(grad):
        return (np.transpose(grad, inverse),)

    return _make(forward(), (a,), backward, forward)


def _is_basic_index(index) -> bool:
    """True for int/slice-only indexing, where positions cannot repeat."""
    basic = (int, np.integer, slice, type(Ellipsis), type(None))
    if isinstance(index, tuple):
        return all(isinstance(i, basic) for i in index)
    return isinstance(index, basic)


def getitem(a, index) -> Tensor:
    a = as_tensor(a)
    if isinstance(index, Tensor):
        index = index.data

    def forward():
        return np.asarray(a.data[index])  # scalar indexing yields numpy scalars

    def backward(grad):
        full = np.zeros_like(a.data)
        if _is_basic_index(index):
            # Basic indexing selects each position at most once, so a
            # direct assignment replaces the (much slower) ``np.add.at``
            # scatter — this is the ``states[:, -1]`` hot path.
            full[index] = grad
        else:
            np.add.at(full, index, grad)
        return (full,)

    return _make(forward(), (a,), backward, forward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def forward():
        return np.concatenate([t.data for t in tensors], axis=axis)

    def backward(grad):
        slicer = [slice(None)] * grad.ndim
        grads = []
        for i in range(len(tensors)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(slicer)])
        return tuple(grads)

    return _make(forward(), tuple(tensors), backward, forward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]

    def forward():
        return np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return _make(forward(), tuple(tensors), backward, forward)


def pad_axis(a, axis: int, before: int, after: int, value: float = 0.0) -> Tensor:
    """Pad one axis with a constant value."""
    a = as_tensor(a)
    widths = [(0, 0)] * a.ndim
    widths[axis] = (before, after)

    def forward():
        return np.pad(a.data, widths, constant_values=value)

    def backward(grad):
        slicer = [slice(None)] * a.ndim
        slicer[axis] = slice(before, before + a.shape[axis])
        return (grad[tuple(slicer)],)

    return _make(forward(), (a,), backward, forward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    # Full reductions return *numpy scalars*; wrap them as 0-d arrays so
    # the Tensor constructor keeps their dtype instead of coercing them
    # to the scalar-constant default (which would silently narrow a
    # float64 reduction when the default is float32).
    def forward():
        return np.asarray(a.data.sum(axis=axis, keepdims=keepdims))

    def backward(grad):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.shape).astype(a.dtype, copy=False),)

    return _make(forward(), (a,), backward, forward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    # Keep ``count`` a python int: a strong ``np.int64`` scalar would
    # promote float32 gradients to float64 in the division below.
    count = a.data.size if axis is None else int(np.prod(
        [a.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    ))

    def forward():
        return np.asarray(a.data.mean(axis=axis, keepdims=keepdims))  # see sum()

    def backward(grad):
        g = grad / count
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.shape).astype(a.dtype, copy=False),)

    return _make(forward(), (a,), backward, forward)


def var(a, axis=None, keepdims: bool = False) -> Tensor:
    """Population variance (ddof=0), composed from differentiable ops."""
    a = as_tensor(a)
    mu = mean(a, axis=axis, keepdims=True)
    centered = sub(a, mu)
    squared = mul(centered, centered)
    return mean(squared, axis=axis, keepdims=keepdims)


def sum_to(a, shape: Tuple[int, ...]) -> Tensor:
    """Differentiable reduction of ``a`` to a broadcast-compatible shape."""
    a = as_tensor(a)

    def forward():
        return unbroadcast(a.data, shape)

    def backward(grad):
        return (np.broadcast_to(grad, a.shape).astype(a.dtype, copy=False),)

    return _make(forward(), (a,), backward, forward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def forward():
        return np.asarray(a.data @ b.data)  # 1-d @ 1-d yields a numpy scalar

    def backward(grad):
        a_d, b_d = a.data, b.data
        if a_d.ndim == 1 and b_d.ndim == 1:
            return grad * b_d, grad * a_d
        if a_d.ndim == 1:  # (k,) @ (..., k, n)
            ga = (grad[..., None, :] @ np.swapaxes(b_d, -1, -2)).reshape(b_d.shape[:-2] + a_d.shape)
            ga = unbroadcast(ga, a_d.shape)
            gb = a_d[..., :, None] @ grad[..., None, :]
            gb = unbroadcast(gb, b_d.shape)
            return ga, gb
        if b_d.ndim == 1:  # (..., m, k) @ (k,)
            ga = grad[..., :, None] @ b_d[None, :]
            ga = unbroadcast(ga, a_d.shape)
            gb = np.swapaxes(a_d, -1, -2) @ grad[..., :, None]
            gb = unbroadcast(gb.reshape(gb.shape[:-1]), b_d.shape)
            # Reduce batch dims onto the vector.
            while gb.ndim > 1:
                gb = gb.sum(axis=0)
            return ga, gb
        if a_d.ndim > 2 and b_d.ndim == 2:
            # Batched input against a shared weight (every Linear on a
            # (B, N, d) activation).  The generic expressions below feed
            # BLAS *transposed views* as batched operands, which repacks
            # the weight once per batch row (~3x the GEMM cost at the
            # (3B, N, d) stacked-view geometry) and materializes a
            # (batch, k, n) per-row product that is then reduced.  Two
            # flat 2-D GEMMs — where BLAS handles the transposes as
            # flags — compute the same contractions directly.
            g2 = grad.reshape(-1, b_d.shape[1])
            ga = (g2 @ b_d.T).reshape(a_d.shape)
            gb = a_d.reshape(-1, a_d.shape[-1]).T @ g2
            return ga, gb
        ga = grad @ np.swapaxes(b_d, -1, -2)
        gb = np.swapaxes(a_d, -1, -2) @ grad
        return unbroadcast(ga, a_d.shape), unbroadcast(gb, b_d.shape)

    return _make(forward(), (a, b), backward, forward)


def linear(x, weight, bias=None) -> Tensor:
    """Fused affine map ``x @ weight + bias`` as one graph node.

    The composition ``add(matmul(x, weight), bias)`` allocates a second
    full-size output and walks it twice; here the bias is added in
    place on the fresh GEMM output (bitwise the same elementwise sum)
    and the backward computes the three gradients directly.  For
    batched inputs ``(..., k)`` the gradients run as two flat 2-D GEMMs
    (BLAS handles the transposes as flags — no per-row operand repack).
    Inputs of fewer than 2 dimensions fall back to the primitive
    composition.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    if bias is None:
        return matmul(x, weight)
    bias = as_tensor(bias)
    if x.ndim < 2 or weight.ndim != 2 or bias.data.ndim != 1:
        return add(matmul(x, weight), bias)

    def forward():
        out = x.data @ weight.data
        out += bias.data
        return out

    def backward(grad):
        w_d = weight.data
        if grad.ndim > 2:
            g2 = grad.reshape(-1, w_d.shape[1])
            gx = (g2 @ w_d.T).reshape(x.shape)
            gw = x.data.reshape(-1, w_d.shape[0]).T @ g2
        else:
            g2 = grad
            gx = grad @ w_d.T
            gw = x.data.T @ grad
        return gx, gw, g2.sum(axis=0)

    return _make(forward(), (x, weight, bias), backward, forward)


# ----------------------------------------------------------------------
# Neural-network primitives
# ----------------------------------------------------------------------

def softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    out = None

    def forward():
        nonlocal out
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=axis, keepdims=True)
        return out

    def backward(grad):
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return (out * (grad - dot),)

    return _make(forward(), (a,), backward, forward)


def log_softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    out = None

    def forward():
        nonlocal out
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        return out

    def backward(grad):
        soft = np.exp(out)
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return _make(forward(), (a,), backward, forward)


def cross_entropy(
    logits,
    targets,
    ignore_index: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> Tensor:
    """Mean softmax cross-entropy over the last axis.

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., num_classes)``.
    targets:
        Integer array of shape ``(...,)`` with class indices.
    ignore_index:
        Optional target value whose positions contribute zero loss
        (used for padding in masked-item objectives).
    chunk_size:
        When set (and smaller than ``num_classes``), the softmax
        normalizer and the backward's softmax are streamed over class
        chunks of this width instead of materializing full-size
        ``exp``/``log_probs`` temporaries — the memory-bounded path for
        production-size vocabularies.  Values match the dense path up
        to floating-point reassociation.  ``chunk_size >= num_classes``
        clamps to a single chunk (the dense path); ``chunk_size <= 0``
        raises.  To also avoid materializing the logits themselves, use
        :func:`linear_cross_entropy`.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1 or None, got {chunk_size}")
    logits = as_tensor(logits)
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)

    num_classes = logits.shape[-1]
    if chunk_size is not None and chunk_size < num_classes:
        return _chunked_cross_entropy(logits, targets, ignore_index, int(chunk_size))

    # Target-derived state is recomputed inside ``forward`` — the target
    # array object is baked into the closure, its *contents* are step
    # input that a static-graph replay refreshes in place.
    log_probs = rows = safe_targets = valid = count = None

    def forward():
        nonlocal log_probs, rows, safe_targets, valid, count
        flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
        flat_targets = targets.reshape(-1).astype(np.int64)
        if ignore_index is not None:
            valid = flat_targets != ignore_index
        else:
            valid = np.ones_like(flat_targets, dtype=bool)
        count = max(int(valid.sum()), 1)
        safe_targets = np.where(valid, flat_targets, 0)
        rows = np.arange(flat_targets.shape[0])
        shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        log_probs = shifted - log_z
        picked = log_probs[rows, safe_targets]
        loss = -(picked * valid).sum() / count
        return np.asarray(loss, dtype=logits.data.dtype)

    def backward(grad):
        soft = np.exp(log_probs)
        soft[rows, safe_targets] -= 1.0
        soft *= (valid / count)[:, None]
        return ((grad * soft).reshape(logits.shape).astype(logits.dtype, copy=False),)

    return _make(forward(), (logits,), backward, forward)


def _chunked_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int],
    chunk_size: int,
) -> Tensor:
    """Streamed CE over materialized logits: no full-width temporaries.

    Two chunked passes (row max, then ``sum(exp(..))``) replace the
    dense path's full ``(R, V)`` ``shifted``/``exp``/``log_probs``
    arrays; the backward writes each softmax chunk straight into the
    gradient buffer.  Same mean-CE value as the dense path up to
    summation order.
    """
    row_max = log_z = rows = safe_targets = valid = count = None

    def forward():
        nonlocal row_max, log_z, rows, safe_targets, valid, count
        flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
        flat_targets = targets.reshape(-1).astype(np.int64)
        if ignore_index is not None:
            valid = flat_targets != ignore_index
        else:
            valid = np.ones_like(flat_targets, dtype=bool)
        count = max(int(valid.sum()), 1)
        safe_targets = np.where(valid, flat_targets, 0)
        rows = np.arange(flat_targets.shape[0])
        num_classes = flat_logits.shape[1]
        row_max = flat_logits[:, :chunk_size].max(axis=1)
        for c0 in range(chunk_size, num_classes, chunk_size):
            np.maximum(
                row_max, flat_logits[:, c0 : c0 + chunk_size].max(axis=1), out=row_max
            )
        sum_exp = np.zeros_like(row_max)
        for c0 in range(0, num_classes, chunk_size):
            chunk = flat_logits[:, c0 : c0 + chunk_size] - row_max[:, None]
            np.exp(chunk, out=chunk)
            sum_exp += chunk.sum(axis=1)
        log_z = np.log(sum_exp)
        picked = flat_logits[rows, safe_targets] - row_max - log_z
        loss = -(picked * valid).sum() / count
        return np.asarray(loss, dtype=logits.data.dtype)

    def backward(grad):
        flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
        num_classes = flat_logits.shape[1]
        out = np.empty_like(flat_logits)
        shift = row_max + log_z
        for c0 in range(0, num_classes, chunk_size):
            sl = slice(c0, c0 + chunk_size)
            np.subtract(flat_logits[:, sl], shift[:, None], out=out[:, sl])
            np.exp(out[:, sl], out=out[:, sl])
        out[rows, safe_targets] -= 1.0
        out *= (grad * valid / count)[:, None]
        return (out.reshape(logits.shape).astype(logits.dtype, copy=False),)

    return _make(forward(), (logits,), backward, forward)


def linear_cross_entropy(
    inputs,
    weight,
    targets,
    chunk_size: Optional[int] = None,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Fused ``cross_entropy(inputs @ weight.T, targets)`` streamed by rows.

    The production-vocabulary path for the prediction layer: logits
    against a ``(V, d)`` class table are computed chunk-by-chunk with an
    online (running-max) log-sum-exp, so the full ``(R, V)`` logits
    matrix is **never materialized** — peak extra memory is one
    ``(R, chunk_size)`` block.  The backward re-computes each chunk's
    logits (one extra GEMM pass, the classic memory/compute trade) and
    accumulates the input / weight gradients per chunk.

    Parameters
    ----------
    inputs:
        Tensor of shape ``(..., d)`` (user vectors).
    weight:
        Tensor of shape ``(V, d)``; class ``c`` scores against row
        ``weight[c]`` (the natural layout of an embedding table).
    targets, ignore_index:
        As in :func:`cross_entropy`.
    chunk_size:
        Class-chunk width.  ``None`` (or ``>= V``, which clamps to one
        chunk) falls back to the dense composition
        ``cross_entropy(matmul(inputs, weight.T))``, which is
        byte-for-byte the historical prediction path; ``<= 0`` raises.

    Values match the dense path to floating-point reassociation
    tolerance (the per-chunk GEMMs and the online normalizer sum in a
    different order).
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1 or None, got {chunk_size}")
    inputs, weight = as_tensor(inputs), as_tensor(weight)
    num_classes = weight.shape[0]
    if chunk_size is None or chunk_size >= num_classes:
        return cross_entropy(
            matmul(inputs, transpose(weight, (1, 0))), targets, ignore_index=ignore_index
        )

    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    dim = inputs.shape[-1]
    row_max = log_z = safe_targets = valid = count = None

    def forward():
        nonlocal row_max, log_z, safe_targets, valid, count
        x = inputs.data.reshape(-1, dim)
        w = weight.data
        flat_targets = targets.reshape(-1).astype(np.int64)
        if ignore_index is not None:
            valid = flat_targets != ignore_index
        else:
            valid = np.ones_like(flat_targets, dtype=bool)
        count = max(int(valid.sum()), 1)
        safe_targets = np.where(valid, flat_targets, 0)
        if safe_targets.size and (
            int(safe_targets.min()) < 0 or int(safe_targets.max()) >= num_classes
        ):
            # The dense path would raise on the fancy-index gather; the
            # chunked gather would silently skip out-of-range rows and
            # train on uninitialized memory instead — fail loudly.
            raise IndexError(
                f"targets out of range for {num_classes} classes "
                f"(got min {int(safe_targets.min())}, max {int(safe_targets.max())})"
            )

        # Online log-sum-exp over class chunks: one GEMM pass, running
        # (max, scaled-sum) per row; the target logit is gathered from
        # the single chunk that covers it.
        row_max = np.full(x.shape[0], -np.inf, dtype=x.dtype)
        sum_exp = np.zeros(x.shape[0], dtype=x.dtype)
        picked = np.empty(x.shape[0], dtype=x.dtype)
        for c0 in range(0, num_classes, chunk_size):
            c1 = min(c0 + chunk_size, num_classes)
            block = x @ w[c0:c1].T  # (R, C)
            in_chunk = np.nonzero((safe_targets >= c0) & (safe_targets < c1))[0]
            if in_chunk.size:
                picked[in_chunk] = block[in_chunk, safe_targets[in_chunk] - c0]
            new_max = np.maximum(row_max, block.max(axis=1))
            sum_exp *= np.exp(row_max - new_max)
            row_max = new_max
            block -= row_max[:, None]
            np.exp(block, out=block)
            sum_exp += block.sum(axis=1)
        log_z = np.log(sum_exp)  # log-sum-exp relative to the final row max
        loss = -((picked - row_max - log_z) * valid).sum() / count
        return np.asarray(loss, dtype=inputs.data.dtype)

    def backward(grad):
        x = inputs.data.reshape(-1, dim)
        w = weight.data
        g_x = np.zeros_like(x)
        g_w = np.zeros_like(w)
        coef = (grad * valid / count).astype(x.dtype, copy=False)
        shift = row_max + log_z
        for c0 in range(0, num_classes, chunk_size):
            c1 = min(c0 + chunk_size, num_classes)
            block = x @ w[c0:c1].T
            block -= shift[:, None]
            np.exp(block, out=block)
            in_chunk = np.nonzero((safe_targets >= c0) & (safe_targets < c1))[0]
            if in_chunk.size:
                block[in_chunk, safe_targets[in_chunk] - c0] -= 1.0
            block *= coef[:, None]
            g_x += block @ w[c0:c1]
            g_w[c0:c1] = block.T @ x
        return (
            g_x.reshape(inputs.shape).astype(inputs.dtype, copy=False),
            g_w.astype(weight.dtype, copy=False),
        )

    return _make(forward(), (inputs, weight), backward, forward)


def sampled_softmax_loss(
    inputs,
    weight,
    targets,
    num_negatives: Optional[int] = None,
    sampler=None,
    negatives: Optional[np.ndarray] = None,
    neg_log_q: Optional[np.ndarray] = None,
    target_log_q: Optional[np.ndarray] = None,
    logq_correction: bool = True,
    remove_accidental_hits: bool = True,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Sampled softmax: CE over the positive plus ``K`` drawn negatives.

    The compute-bounded counterpart of :func:`linear_cross_entropy` for
    huge catalogs: instead of streaming the full ``(R, V)`` logits, each
    row scores only its **positive class** and a **shared set of K
    sampled negatives**, so the prediction-layer cost drops from
    ``O(R·V·d)`` to ``O((R + K)·d + R·K·d)`` per step and never touches
    a ``(R, V)``-shaped buffer in either direction (Jean et al. 2015;
    the TF ``sampled_softmax_loss`` formulation).

    Parameters
    ----------
    inputs:
        Tensor of shape ``(..., d)`` (user vectors).
    weight:
        Tensor of shape ``(V, d)``; class ``c`` scores against row
        ``weight[c]`` (the natural layout of an embedding table).
    targets, ignore_index:
        As in :func:`cross_entropy`.
    num_negatives, sampler:
        Draw ``num_negatives`` candidate ids from ``sampler`` (a
        :class:`repro.data.negative_sampling.NegativeSampler`, drawn
        *with replacement* and shared across the batch — the standard
        shared-candidate scheme, one ``(K, d)`` gather and one
        ``(R, K)`` GEMM per step).
    negatives:
        Alternatively, an explicit 1-D int array of candidate row ids
        (used by deterministic tests; overrides ``sampler``).
    neg_log_q, target_log_q:
        Explicit ``log q`` values when ``negatives`` is given without a
        ``sampler``.
    logq_correction:
        Subtract each candidate's log proposal probability from its
        logit (positives included) — the classic correction that makes
        the sampled softmax consistent for the full softmax under the
        proposal distribution.  For a uniform proposal the correction
        is a constant shift and provably cancels in the softmax.
    remove_accidental_hits:
        Mask (to ``-inf``) sampled candidates that collide with a row's
        own target, so a row never scores its positive as a negative.

    The loss is the mean over valid rows of
    ``-log softmax([pos_logit, neg_logits])[0]``; gradients flow to
    ``inputs`` and to exactly the gathered rows of ``weight`` (a
    scatter-add, duplicates accumulated).
    """
    inputs, weight = as_tensor(inputs), as_tensor(weight)
    num_classes = weight.shape[0]
    if negatives is None:
        if sampler is None or num_negatives is None:
            raise ValueError(
                "sampled_softmax_loss needs either explicit `negatives` or a "
                "`sampler` plus `num_negatives`"
            )
        if num_negatives < 1:
            raise ValueError(f"num_negatives must be >= 1, got {num_negatives}")
        explicit_negatives = None
    else:
        explicit_negatives = np.asarray(negatives, dtype=np.int64).reshape(-1)
        if explicit_negatives.size < 1:
            raise ValueError("sampled_softmax_loss needs at least one negative")
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    # Build-time validation in the seed's order: candidate and target
    # range errors surface before the logq-source check.  The forward
    # closure re-validates on every call (replays see fresh contents).
    if explicit_negatives is not None and (
        int(explicit_negatives.min()) < 0
        or int(explicit_negatives.max()) >= num_classes
    ):
        raise IndexError(
            f"negatives out of range for {num_classes} classes "
            f"(got min {int(explicit_negatives.min())}, "
            f"max {int(explicit_negatives.max())})"
        )
    _flat0 = targets.reshape(-1).astype(np.int64)
    _safe0 = np.where(_flat0 != ignore_index, _flat0, 0) if ignore_index is not None else _flat0
    if _safe0.size and (int(_safe0.min()) < 0 or int(_safe0.max()) >= num_classes):
        raise IndexError(
            f"targets out of range for {num_classes} classes "
            f"(got min {int(_safe0.min())}, max {int(_safe0.max())})"
        )
    if logq_correction and sampler is None and (neg_log_q is None or target_log_q is None):
        raise ValueError(
            "logq_correction=True needs a `sampler` or explicit "
            "`neg_log_q` AND `target_log_q` arrays; pass "
            "logq_correction=False to score raw logits"
        )

    dim = inputs.shape[-1]
    # Per-step state shared with the backward; a sampler-backed call
    # re-draws its negatives inside ``forward`` on every replay, so the
    # candidate stream under a static graph consumes the sampler's
    # generator exactly like the dynamic engine.
    negs = pos_rows = neg_rows = shifted = safe_targets = valid = count = None

    def forward():
        nonlocal negs, pos_rows, neg_rows, shifted, safe_targets, valid, count
        x = inputs.data.reshape(-1, dim)
        w = weight.data
        if explicit_negatives is not None:
            negs = explicit_negatives
        else:
            negs = np.asarray(sampler.sample(int(num_negatives)), dtype=np.int64).reshape(-1)
        if negs.size < 1:
            raise ValueError("sampled_softmax_loss needs at least one negative")
        if int(negs.min()) < 0 or int(negs.max()) >= num_classes:
            raise IndexError(
                f"negatives out of range for {num_classes} classes "
                f"(got min {int(negs.min())}, max {int(negs.max())})"
            )
        flat_targets = targets.reshape(-1).astype(np.int64)
        if ignore_index is not None:
            valid = flat_targets != ignore_index
        else:
            valid = np.ones_like(flat_targets, dtype=bool)
        count = max(int(valid.sum()), 1)
        safe_targets = np.where(valid, flat_targets, 0)
        if safe_targets.size and (
            int(safe_targets.min()) < 0 or int(safe_targets.max()) >= num_classes
        ):
            raise IndexError(
                f"targets out of range for {num_classes} classes "
                f"(got min {int(safe_targets.min())}, max {int(safe_targets.max())})"
            )

        if logq_correction and sampler is not None:
            cand_log_q = sampler.log_q(negs)
            # Rows masked by ignore_index hold a placeholder target (0),
            # which may lie outside the proposal support (log-uniform
            # q(0) = 0 → an inf correction that would NaN the masked
            # row's logit).  Correct only the valid rows; masked rows
            # contribute nothing to the loss either way.
            tgt_log_q = np.zeros(safe_targets.shape, dtype=np.float64)
            if valid.any():
                tgt_log_q[valid] = sampler.log_q(safe_targets[valid])
        else:
            cand_log_q, tgt_log_q = neg_log_q, target_log_q

        pos_rows = w[safe_targets]  # (R, d) gather; rows may repeat
        neg_rows = w[negs]  # (K, d)
        # Candidate logits: one fused (R, K+1) block — column 0 is the
        # positive, columns 1.. the shared negatives.
        all_logits = np.empty((x.shape[0], negs.size + 1), dtype=x.dtype)
        np.einsum("rd,rd->r", x, pos_rows, out=all_logits[:, 0])
        np.matmul(x, neg_rows.T, out=all_logits[:, 1:])
        if logq_correction:
            all_logits[:, 0] -= tgt_log_q.astype(x.dtype, copy=False)
            all_logits[:, 1:] -= cand_log_q.astype(x.dtype, copy=False)[None, :]
        if remove_accidental_hits:
            hits = negs[None, :] == safe_targets[:, None]  # (R, K)
            all_logits[:, 1:][hits] = -np.inf

        row_max = all_logits.max(axis=1)
        shifted = all_logits - row_max[:, None]
        np.exp(shifted, out=shifted)
        # exp(-inf - max) underflows to 0: masked hits drop out of the sum.
        log_z = np.log(shifted.sum(axis=1))
        loss = -((all_logits[:, 0] - row_max - log_z) * valid).sum() / count
        return np.asarray(loss, dtype=x.dtype)

    def backward(grad):
        x = inputs.data.reshape(-1, dim)
        w = weight.data
        # Softmax over the K+1 candidates; column 0 is the positive.
        soft = shifted / shifted.sum(axis=1, keepdims=True)
        soft[:, 0] -= 1.0
        soft *= (grad * valid / count).astype(x.dtype, copy=False)[:, None]
        g_x = soft[:, 0:1] * pos_rows
        g_x += soft[:, 1:] @ neg_rows
        g_w = np.zeros_like(w)
        # Scatter-add both gathers back: positives row-by-row (targets
        # repeat across the batch), negatives via one (K, d) GEMM then
        # a K-row scatter (sampled-with-replacement ids repeat too).
        np.add.at(g_w, safe_targets, soft[:, 0:1] * x)
        np.add.at(g_w, negs, soft[:, 1:].T @ x)
        return (
            g_x.reshape(inputs.shape).astype(inputs.dtype, copy=False),
            g_w.astype(weight.dtype, copy=False),
        )

    return _make(forward(), (inputs, weight), backward, forward)


def binary_cross_entropy_with_logits(logits, targets) -> Tensor:
    """Mean BCE over all elements; ``targets`` is a plain 0/1 array."""
    logits = as_tensor(logits)
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)

    def forward():
        x = logits.data
        loss = np.maximum(x, 0) - x * targets + np.log1p(np.exp(-np.abs(x)))
        return np.asarray(loss.mean(), dtype=x.dtype)

    def backward(grad):
        x = logits.data
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return ((grad * (sig - targets) / x.size).astype(x.dtype, copy=False),)

    return _make(forward(), (logits,), backward, forward)


def embedding(weight, indices) -> Tensor:
    """Row-gather from an embedding matrix with segment-sum backward.

    The index array *object* is baked into the closures (``asarray`` /
    ``astype(copy=False)`` keep an int64 input aliased); under a static
    graph its contents are refreshed in place by the executor's input
    buffers, so replays gather the current step's rows.
    """
    weight = as_tensor(weight)
    idx = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
    idx = idx.astype(np.int64, copy=False)

    def forward():
        return weight.data[idx]

    def backward(grad):
        # Scatter-add via one flat ``bincount`` over (row, column) linear
        # indices: a single C-level pass, ~4x faster than ``np.add.at``
        # and linear in both the gathered rows and the vocabulary.  The
        # linear-index array is built in a shared workspace buffer (it
        # is consumed by ``bincount`` immediately).
        rows, dim = weight.shape
        flat = idx.reshape(-1)
        ws = get_workspace()
        cols = ws.cached(("arange", dim), lambda: np.arange(dim))
        lin = ws.scratch("embedding.lin", (flat.size, dim), np.int64)
        np.add(flat[:, None] * dim, cols[None, :], out=lin)
        full = np.bincount(
            lin.reshape(-1), weights=grad.reshape(-1), minlength=rows * dim
        ).reshape(rows, dim)
        return (full.astype(weight.dtype, copy=False),)

    return _make(forward(), (weight,), backward, forward)


def dropout(
    a,
    p: float,
    training: bool,
    rng: np.random.Generator,
    fast: Optional[bool] = None,
    views: Optional[int] = None,
) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``.

    ``a`` must be a floating tensor; the output and gradient keep its
    dtype.  The kept/dropped decisions come from one of two paths:

    - **Seed-compatible** (``fast=False``, the default): one float64
      uniform per element from ``rng``, drawn into a shared workspace
      buffer.  The draw consumes the generator stream exactly like the
      seed implementation (``rng.random(a.shape)``), and the output is
      bitwise-identical to the historical
      ``a * ((draw < keep).astype(a.dtype) / keep)`` formulation — the
      mask is just kept as booleans and the ``1/keep`` rescale applied
      in place, which skips two full-array temporaries.
    - **Fast** (``fast=True``): one uint16 per element thresholded at
      ``round(keep * 65536)``.  ~2.5x cheaper mask generation, same
      distribution up to a 1/65536 quantization of ``keep``, but a
      different stochastic realization per seed.

    ``fast=None`` defers to the process-wide seed-compatibility flag
    (:func:`repro.autograd.workspace.set_fast_dropout_masks`).

    ``views=V > 1`` (or an enclosing
    :func:`repro.autograd.workspace.dropout_views` context, which
    ``views=None`` defers to) declares the input a stack of ``V``
    equal view blocks along the leading axis: the mask is drawn as
    ``V`` consecutive per-block draws, so a stacked ``(V*B, ...)`` call
    consumes ``rng`` exactly like ``V`` separate ``(B, ...)`` calls —
    same per-view masks, in both mask modes.  (For the seed-compatible
    path a contiguous ``(V*B, ...)`` draw already equals ``V``
    consecutive block draws element-for-element; the explicit split
    makes the contract independent of generator buffering and extends
    it to the fast uint16 path, whose bit consumption is call-shaped.)
    The leading axis must divide evenly by ``V``.
    """
    a = as_tensor(a)
    if not training or p <= 0.0:
        return a
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    keep = 1.0 - p
    if fast is None:
        fast = fast_dropout_masks_enabled()
    if views is None:
        views = dropout_view_count()
    if views > 1:
        if a.ndim == 0 or a.shape[0] % views != 0:
            raise ValueError(
                f"dropout with {views} view streams needs a leading axis "
                f"divisible by {views}, got shape {a.shape}"
            )
        block = a.shape[0] // views
    # Per-view draws use a *view-sized* scratch buffer — the same
    # workspace key the separate-pass (B, ...) sites use, so the
    # stacked (V*B, ...) geometry and the single-view eval geometry
    # share one cache-resident buffer instead of parking a full-size
    # draw array per geometry.  The mask draw lives inside ``forward``:
    # a static-graph replay re-draws a fresh mask from the same
    # generator object, consuming its stream exactly like the dynamic
    # step (``fast``/``views`` are resolved above, at build time — the
    # executor invalidates the tape when the ambient flags change).
    scale = a.dtype.type(1.0) / a.dtype.type(keep)
    threshold = np.uint16(min(65535, int(round(keep * 65536.0)))) if fast else None
    mask = None

    def forward():
        nonlocal mask
        if fast:
            if views > 1:
                mask = np.empty(a.shape, dtype=bool)
                view_shape = (block,) + a.shape[1:]
                for v in range(views):
                    np.less(
                        rng.integers(0, 65536, size=view_shape, dtype=np.uint16),
                        threshold,
                        out=mask[v * block : (v + 1) * block],
                    )
            else:
                mask = rng.integers(0, 65536, size=a.shape, dtype=np.uint16) < threshold
        else:
            if views > 1:
                mask = np.empty(a.shape, dtype=bool)
                draw = get_workspace().scratch(
                    "dropout.draw", (block,) + a.shape[1:], np.float64
                )
                for v in range(views):
                    rng.random(out=draw)
                    np.less(draw, keep, out=mask[v * block : (v + 1) * block])
            else:
                draw = get_workspace().scratch("dropout.draw", a.shape, np.float64)
                rng.random(out=draw)
                mask = draw < keep
        out = a.data * mask
        out *= scale
        return out

    def backward(grad):
        g = grad * mask
        g *= scale
        return (g,)

    return _make(forward(), (a,), backward, forward)


def layer_norm(a, gamma, beta, eps: float = 1e-12) -> Tensor:
    """Fused layer normalization over the last axis.

    The arithmetic matches the textbook formulation elementwise; large
    intermediates are updated in place and reused because this op runs
    ~3x per encoder block on the training hot path.  The backward's
    transient product buffer comes from the shared per-step workspace
    (the returned input gradient is always a fresh array).
    """
    a, gamma, beta = as_tensor(a), as_tensor(gamma), as_tensor(beta)
    x = x_hat = inv_std = None

    def forward():
        nonlocal x, x_hat, inv_std
        x = a.data
        dim = x.shape[-1]
        mu = x.mean(axis=-1, keepdims=True)
        xc = x - mu
        # Row sums of squares via einsum: one read of ``xc`` and no
        # full-size squared buffer (a write+read of the whole array saved
        # per call; summation-order differences vs the old ``(xc*xc).mean``
        # land at float rounding).
        xc2 = xc.reshape(-1, dim)
        inv_std = np.einsum("ij,ij->i", xc2, xc2).reshape(mu.shape)
        inv_std /= dim
        inv_std += eps
        np.sqrt(inv_std, out=inv_std)
        np.divide(1.0, inv_std, out=inv_std)
        x_hat = np.multiply(xc, inv_std, out=xc)  # xc is dead past this point
        out = x_hat * gamma.data
        out += beta.data
        return out

    def backward(grad):
        if gamma.data.ndim == 1 and beta.data.ndim == 1 and x.ndim >= 2:
            # Folded path for the (..., d) affine case every model uses.
            # One shared product buffer feeds both the gamma gradient
            # (its batch-axis sum) and the variance-term row reduction;
            # the two per-row means collapse into GEMVs against gamma
            # (``(g·γ)·x̂`` summed over the feature axis is a dot with
            # γ), replacing two full-array elementwise means — the old
            # path's four separate reductions plus three full
            # multiplies become two multiplies, two BLAS GEMVs and two
            # batch-axis sums.
            dim = x.shape[-1]
            g2 = grad.reshape(-1, dim)
            xh2 = x_hat.reshape(-1, dim)
            prod = get_workspace().scratch(
                "layer_norm.prod", g2.shape, np.result_type(grad, x_hat)
            )
            np.multiply(g2, xh2, out=prod)
            g_gamma = prod.sum(axis=0)
            g_beta = g2.sum(axis=0)
            g_var_term = prod @ gamma.data  # rows of (g * x_hat) · gamma
            g_var_term *= 1.0 / dim
            g_mu_term = g2 @ gamma.data  # rows of (g * gamma) summed
            g_mu_term *= 1.0 / dim
            # ga = inv_std * (g*gamma - mean(g*gamma) - x_hat * g_var_term)
            ga = np.multiply(g2, gamma.data)  # fresh (R, d), returned below
            ga -= g_mu_term[:, None]
            np.multiply(xh2, g_var_term[:, None], out=prod)
            ga -= prod
            ga *= inv_std.reshape(-1, 1)
            return (
                ga.reshape(x.shape).astype(x.dtype, copy=False),
                g_gamma,
                g_beta,
            )
        # Generic path (broadcast affine shapes, 1-D inputs).
        g_xhat = grad * gamma.data
        scratch = get_workspace().scratch(
            "layer_norm.scratch", x.shape, np.result_type(g_xhat, x_hat)
        )
        np.multiply(g_xhat, x_hat, out=scratch)
        g_var_term = scratch.mean(axis=-1, keepdims=True)
        g_mu_term = g_xhat.mean(axis=-1, keepdims=True)
        np.multiply(grad, x_hat, out=scratch)
        g_gamma = unbroadcast(scratch, gamma.shape)
        if g_gamma is scratch:
            # 1-D input: no batch axes to reduce, so unbroadcast returns
            # the scratch buffer itself — copy before it is reused below.
            g_gamma = g_gamma.copy()
        g_beta = unbroadcast(grad, beta.shape)
        # ga = inv_std * (g_xhat - g_mu_term - x_hat * g_var_term),
        # folded into the g_xhat buffer (freshly allocated above).
        g_xhat -= g_mu_term
        np.multiply(x_hat, g_var_term, out=scratch)
        g_xhat -= scratch
        g_xhat *= inv_std
        return g_xhat.astype(x.dtype, copy=False), g_gamma, g_beta

    return _make(forward(), (a, gamma, beta), backward, forward)


def l2_normalize(a, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Differentiable L2 normalization along ``axis``."""
    a = as_tensor(a)
    norm = sqrt(sum(mul(a, a), axis=axis, keepdims=True) + eps)
    return div(a, norm)
