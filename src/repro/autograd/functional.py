"""Differentiable operations on :class:`~repro.autograd.tensor.Tensor`.

Every function here follows the same contract:

- accept tensors (or array-likes, which are promoted to constants),
- compute the forward value with numpy,
- when grad mode is on and any input requires grad, attach a backward
  closure returning one gradient per parent (``None`` for integer or
  non-differentiable parents).

Gradients returned by closures are reduced to the parent shape with
:func:`~repro.autograd.tensor.unbroadcast` so that all binary ops support
full numpy broadcasting.

Hot-path ops (``dropout``, ``embedding``'s backward) route their
transient working memory through the shared per-step workspace
(:mod:`repro.autograd.workspace`) so repeated calls at one ``(B, N, d)``
geometry reuse buffers instead of allocating; the workspace also owns
the dropout seed-compatibility flag (see :func:`dropout`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor, is_grad_enabled, unbroadcast
from repro.autograd.workspace import fast_dropout_masks_enabled, get_workspace

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "sqrt",
    "tanh", "sigmoid", "relu", "gelu", "matmul", "reshape", "transpose",
    "sum", "mean", "var", "getitem", "concat", "stack", "pad_axis",
    "softmax", "log_softmax", "cross_entropy", "embedding", "dropout",
    "layer_norm", "where", "maximum", "clip", "masked_fill", "sum_to",
    "binary_cross_entropy_with_logits", "logsigmoid", "l2_normalize",
]


def _make(data: np.ndarray, parents: Tuple[Tensor, ...], backward) -> Tensor:
    """Build an output tensor, recording the graph only when needed."""
    if is_grad_enabled() and any(p.requires_grad or p._backward is not None for p in parents):
        return Tensor(data, _parents=parents, _backward=backward)
    return Tensor(data)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data + b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return _make(out, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data - b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return _make(out, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data * b.data

    def backward(grad):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return _make(out, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data / b.data

    def backward(grad):
        ga = grad / b.data
        gb = -grad * a.data / (b.data * b.data)
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return _make(out, (a, b), backward)


def neg(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad):
        return (-grad,)

    return _make(-a.data, (a,), backward)


def pow(a, exponent: float) -> Tensor:
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("tensor exponents are not supported; use exp/log")
    # numpy only fast-paths integer exponents up to 2; cubes through
    # ``**`` fall back to a transcendental pow that is ~40x slower than
    # two multiplies, so expand tiny integer powers explicitly.
    if exponent == 2:
        out = a.data * a.data
    elif exponent == 3:
        out = a.data * a.data * a.data
    else:
        out = a.data ** exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1),)

    return _make(out, (a,), backward)


def exp(a) -> Tensor:
    a = as_tensor(a)
    out = np.exp(a.data)

    def backward(grad):
        return (grad * out,)

    return _make(out, (a,), backward)


def log(a) -> Tensor:
    a = as_tensor(a)
    out = np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return _make(out, (a,), backward)


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out = np.sqrt(a.data)

    def backward(grad):
        return (grad * 0.5 / out,)

    return _make(out, (a,), backward)


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - out * out),)

    return _make(out, (a,), backward)


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    out = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))

    def backward(grad):
        return (grad * out * (1.0 - out),)

    return _make(out, (a,), backward)


def logsigmoid(a) -> Tensor:
    """Numerically stable ``log(sigmoid(x))``."""
    a = as_tensor(a)
    x = a.data
    out = np.where(x >= 0, -np.log1p(np.exp(-x)), x - np.log1p(np.exp(x)))

    def backward(grad):
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return (grad * (1.0 - sig),)

    return _make(out.astype(x.dtype, copy=False), (a,), backward)


def relu(a) -> Tensor:
    a = as_tensor(a)
    out = np.maximum(a.data, 0.0)

    def backward(grad):
        return (grad * (a.data > 0),)

    return _make(out, (a,), backward)


_GELU_C = np.sqrt(2.0 / np.pi)


def gelu(a) -> Tensor:
    """GELU activation (tanh approximation, as used by the paper's FFN).

    Hot-path notes: cubes are expanded to multiplies (numpy's float pow
    is ~40x slower), and intermediates are folded in place — every
    rewritten expression keeps the reference's elementwise value (only
    exact power-of-two scalings and commuted multiplications differ).
    """
    a = as_tensor(a)
    x = a.data
    x_sq = x * x
    inner = x_sq * x
    inner *= 0.044715
    inner += x
    inner *= _GELU_C
    t = np.tanh(inner, out=inner)  # inner is dead past this point
    out = t + 1.0
    out *= x
    out *= 0.5

    def backward(grad):
        # dinner = C * (1 + 3*0.044715*x^2), folded into a fresh buffer.
        dinner = x_sq * (3 * 0.044715)
        dinner += 1.0
        dinner *= _GELU_C
        # dx = 0.5*(1+t) + 0.5*x*(1-t^2)*dinner
        sech_sq = t * t
        np.subtract(1.0, sech_sq, out=sech_sq)
        sech_sq *= x
        sech_sq *= 0.5
        sech_sq *= dinner
        dx = t + 1.0
        dx *= 0.5
        dx += sech_sq
        dx *= grad
        return (dx,)

    return _make(out.astype(x.dtype, copy=False), (a,), backward)


def maximum(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)

    def backward(grad):
        mask = a.data >= b.data
        return (
            unbroadcast(grad * mask, a.shape),
            unbroadcast(grad * ~mask, b.shape),
        )

    return _make(out, (a, b), backward)


def clip(a, lo: float, hi: float) -> Tensor:
    a = as_tensor(a)
    out = np.clip(a.data, lo, hi)

    def backward(grad):
        inside = (a.data >= lo) & (a.data <= hi)
        return (grad * inside,)

    return _make(out, (a,), backward)


def where(cond, a, b) -> Tensor:
    """Select ``a`` where ``cond`` else ``b``; ``cond`` is a plain array."""
    cond = cond.data if isinstance(cond, Tensor) else np.asarray(cond)
    a, b = as_tensor(a), as_tensor(b)
    out = np.where(cond, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(grad * cond, a.shape),
            unbroadcast(grad * ~cond, b.shape),
        )

    return _make(out, (a, b), backward)


def masked_fill(a, mask, value: float) -> Tensor:
    """Set positions where ``mask`` is True to ``value`` (e.g. -inf logits).

    ``mask`` may be any shape broadcastable to ``a`` (attention passes
    ``(1, 1, N, N)`` or ``(B, 1, N, N)`` blocks against ``(B, H, N, N)``
    scores); the backward inverts the *small* mask and lets the
    multiply broadcast, instead of materializing the full-shape
    inverse.
    """
    a = as_tensor(a)
    mask = mask.data if isinstance(mask, Tensor) else np.asarray(mask)
    out = np.where(np.broadcast_to(mask, a.shape), np.asarray(value, dtype=a.dtype), a.data)

    def backward(grad):
        return (grad * ~mask,)

    return _make(out, (a,), backward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------

def reshape(a, shape: Tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    out = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return _make(out, (a,), backward)


def transpose(a, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    a = as_tensor(a)
    out = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad):
        return (np.transpose(grad, inverse),)

    return _make(out, (a,), backward)


def _is_basic_index(index) -> bool:
    """True for int/slice-only indexing, where positions cannot repeat."""
    basic = (int, np.integer, slice, type(Ellipsis), type(None))
    if isinstance(index, tuple):
        return all(isinstance(i, basic) for i in index)
    return isinstance(index, basic)


def getitem(a, index) -> Tensor:
    a = as_tensor(a)
    if isinstance(index, Tensor):
        index = index.data
    out = np.asarray(a.data[index])  # scalar indexing yields numpy scalars

    def backward(grad):
        full = np.zeros_like(a.data)
        if _is_basic_index(index):
            # Basic indexing selects each position at most once, so a
            # direct assignment replaces the (much slower) ``np.add.at``
            # scatter — this is the ``states[:, -1]`` hot path.
            full[index] = grad
        else:
            np.add.at(full, index, grad)
        return (full,)

    return _make(out, (a,), backward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        slicer = [slice(None)] * grad.ndim
        grads = []
        for i in range(len(tensors)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(slicer)])
        return tuple(grads)

    return _make(out, tuple(tensors), backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return _make(out, tuple(tensors), backward)


def pad_axis(a, axis: int, before: int, after: int, value: float = 0.0) -> Tensor:
    """Pad one axis with a constant value."""
    a = as_tensor(a)
    widths = [(0, 0)] * a.ndim
    widths[axis] = (before, after)
    out = np.pad(a.data, widths, constant_values=value)

    def backward(grad):
        slicer = [slice(None)] * a.ndim
        slicer[axis] = slice(before, before + a.shape[axis])
        return (grad[tuple(slicer)],)

    return _make(out, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    # Full reductions return *numpy scalars*; wrap them as 0-d arrays so
    # the Tensor constructor keeps their dtype instead of coercing them
    # to the scalar-constant default (which would silently narrow a
    # float64 reduction when the default is float32).
    out = np.asarray(a.data.sum(axis=axis, keepdims=keepdims))

    def backward(grad):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.shape).astype(a.dtype, copy=False),)

    return _make(out, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = np.asarray(a.data.mean(axis=axis, keepdims=keepdims))  # see sum()
    # Keep ``count`` a python int: a strong ``np.int64`` scalar would
    # promote float32 gradients to float64 in the division below.
    count = a.data.size if axis is None else int(np.prod(
        [a.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    ))

    def backward(grad):
        g = grad / count
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.shape).astype(a.dtype, copy=False),)

    return _make(out, (a,), backward)


def var(a, axis=None, keepdims: bool = False) -> Tensor:
    """Population variance (ddof=0), composed from differentiable ops."""
    a = as_tensor(a)
    mu = mean(a, axis=axis, keepdims=True)
    centered = sub(a, mu)
    squared = mul(centered, centered)
    return mean(squared, axis=axis, keepdims=keepdims)


def sum_to(a, shape: Tuple[int, ...]) -> Tensor:
    """Differentiable reduction of ``a`` to a broadcast-compatible shape."""
    a = as_tensor(a)
    out = unbroadcast(a.data, shape)

    def backward(grad):
        return (np.broadcast_to(grad, a.shape).astype(a.dtype, copy=False),)

    return _make(out, (a,), backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = np.asarray(a.data @ b.data)  # 1-d @ 1-d yields a numpy scalar

    def backward(grad):
        a_d, b_d = a.data, b.data
        if a_d.ndim == 1 and b_d.ndim == 1:
            return grad * b_d, grad * a_d
        if a_d.ndim == 1:  # (k,) @ (..., k, n)
            ga = (grad[..., None, :] @ np.swapaxes(b_d, -1, -2)).reshape(b_d.shape[:-2] + a_d.shape)
            ga = unbroadcast(ga, a_d.shape)
            gb = a_d[..., :, None] @ grad[..., None, :]
            gb = unbroadcast(gb, b_d.shape)
            return ga, gb
        if b_d.ndim == 1:  # (..., m, k) @ (k,)
            ga = grad[..., :, None] @ b_d[None, :]
            ga = unbroadcast(ga, a_d.shape)
            gb = np.swapaxes(a_d, -1, -2) @ grad[..., :, None]
            gb = unbroadcast(gb.reshape(gb.shape[:-1]), b_d.shape)
            # Reduce batch dims onto the vector.
            while gb.ndim > 1:
                gb = gb.sum(axis=0)
            return ga, gb
        ga = grad @ np.swapaxes(b_d, -1, -2)
        gb = np.swapaxes(a_d, -1, -2) @ grad
        return unbroadcast(ga, a_d.shape), unbroadcast(gb, b_d.shape)

    return _make(out, (a, b), backward)


# ----------------------------------------------------------------------
# Neural-network primitives
# ----------------------------------------------------------------------

def softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(grad):
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return (out * (grad - dot),)

    return _make(out, (a,), backward)


def log_softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z

    def backward(grad):
        soft = np.exp(out)
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return _make(out, (a,), backward)


def cross_entropy(logits, targets, ignore_index: Optional[int] = None) -> Tensor:
    """Mean softmax cross-entropy over the last axis.

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., num_classes)``.
    targets:
        Integer array of shape ``(...,)`` with class indices.
    ignore_index:
        Optional target value whose positions contribute zero loss
        (used for padding in masked-item objectives).
    """
    logits = as_tensor(logits)
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1).astype(np.int64)

    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    count = max(int(valid.sum()), 1)

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    safe_targets = np.where(valid, flat_targets, 0)
    picked = log_probs[np.arange(flat_targets.shape[0]), safe_targets]
    loss = -(picked * valid).sum() / count

    def backward(grad):
        soft = np.exp(log_probs)
        soft[np.arange(flat_targets.shape[0]), safe_targets] -= 1.0
        soft *= (valid / count)[:, None]
        return ((grad * soft).reshape(logits.shape).astype(logits.dtype, copy=False),)

    return _make(np.asarray(loss, dtype=logits.dtype), (logits,), backward)


def binary_cross_entropy_with_logits(logits, targets) -> Tensor:
    """Mean BCE over all elements; ``targets`` is a plain 0/1 array."""
    logits = as_tensor(logits)
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    x = logits.data
    loss = np.maximum(x, 0) - x * targets + np.log1p(np.exp(-np.abs(x)))
    out = loss.mean()

    def backward(grad):
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return ((grad * (sig - targets) / x.size).astype(x.dtype, copy=False),)

    return _make(np.asarray(out, dtype=x.dtype), (logits,), backward)


def embedding(weight, indices) -> Tensor:
    """Row-gather from an embedding matrix with segment-sum backward."""
    weight = as_tensor(weight)
    idx = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
    idx = idx.astype(np.int64, copy=False)
    out = weight.data[idx]

    def backward(grad):
        # Scatter-add via one flat ``bincount`` over (row, column) linear
        # indices: a single C-level pass, ~4x faster than ``np.add.at``
        # and linear in both the gathered rows and the vocabulary.  The
        # linear-index array is built in a shared workspace buffer (it
        # is consumed by ``bincount`` immediately).
        rows, dim = weight.shape
        flat = idx.reshape(-1)
        ws = get_workspace()
        cols = ws.cached(("arange", dim), lambda: np.arange(dim))
        lin = ws.scratch("embedding.lin", (flat.size, dim), np.int64)
        np.add(flat[:, None] * dim, cols[None, :], out=lin)
        full = np.bincount(
            lin.reshape(-1), weights=grad.reshape(-1), minlength=rows * dim
        ).reshape(rows, dim)
        return (full.astype(weight.dtype, copy=False),)

    return _make(out, (weight,), backward)


def dropout(
    a, p: float, training: bool, rng: np.random.Generator, fast: Optional[bool] = None
) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``.

    ``a`` must be a floating tensor; the output and gradient keep its
    dtype.  The kept/dropped decisions come from one of two paths:

    - **Seed-compatible** (``fast=False``, the default): one float64
      uniform per element from ``rng``, drawn into a shared workspace
      buffer.  The draw consumes the generator stream exactly like the
      seed implementation (``rng.random(a.shape)``), and the output is
      bitwise-identical to the historical
      ``a * ((draw < keep).astype(a.dtype) / keep)`` formulation — the
      mask is just kept as booleans and the ``1/keep`` rescale applied
      in place, which skips two full-array temporaries.
    - **Fast** (``fast=True``): one uint16 per element thresholded at
      ``round(keep * 65536)``.  ~2.5x cheaper mask generation, same
      distribution up to a 1/65536 quantization of ``keep``, but a
      different stochastic realization per seed.

    ``fast=None`` defers to the process-wide seed-compatibility flag
    (:func:`repro.autograd.workspace.set_fast_dropout_masks`).
    """
    a = as_tensor(a)
    if not training or p <= 0.0:
        return a
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    keep = 1.0 - p
    if fast is None:
        fast = fast_dropout_masks_enabled()
    if fast:
        threshold = np.uint16(min(65535, int(round(keep * 65536.0))))
        mask = rng.integers(0, 65536, size=a.shape, dtype=np.uint16) < threshold
    else:
        draw = get_workspace().scratch("dropout.draw", a.shape, np.float64)
        rng.random(out=draw)
        mask = draw < keep
    scale = a.dtype.type(1.0) / a.dtype.type(keep)
    out = a.data * mask
    out *= scale

    def backward(grad):
        g = grad * mask
        g *= scale
        return (g,)

    return _make(out, (a,), backward)


def layer_norm(a, gamma, beta, eps: float = 1e-12) -> Tensor:
    """Fused layer normalization over the last axis.

    The arithmetic matches the textbook formulation elementwise; large
    intermediates are updated in place and reused because this op runs
    ~3x per encoder block on the training hot path.  The backward's
    transient product buffer comes from the shared per-step workspace
    (the returned input gradient is always a fresh array).
    """
    a, gamma, beta = as_tensor(a), as_tensor(gamma), as_tensor(beta)
    x = a.data
    mu = x.mean(axis=-1, keepdims=True)
    xc = x - mu
    sq = xc * xc
    inv_std = sq.mean(axis=-1, keepdims=True)
    inv_std += eps
    np.sqrt(inv_std, out=inv_std)
    np.divide(1.0, inv_std, out=inv_std)
    x_hat = np.multiply(xc, inv_std, out=xc)  # xc is dead past this point
    out = np.multiply(x_hat, gamma.data, out=sq)  # reuse the sq buffer
    out += beta.data

    def backward(grad):
        g_xhat = grad * gamma.data
        scratch = get_workspace().scratch(
            "layer_norm.scratch", x.shape, np.result_type(g_xhat, x_hat)
        )
        np.multiply(g_xhat, x_hat, out=scratch)
        g_var_term = scratch.mean(axis=-1, keepdims=True)
        g_mu_term = g_xhat.mean(axis=-1, keepdims=True)
        np.multiply(grad, x_hat, out=scratch)
        g_gamma = unbroadcast(scratch, gamma.shape)
        if g_gamma is scratch:
            # 1-D input: no batch axes to reduce, so unbroadcast returns
            # the scratch buffer itself — copy before it is reused below.
            g_gamma = g_gamma.copy()
        g_beta = unbroadcast(grad, beta.shape)
        # ga = inv_std * (g_xhat - g_mu_term - x_hat * g_var_term),
        # folded into the g_xhat buffer (freshly allocated above).
        g_xhat -= g_mu_term
        np.multiply(x_hat, g_var_term, out=scratch)
        g_xhat -= scratch
        g_xhat *= inv_std
        return g_xhat.astype(x.dtype, copy=False), g_gamma, g_beta

    return _make(out, (a, gamma, beta), backward)


def l2_normalize(a, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Differentiable L2 normalization along ``axis``."""
    a = as_tensor(a)
    norm = sqrt(sum(mul(a, a), axis=axis, keepdims=True) + eps)
    return div(a, norm)
