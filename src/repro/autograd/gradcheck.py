"""Finite-difference gradient checking for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(func(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = float(func(*inputs).data.sum())
        flat[i] = original - eps
        low = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (high - low) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Verify analytic gradients of ``func`` against finite differences.

    ``func`` must be a pure function of its tensor inputs returning a
    tensor; the check differentiates ``sum(func(*inputs))``.  Inputs
    should be float64 for tight tolerances.  Raises ``AssertionError``
    with a diagnostic message on mismatch, returns True on success.
    """
    for t in inputs:
        t.zero_grad()
    out = func(*inputs)
    out.backward(np.ones_like(out.data))
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
