"""Static-graph tape capture & replay executor.

The dynamic engine re-walks every module ``__call__`` and re-dispatches
every autograd node each step, even though the ``(B, N, d)`` step
geometry is fixed for a whole training run.  This module records one
dynamic step into a :class:`Tape` — the execution-ordered list of op
*replay closures* plus the topologically-sorted backward graph — and
replays it as a flat loop of kernel calls, skipping module dispatch,
graph construction and Python attribute traffic entirely.

Design contract (see ``docs/ARCHITECTURE.md`` for the long form):

* **Capture is a dynamic step.**  Inside :func:`capture`, the model's
  loss runs through the ordinary op library; every op appends a replay
  closure via :func:`record_node` (the ``_make`` chokepoint in
  :mod:`repro.autograd.functional` does this automatically).  An op
  built without a replay closure under an active capture raises
  :class:`GraphCaptureError` naming the op — capture *validates*
  replay-safety at record time instead of producing silently wrong
  numbers later.

* **Replay rebinds, closures read fresh.**  A replay closure re-runs
  the op's forward numpy expressions, reading parent payloads through
  ``tensor.data`` *at call time*, and the executor rebinds the output
  tensor's ``data`` to the result.  Because replay runs literally the
  same numpy expressions as capture, bitwise equality with the dynamic
  engine is structural, not incidental.

* **Backward order is frozen.**  The tape stores the topological order
  :meth:`~repro.autograd.tensor.Tensor.backward` would compute, and
  replays the shared ``_backward_over`` sweep against it — identical
  accumulation order, identical float bit patterns.

* **RNG draws stay live.**  Stochastic closures (dropout masks,
  sampled-softmax negative draws) re-draw from the same
  ``numpy.random.Generator`` objects on every replay, consuming the
  stream exactly as the dynamic step would.  Restoring generator state
  on resume mutates the bit state of those same objects in place, so a
  re-captured tape replays the resumed stream bitwise.

* **Host computations are recorded too.**  Step-dependent numpy work
  outside the op library (padding masks, view stacking) registers an
  in-place recompute via :func:`record_host` so arrays captured by op
  closures stay fresh.

Invalidation rules enforced by :class:`TapeExecutor` per step:

====================================  =================================
Divergence                            Action
====================================  =================================
input shape/dtype/None-ness mismatch  dynamic fallback for that step
(e.g. ragged final batch)             only; tape kept
parameter payload rebound             tape invalidated, re-captured
(``load_state_dict``, ``Module.to``)
ambient dropout config changed        tape invalidated, re-captured
(view count, fast-mask flag,
``model.training``)
``GraphCaptureError`` during capture  permanent dynamic fallback,
(e.g. ``noise_eps > 0`` paths)        reason logged once
====================================  =================================

Layering: this module imports only :mod:`repro.autograd.tensor` (the
op library imports *this* module, never the reverse), so the import
chain ``functional → graph → tensor`` stays acyclic.
"""

from __future__ import annotations

import contextlib
import dataclasses
import logging
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, _backward_over, _topo_sort
from repro.autograd.workspace import (
    dropout_view_count,
    fast_dropout_masks_enabled,
)

__all__ = [
    "GraphCaptureError",
    "Tape",
    "TapeExecutor",
    "StepResult",
    "capture",
    "is_capturing",
    "record_node",
    "record_host",
]

logger = logging.getLogger(__name__)

_tls = threading.local()


class GraphCaptureError(RuntimeError):
    """An op that cannot be replayed was built under an active capture."""


def _active() -> Optional["Tape"]:
    """The calling thread's in-progress capture, or None (hot-path helper)."""
    return getattr(_tls, "capture", None)


def is_capturing() -> bool:
    """Whether the calling thread is inside a :func:`capture` context."""
    return getattr(_tls, "capture", None) is not None


def record_node(
    outs,
    replay: Callable[[], Any],
    name: Optional[str] = None,
) -> None:
    """Record an op into the active capture (no-op outside capture).

    ``outs`` is the op's output :class:`Tensor` or a sequence of sibling
    output tensors; ``replay`` re-runs the forward and returns the new
    payload array (or a tuple of arrays, one per sibling).  The op
    library's ``_make`` chokepoint calls this for every node; only ops
    built outside ``_make`` (multi-output fused kernels) call it
    directly.
    """
    tape = getattr(_tls, "capture", None)
    if tape is None:
        return
    if isinstance(outs, Tensor):
        outs = (outs,)
    tape._entries.append((tuple(outs), replay, name))


def record_host(replay: Callable[[], Any], name: Optional[str] = None) -> None:
    """Record a host-side numpy computation into the active capture.

    For step-dependent work outside the op library whose *result array
    objects* are captured by downstream op closures (padding masks, the
    stacked multi-view input).  ``replay`` must recompute **in place**
    into the same array objects; its return value is ignored.
    """
    tape = getattr(_tls, "capture", None)
    if tape is None:
        return
    tape._entries.append(((), replay, name))


class Tape:
    """One captured step: forward replay closures + frozen backward order."""

    __slots__ = (
        "_entries",
        "topo",
        "root",
        "grad_params",
        "param_bindings",
        "ambient",
        "signature",
    )

    def __init__(self) -> None:
        # (outs, replay, name) triples in execution order.  An empty
        # ``outs`` marks a host entry (in-place recompute, no rebind).
        self._entries: List[Tuple[Tuple[Tensor, ...], Callable, Optional[str]]] = []
        self.topo: List[Tensor] = []
        self.root: Optional[Tensor] = None
        self.grad_params: List[Tensor] = []
        self.param_bindings: List[Tuple[Tensor, np.ndarray]] = []
        self.ambient: Tuple = ()
        self.signature: Tuple = ()

    def __len__(self) -> int:
        return len(self._entries)

    def finalize(self, root: Tensor, params: Sequence[Tensor]) -> None:
        """Freeze the backward order and the validity snapshot.

        ``params`` is the model's full parameter list; the bindings
        snapshot (parameter → payload array identity) detects rebinds
        from ``load_state_dict``/``Module.to``, and ``grad_params`` —
        the parameters actually reachable in this graph — is what the
        executor seeds grad buffers for (matching exactly the set the
        dynamic sweep would touch).
        """
        self.root = root
        self.topo = _topo_sort(root)
        self.grad_params = [n for n in self.topo if n.requires_grad]
        self.param_bindings = [(p, p.data) for p in params]
        self.ambient = _ambient_state()

    def replay(self) -> Tensor:
        """Re-run the captured step as a flat loop of kernel calls."""
        for outs, replay, _name in self._entries:
            result = replay()
            if len(outs) == 1:
                outs[0].data = result
            elif outs:
                for tensor, arr in zip(outs, result):
                    tensor.data = arr
        return self.root

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run the frozen-order backward sweep from the root."""
        root = self.root
        if grad is None:
            grad = np.ones_like(root.data)
        _backward_over(self.topo, root, grad)

    def bindings_valid(self) -> bool:
        """Whether every captured parameter still holds the same payload."""
        return all(p.data is data for p, data in self.param_bindings)


@contextlib.contextmanager
def capture():
    """Record one dynamic step into a fresh :class:`Tape`.

    Usage::

        with capture() as tape:
            loss = model.loss(batch)
        tape.finalize(loss, list(model.parameters()))

    Single-threaded by construction (the capture handle is
    thread-local); nesting raises.
    """
    if getattr(_tls, "capture", None) is not None:
        raise RuntimeError("nested graph capture is not supported")
    tape = Tape()
    _tls.capture = tape
    try:
        yield tape
    finally:
        _tls.capture = None


def _ambient_state() -> Tuple:
    """The thread/process config a tape's RNG + mask closures baked in."""
    return (dropout_view_count(), fast_dropout_masks_enabled())


def _batch_signature(batch) -> Tuple:
    """Shape/dtype/None-ness fingerprint of a step's input batch."""
    sig = []
    for field in dataclasses.fields(batch):
        value = getattr(batch, field.name)
        if value is None:
            sig.append((field.name, None))
        else:
            arr = np.asarray(value)
            sig.append((field.name, arr.shape, arr.dtype))
    return tuple(sig)


class StepResult:
    """One executor step: the loss value plus a mode-aware backward."""

    __slots__ = ("mode", "loss", "_executor", "_root")

    def __init__(self, mode: str, root: Tensor, executor: "TapeExecutor") -> None:
        self.mode = mode  # "capture" | "replay" | "dynamic"
        self.loss = float(root.data)
        self._root = root
        self._executor = executor

    def backward(self) -> None:
        if self.mode == "dynamic":
            self._root.backward()
        else:
            self._executor._seed_grad_buffers()
            self._executor._tape.backward()


class TapeExecutor:
    """Drives a model's training steps through capture/replay.

    The executor owns three kinds of persistent state:

    * **Input buffers** — one owned copy of each batch array, refreshed
      with ``np.copyto`` per step, so the index/target arrays baked into
      op closures at capture time stay the *same objects* with fresh
      contents on every replay.
    * **Grad buffers** — one zeroed accumulator per reachable parameter,
      re-seeded (``fill(0)``) before every backward instead of
      re-allocated, installed as *owned* buffers so the in-place
      ``_accumulate_grad`` path fires (and ``clip_grad_norm`` scales in
      place, preserving buffer identity across steps).
    * **The tape itself**, plus its validity snapshot (see the module
      docstring's invalidation table).

    ``loss_fn`` defaults to ``model.loss``; pass a callable taking the
    (buffer-backed) batch to capture a different objective.
    """

    def __init__(self, model, loss_fn: Optional[Callable] = None) -> None:
        self.model = model
        self.loss_fn = loss_fn if loss_fn is not None else model.loss
        self._tape: Optional[Tape] = None
        self._grad_bufs: Dict[int, np.ndarray] = {}
        self._input_bufs: Optional[Dict[str, Optional[np.ndarray]]] = None
        self._input_sig: Tuple = ()
        self.disabled_reason: Optional[str] = None
        self.captures = 0
        self.replays = 0
        self.recaptures = 0
        self.fallback_steps = 0
        self._warned: set = set()

    # ------------------------------------------------------------------
    def step(self, batch) -> StepResult:
        """Run one training forward: replay when valid, else (re)capture.

        Falls back to a plain dynamic step — same numbers, no tape —
        when the batch geometry diverges (tape kept) or when capture
        itself proved the graph replay-unsafe (tape disabled for the
        run, reason logged once).
        """
        if self.disabled_reason is not None:
            self.fallback_steps += 1
            return StepResult("dynamic", self.loss_fn(batch), self)

        signature = _batch_signature(batch)
        if self._tape is not None:
            if signature != self._input_sig:
                self._warn_once(
                    "geometry",
                    "static-graph: batch geometry diverged from the captured "
                    f"tape ({signature} != {self._input_sig}); running this "
                    "step dynamically (tape kept)",
                )
                self.fallback_steps += 1
                return StepResult("dynamic", self.loss_fn(batch), self)
            reason = self._invalid_reason()
            if reason is not None:
                self._warn_once(
                    f"recapture:{reason}",
                    f"static-graph: tape invalidated ({reason}); re-capturing",
                )
                self._tape = None
                self.recaptures += 1

        if self._tape is None:
            return self._capture_step(batch, signature)

        self._bind_inputs(batch)
        root = self._tape.replay()
        self.replays += 1
        return StepResult("replay", root, self)

    # ------------------------------------------------------------------
    def _invalid_reason(self) -> Optional[str]:
        tape = self._tape
        if not tape.bindings_valid():
            return "parameter payload rebound"
        ambient = _ambient_state() + (getattr(self.model, "training", True),)
        captured = tape.ambient + (self._captured_training,)
        if ambient != captured:
            return "ambient dropout/training config changed"
        return None

    def _capture_step(self, batch, signature: Tuple) -> StepResult:
        self._input_bufs = None  # rebuild buffers for the new geometry
        buffered = self._bind_inputs(batch)
        self._input_sig = signature
        self._captured_training = getattr(self.model, "training", True)
        # The capture may die mid-loss (an unsafe op raising
        # GraphCaptureError) *after* earlier ops consumed RNG draws;
        # snapshot the model's streams so the dynamic re-run below
        # consumes them exactly as a never-captured run would.
        rng_snapshot = (
            self.model.rng_state_dict()
            if callable(getattr(self.model, "rng_state_dict", None))
            else None
        )
        try:
            with capture() as tape:
                root = self.loss_fn(buffered)
        except GraphCaptureError as exc:
            self.disabled_reason = str(exc)
            logger.warning(
                "static-graph: capture failed (%s); running dynamically "
                "for the rest of the run",
                exc,
            )
            self.fallback_steps += 1
            if rng_snapshot is not None:
                self.model.load_rng_state_dict(rng_snapshot)
            return StepResult("dynamic", self.loss_fn(buffered), self)
        tape.finalize(root, list(self.model.parameters()))
        self._tape = tape
        self.captures += 1
        return StepResult("capture", root, self)

    #: model.training at capture time (class default until first capture).
    _captured_training = True

    # ------------------------------------------------------------------
    def _bind_inputs(self, batch):
        """Copy the batch into executor-owned buffers, return a buffer view."""
        if self._input_bufs is None:
            bufs: Dict[str, Optional[np.ndarray]] = {}
            for field in dataclasses.fields(batch):
                value = getattr(batch, field.name)
                bufs[field.name] = None if value is None else np.array(value)
            self._input_bufs = bufs
        else:
            for name, buf in self._input_bufs.items():
                if buf is not None:
                    np.copyto(buf, getattr(batch, name))
        return dataclasses.replace(batch, **self._input_bufs)

    def _seed_grad_buffers(self) -> None:
        """Install zeroed, executor-owned grad accumulators on the params.

        Reuses the persistent buffer when shape and dtype still match
        (``load_state_dict(cast=...)`` changes them — then we
        re-allocate); writes the ``_grad``/``_grad_owned`` slots
        directly because the public ``grad`` setter deliberately marks
        assigned buffers as borrowed.
        """
        for p in self._tape.grad_params:
            buf = self._grad_bufs.get(id(p))
            if buf is None or buf.shape != p.data.shape or buf.dtype != p.data.dtype:
                buf = np.zeros_like(p.data)
                self._grad_bufs[id(p)] = buf
            else:
                buf.fill(0.0)
            p._grad = buf
            p._grad_owned = True

    def _warn_once(self, key: str, message: str) -> None:
        if key not in self._warned:
            self._warned.add(key)
            logger.warning(message)

    def stats(self) -> Dict[str, Any]:
        """Counters for logging/tests: captures, replays, fallbacks."""
        return {
            "captures": self.captures,
            "replays": self.replays,
            "recaptures": self.recaptures,
            "fallback_steps": self.fallback_steps,
            "tape_len": 0 if self._tape is None else len(self._tape),
            "disabled_reason": self.disabled_reason,
        }
