"""The fused frequency-domain filtering operator used by SLIME4Rec.

Forward (Eqs. 12, 21, 25, 27 of the paper)::

    X = rfft(x, axis=1)                   # (B, M, d) complex, M = N//2 + 1
    Y = X * (mask * W)                    # element-wise complex filter
    y = irfft(Y, n=N, axis=1)             # (B, N, d) real

The filter ``W`` is stored as two *real* parameter tensors (real and
imaginary part) so the rest of the autograd engine never needs complex
dtypes.  The backward pass is derived analytically from the convolution
theorem (the whole op is a circular convolution with a real kernel
``h = irfft(mask * W)``):

- ``dx = irfft(rfft(g) * conj(mask * W), n=N)``  (circular correlation),
- ``dW_k = m_k * conj(X_k) * rfft(g)_k / N`` summed over the batch, where
  ``m_k`` doubles interior bins to account for the conjugate-symmetric
  mirror half of the spectrum (DC and, for even N, the Nyquist bin appear
  once; their imaginary parts receive zero gradient).

Both the values and the gradients are cross-checked in the test suite
against :func:`spectral_filter_reference`, an implementation composed
purely of primitive autograd ops through explicit DFT matrices, and
against central finite differences.

Workspace contract
------------------
All ``L`` mixer layers of a step share one ``(B, N, d)`` geometry, so
both ops route their transient frequency-domain products (``X * filt``
forward, ``rfft(g) * conj(filt)`` and ``conj(X) * rfft(g)`` backward)
through the shared per-step workspace
(:mod:`repro.autograd.workspace`) instead of allocating a fresh
``(B, M, d)`` complex array per call.  Only the forward spectrum — the
one array the backward closure genuinely needs later — is kept per
layer.  Dtype contract: float32 inputs keep the whole pipeline in
``complex64``, float64 in ``complex128``; scratch reuse silently falls
back to allocation when input dtypes disagree (mixed-precision calls),
so values never change.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.graph import record_node
from repro.autograd.tensor import Tensor, as_tensor, is_grad_enabled
from repro.autograd.workspace import get_workspace

try:  # pragma: no cover - exercised implicitly by every spectral test
    import scipy.fft as _scipy_fft
except ImportError:  # pragma: no cover - numpy fallback environments
    _scipy_fft = None

__all__ = [
    "num_frequency_bins",
    "spectral_filter",
    "spectral_filter_mixed",
    "combined_filter",
    "spectral_filter_reference",
    "dft_matrices",
]


def num_frequency_bins(n: int) -> int:
    """Number of independent rFFT bins for a length-``n`` real signal.

    This equals ``n // 2 + 1``, which matches the paper's
    ``M = ceil(N / 2) + 1`` for even ``N`` (the paper's sequence lengths
    are all even) and is the correct bin count for odd ``N`` as well.
    """
    if n <= 0:
        raise ValueError(f"sequence length must be positive, got {n}")
    return n // 2 + 1


#: Cached, read-only mirror-weight vectors keyed by sequence length and
#: dtype — pure functions of ``n`` that sit on the per-layer hot path.
#: The dtype key keeps float32 backward passes in complex64: a float64
#: mirror vector would silently promote the batch-summed spectrum
#: product to complex128.
_MIRROR_CACHE: dict = {}


def _mirror_weights(n: int, dtype=np.float64) -> np.ndarray:
    """Per-bin multiplicity of the half-spectrum in the full spectrum."""
    key = (n, np.dtype(dtype))
    cached = _MIRROR_CACHE.get(key)
    if cached is not None:
        return cached
    m = num_frequency_bins(n)
    w = np.full(m, 2.0, dtype=key[1])
    w[0] = 1.0
    if n % 2 == 0:
        w[-1] = 1.0
    w.setflags(write=False)
    _MIRROR_CACHE[key] = w
    return w


#: Cap (in bytes) on the real-signal operand of one numpy pocketfft
#: call.  numpy's rfft/irfft stream the strided axis-1 transforms ~1.8x
#: slower once the operand spills the L2 cache, so large batches — the
#: stacked ``(3B, N, d)`` multi-view geometry in particular — are
#: transformed in row blocks that stay cache-resident.  Each length-N
#: transform is independent, so blocking is value-identical to one full
#: call.  With the scipy backend (preferred when available: its pypocketfft
#: computes float32 transforms natively in single precision, ~5x numpy's
#: double-internal path at this geometry, and caches plan/twiddle state)
#: full-width calls are already cache-clean, so blocking is numpy-only.
_FFT_BLOCK_BYTES = 1 << 18


def _fft_block_rows(shape: Tuple[int, ...], itemsize: int) -> int:
    """Rows per blocked FFT call for a ``(rows, N, d)`` real operand."""
    row_bytes = max(1, int(np.prod(shape[1:])) * itemsize)
    return max(1, _FFT_BLOCK_BYTES // row_bytes)


def _rfft(x: np.ndarray, m: int) -> np.ndarray:
    """``rfft(x, axis=1)`` via scipy when available, blocked numpy otherwise."""
    if _scipy_fft is not None:
        return _scipy_fft.rfft(x, axis=1)
    rows = x.shape[0]
    block = _fft_block_rows(x.shape, x.dtype.itemsize)
    if rows <= block:
        return np.fft.rfft(x, axis=1)
    out = np.empty(
        (rows, m, x.shape[2]), dtype=np.result_type(x.dtype, np.complex64)
    )
    for i in range(0, rows, block):
        out[i : i + block] = np.fft.rfft(x[i : i + block], axis=1)
    return out


def _irfft(spec: np.ndarray, n: int) -> np.ndarray:
    """``irfft(spec, n, axis=1)`` on the same backend policy as :func:`_rfft`."""
    if _scipy_fft is not None:
        return _scipy_fft.irfft(spec, n=n, axis=1)
    return np.fft.irfft(spec, n=n, axis=1)


def _mul_into(a: np.ndarray, b: np.ndarray, tag: str) -> np.ndarray:
    """``a * b`` written into a shared workspace scratch buffer.

    The product is transient in every call site here (it feeds straight
    into an FFT or a batch reduction), so all layers of a step reuse
    one buffer per ``(tag, shape, dtype)``.  Falls back to a plain
    allocating multiply when the operands would promote past ``a``'s
    dtype (mixed-precision inputs), keeping values identical either way.
    """
    if np.result_type(a, b) != a.dtype:
        return a * b
    return np.multiply(a, b, out=get_workspace().scratch(tag, a.shape, a.dtype))


def _filtered_irfft(spectrum: np.ndarray, filt: np.ndarray, n: int, tag: str) -> np.ndarray:
    """``irfft(spectrum * filt, n)`` with a cache-resident blocked product.

    The full-size frequency product is never materialized: each row
    block's ``spectrum * filt`` lands in a small workspace scratch that
    stays hot for the immediately following blocked ``irfft`` — cutting
    a full write+read of the ``(B, M, d)`` complex array per call.
    Per-row results are identical to the unblocked form.
    """
    rows = spectrum.shape[0]
    real_dtype = np.empty(0, dtype=spectrum.dtype).real.dtype
    block = _fft_block_rows((rows, n, spectrum.shape[2]), real_dtype.itemsize)
    if rows <= block or np.result_type(spectrum, filt) != spectrum.dtype:
        return _irfft(_mul_into(spectrum, filt, tag), n)
    out = np.empty((rows, n, spectrum.shape[2]), dtype=real_dtype)
    ws = get_workspace()
    for i in range(0, rows, block):
        j = min(i + block, rows)
        prod = np.multiply(
            spectrum[i:j], filt, out=ws.scratch(tag, (j - i,) + spectrum.shape[1:], spectrum.dtype)
        )
        out[i:j] = _irfft(prod, n)
    return out


def _conj_mul_batch_sum(a: np.ndarray, b: np.ndarray, tag: str) -> np.ndarray:
    """``(conj(a) * b).sum(axis=0)`` with a cache-resident blocked product.

    Serves the filter-gradient reduction: only block-sized products are
    materialized and each block's partial sum folds into a small
    ``(M, d)`` accumulator.  Blockwise partial sums reassociate the
    batch reduction (float-rounding-level differences only).
    """
    rows = a.shape[0]
    real_itemsize = np.empty(0, dtype=a.dtype).real.dtype.itemsize
    block = _fft_block_rows(a.shape, real_itemsize)
    if rows <= block or np.result_type(a, b) != a.dtype:
        return _conj_mul_into(a, b, tag).sum(axis=0)
    acc = np.zeros(a.shape[1:], dtype=a.dtype)
    ws = get_workspace()
    for i in range(0, rows, block):
        j = min(i + block, rows)
        buf = ws.scratch(tag, (j - i,) + a.shape[1:], a.dtype)
        np.conjugate(a[i:j], out=buf)
        buf *= b[i:j]
        acc += buf.sum(axis=0)
    return acc


def _conj_mul_into(a: np.ndarray, b: np.ndarray, tag: str) -> np.ndarray:
    """``conj(a) * b`` via a workspace buffer (no intermediate conj array)."""
    if np.result_type(a, b) != a.dtype:
        return np.conj(a) * b
    buf = get_workspace().scratch(tag, a.shape, a.dtype)
    np.conjugate(a, out=buf)
    buf *= b
    return buf


def spectral_filter(x, w_real, w_imag, mask) -> Tensor:
    """Apply a learnable complex frequency filter to a real sequence.

    Parameters
    ----------
    x:
        Real tensor of shape ``(B, N, d)`` (time domain).
    w_real, w_imag:
        Real tensors of shape ``(M, d)`` holding the complex filter,
        where ``M = N // 2 + 1``.
    mask:
        Plain 0/1 array of shape ``(M,)`` or ``(M, 1)`` selecting the
        frequency band this layer is allowed to touch (the sliding
        window of the frequency ramp structure).

    Returns
    -------
    Tensor
        Real tensor of shape ``(B, N, d)``.
    """
    x, w_real, w_imag = as_tensor(x), as_tensor(w_real), as_tensor(w_imag)
    if x.ndim != 3:
        raise ValueError(f"x must be (B, N, d), got shape {x.shape}")
    n = x.shape[1]
    m = num_frequency_bins(n)
    if w_real.shape != w_imag.shape:
        raise ValueError("w_real and w_imag must share a shape")
    if w_real.shape[0] != m:
        raise ValueError(
            f"filter has {w_real.shape[0]} bins but sequence length {n} needs {m}"
        )
    mask = np.asarray(mask, dtype=x.dtype)
    if mask.ndim == 1:
        mask = mask[:, None]
    if mask.shape[0] != m:
        raise ValueError(f"mask must have {m} bins, got {mask.shape[0]}")

    filt = spectrum = None

    def forward():
        # Replay closure: re-reads the parameter and input arrays on
        # every call, so a static-graph replay picks up post-optimizer
        # weights; ``filt``/``spectrum`` are rebound for the backward
        # closure, which shares these cells.
        nonlocal filt, spectrum
        filt = (w_real.data + 1j * w_imag.data) * mask  # (M, d) complex
        spectrum = _rfft(x.data, m)  # (B, M, d) complex
        return _filtered_irfft(spectrum, filt, n, "spectral.prod").astype(x.dtype, copy=False)

    out = forward()

    if not (
        is_grad_enabled()
        and any(t.requires_grad or t._backward is not None for t in (x, w_real, w_imag))
    ):
        result = Tensor(out)
        record_node(result, forward, "spectral_filter")
        return result

    mirror = _mirror_weights(n, x.dtype)[:, None]  # (M, 1)

    def backward(grad):
        grad_spec = _rfft(grad, m)  # (B, M, d)
        gx = _filtered_irfft(grad_spec, np.conj(filt), n, "spectral.gprod").astype(
            x.dtype, copy=False
        )
        # dW accumulated over the batch; mirror weights fold in the
        # conjugate-symmetric half of the full spectrum.  The blocked
        # product reuses the grad-side scratch buffer (its previous
        # contents were consumed by the irfft above).
        dw = _conj_mul_batch_sum(spectrum, grad_spec, "spectral.gprod") * (mirror / n)
        dw = dw * mask  # gradient only flows inside the band
        dw_real = dw.real.astype(x.dtype, copy=False)
        dw_imag = dw.imag.astype(x.dtype, copy=False)
        # DC (and Nyquist for even N) imaginary parts do not affect the
        # real output; zero their gradients explicitly.
        dw_imag[0] = 0.0
        if n % 2 == 0:
            dw_imag[-1] = 0.0
        return gx, dw_real, dw_imag

    result = Tensor(out, _parents=(x, w_real, w_imag), _backward=backward)
    record_node(result, forward, "spectral_filter")
    return result


def _as_column_mask(mask, m: int, dtype) -> np.ndarray:
    """Normalize a 0/1 band mask to an ``(M, 1)`` array of ``dtype``."""
    mask = np.asarray(mask, dtype=dtype)
    if mask.ndim == 1:
        mask = mask[:, None]
    if mask.shape[0] != m:
        raise ValueError(f"mask must have {m} bins, got {mask.shape[0]}")
    return mask


def combined_filter(
    dfs_real, dfs_imag, dfs_mask, sfs_real, sfs_imag, sfs_mask, gamma: float
) -> np.ndarray:
    """The mixed complex filter ``(1-γ)·mask_D·W_D + γ·mask_S·W_S``.

    By linearity of the DFT, mixing the two filtered spectra (Eqs.
    26-27) equals filtering once with this combined mask — which is what
    lets :func:`spectral_filter_mixed` run the whole mixer block on a
    single FFT pair.  Returns a plain complex ``(M, d)`` array; callers
    on the training hot path cache it per layer (it only changes when
    the parameters do, i.e. once per optimizer step, while the model
    encodes every batch three times under the contrastive objective).
    """
    dfs_real, dfs_imag = as_tensor(dfs_real), as_tensor(dfs_imag)
    sfs_real, sfs_imag = as_tensor(sfs_real), as_tensor(sfs_imag)
    m = dfs_real.shape[0]
    dfs_mask = _as_column_mask(dfs_mask, m, dfs_real.dtype)
    sfs_mask = _as_column_mask(sfs_mask, m, sfs_real.dtype)
    return (1.0 - gamma) * dfs_mask * (dfs_real.data + 1j * dfs_imag.data) + gamma * sfs_mask * (
        sfs_real.data + 1j * sfs_imag.data
    )


def spectral_filter_mixed(
    x,
    dfs_real,
    dfs_imag,
    dfs_mask,
    sfs_real,
    sfs_imag,
    sfs_mask,
    gamma: float,
    filt: np.ndarray | None = None,
    filt_provider=None,
) -> Tensor:
    """Fused DFS + SFS filter mixing on a single FFT pair (Eqs. 21-27).

    Semantically identical to::

        (1 - gamma) * spectral_filter(x, dfs_real, dfs_imag, dfs_mask)
            + gamma * spectral_filter(x, sfs_real, sfs_imag, sfs_mask)

    but runs one ``rfft``/``irfft`` pair forward (instead of two of
    each) and one pair backward, applying the precombined complex
    filter in the frequency domain.  The backward pass reuses the
    shared spectrum product for both branches::

        dx   = irfft(rfft(g) * conj(filt))
        base = mirror/N * Σ_batch conj(X) · rfft(g)
        dW_D = (1-γ) · mask_D · base      dW_S = γ · mask_S · base

    Parameters mirror :func:`spectral_filter`, doubled per branch;
    ``filt`` optionally injects a cached :func:`combined_filter` result
    so repeated encodes of one training step skip recombination.
    ``filt_provider`` is the replay-safe variant of the same
    optimization: a zero-argument callable returning the combined
    filter, invoked on *every* forward evaluation (build and static
    -graph replay alike) so replays observe post-optimizer weights;
    it takes precedence over ``filt``.
    """
    x = as_tensor(x)
    dfs_real, dfs_imag = as_tensor(dfs_real), as_tensor(dfs_imag)
    sfs_real, sfs_imag = as_tensor(sfs_real), as_tensor(sfs_imag)
    if x.ndim != 3:
        raise ValueError(f"x must be (B, N, d), got shape {x.shape}")
    n = x.shape[1]
    m = num_frequency_bins(n)
    for name, w in (
        ("dfs_real", dfs_real),
        ("dfs_imag", dfs_imag),
        ("sfs_real", sfs_real),
        ("sfs_imag", sfs_imag),
    ):
        if w.shape != dfs_real.shape:
            raise ValueError(f"{name} shape {w.shape} differs from dfs_real {dfs_real.shape}")
    if dfs_real.shape[0] != m:
        raise ValueError(
            f"filters have {dfs_real.shape[0]} bins but sequence length {n} needs {m}"
        )
    dfs_mask = _as_column_mask(dfs_mask, m, x.dtype)
    sfs_mask = _as_column_mask(sfs_mask, m, x.dtype)
    if filt is not None and filt_provider is None and filt.shape != dfs_real.shape:
        raise ValueError(f"cached filter shape {filt.shape} does not match {dfs_real.shape}")

    filt_used = spectrum = None

    def forward():
        # Replay closure: the combined filter is re-fetched (provider)
        # or recombined from the live parameter arrays every call, so a
        # static-graph replay sees post-optimizer weights; a static
        # ``filt`` snapshot is kept as-is (its call sites only pass it
        # for repeated encodes within one step, which a capture never
        # spans — see FilterMixerLayer).
        nonlocal filt_used, spectrum
        if filt_provider is not None:
            filt_used = filt_provider()
        elif filt is not None:
            filt_used = filt
        else:
            filt_used = combined_filter(
                dfs_real, dfs_imag, dfs_mask, sfs_real, sfs_imag, sfs_mask, gamma
            )
        spectrum = _rfft(x.data, m)  # (B, M, d) complex
        return _filtered_irfft(spectrum, filt_used, n, "spectral.prod").astype(
            x.dtype, copy=False
        )

    out = forward()
    if filt_used.shape != dfs_real.shape:
        raise ValueError(
            f"cached filter shape {filt_used.shape} does not match {dfs_real.shape}"
        )

    params = (dfs_real, dfs_imag, sfs_real, sfs_imag)
    if not (
        is_grad_enabled()
        and any(t.requires_grad or t._backward is not None for t in (x,) + params)
    ):
        result = Tensor(out)
        record_node(result, forward, "spectral_filter_mixed")
        return result

    mirror = _mirror_weights(n, x.dtype)[:, None]  # (M, 1)

    def backward(grad):
        grad_spec = _rfft(grad, m)  # (B, M, d)
        gx = _filtered_irfft(grad_spec, np.conj(filt_used), n, "spectral.gprod").astype(
            x.dtype, copy=False
        )
        # One batch-summed spectrum product serves both branches; the
        # blocked product reuses the grad-side scratch (each block is
        # consumed by the irfft above before the sum re-fills it).
        base = _conj_mul_batch_sum(spectrum, grad_spec, "spectral.gprod") * (mirror / n)
        grads = [gx]
        for weight, mask in ((1.0 - gamma, dfs_mask), (gamma, sfs_mask)):
            dw = base * (weight * mask)
            dw_real = dw.real.astype(x.dtype, copy=False)
            dw_imag = dw.imag.astype(x.dtype, copy=False)
            # DC (and Nyquist for even N) imaginary parts do not affect
            # the real output; zero their gradients explicitly.
            dw_imag[0] = 0.0
            if n % 2 == 0:
                dw_imag[-1] = 0.0
            grads.extend((dw_real, dw_imag))
        return tuple(grads)

    result = Tensor(out, _parents=(x,) + params, _backward=backward)
    record_node(result, forward, "spectral_filter_mixed")
    return result


def dft_matrices(n: int, dtype=np.float64) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Explicit real DFT matrices mapping time <-> half spectrum.

    Returns ``(C, S, IC, IS)`` such that for a real signal ``x`` of
    length ``n`` with half spectrum ``X = Xr + i*Xi``::

        Xr = C @ x          Xi = S @ x
        x  = IC @ Xr + IS @ Xi

    These are used by :func:`spectral_filter_reference` and by the test
    suite to cross-validate the fused FFT implementation.
    """
    m = num_frequency_bins(n)
    k = np.arange(m)[:, None]
    t = np.arange(n)[None, :]
    angle = 2.0 * np.pi * k * t / n
    cos_mat = np.cos(angle).astype(dtype)
    sin_mat = -np.sin(angle).astype(dtype)
    mirror = _mirror_weights(n)[:, None]
    # Inverse: x_t = (1/n) * sum_k mirror_k * (Xr_k cos - Xi_k sin)
    icos = (mirror * np.cos(angle)).T.astype(dtype) / n
    isin = (-(mirror * np.sin(angle))).T.astype(dtype) / n
    return cos_mat, sin_mat, icos, isin


def spectral_filter_reference(x, w_real, w_imag, mask) -> Tensor:
    """Reference implementation built only from primitive autograd ops.

    Mathematically identical to :func:`spectral_filter` but O(N^2):
    the DFT is performed through explicit cosine/sine matrices so that
    gradient correctness follows from the primitive ops.  Used in tests.
    """
    x, w_real, w_imag = as_tensor(x), as_tensor(w_real), as_tensor(w_imag)
    n = x.shape[1]
    mask = np.asarray(mask, dtype=x.dtype)
    if mask.ndim == 1:
        mask = mask[:, None]
    cos_mat, sin_mat, icos, isin = dft_matrices(n, dtype=x.dtype)

    # (B, N, d) -> (B, M, d): contract the time axis.
    xt = F.transpose(x, (0, 2, 1))  # (B, d, N)
    xr = F.transpose(F.matmul(xt, Tensor(cos_mat.T)), (0, 2, 1))  # (B, M, d)
    xi = F.transpose(F.matmul(xt, Tensor(sin_mat.T)), (0, 2, 1))

    wr = F.mul(w_real, Tensor(mask))
    wi = F.mul(w_imag, Tensor(mask))
    # Zero the imaginary filter part on bins whose mirror weight is 1
    # (DC / Nyquist): irfft ignores those components for real output.
    anti = _mirror_weights(n)[:, None] - 1.0  # 0 at DC/Nyquist, 1 inside
    wi = F.mul(wi, Tensor(anti.astype(x.dtype)))

    yr = F.sub(F.mul(xr, wr), F.mul(xi, wi))
    yi = F.add(F.mul(xr, wi), F.mul(xi, wr))

    yr_t = F.transpose(yr, (0, 2, 1))  # (B, d, M)
    yi_t = F.transpose(yi, (0, 2, 1))
    out = F.add(F.matmul(yr_t, Tensor(icos.T)), F.matmul(yi_t, Tensor(isin.T)))
    return F.transpose(out, (0, 2, 1))
