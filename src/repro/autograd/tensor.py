"""Core Tensor type with reverse-mode automatic differentiation.

The design follows the classic tape-free approach: every differentiable
operation builds a new :class:`Tensor` holding references to its parent
tensors and a closure that propagates the incoming gradient to those
parents.  Calling :meth:`Tensor.backward` topologically sorts the graph
and runs the closures once each.

Gradients are plain ``numpy.ndarray`` objects accumulated into
``Tensor.grad``.  Broadcasting is fully supported: op implementations in
:mod:`repro.autograd.functional` reduce gradients back to the parent
shape with :func:`unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "as_tensor",
    "parameter_version",
    "bump_parameter_version",
    "get_default_dtype",
    "set_default_dtype",
]

_DEFAULT_DTYPE = np.float32

_grad_state = threading.local()

#: Monotonic counter bumped whenever parameter payloads are mutated in
#: place (optimizer steps, checkpoint restores).  Consumers that cache
#: values derived from parameter data — e.g. the combined complex
#: filter of a :class:`~repro.core.filter_mixer.FilterMixerLayer` —
#: key their caches on this counter to stay coherent.
_parameter_version = 0


def parameter_version() -> int:
    """Current parameter-mutation epoch (see :func:`bump_parameter_version`)."""
    return _parameter_version


def bump_parameter_version() -> int:
    """Invalidate parameter-derived caches after an in-place update."""
    global _parameter_version
    _parameter_version += 1
    return _parameter_version


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def get_default_dtype() -> np.dtype:
    """Return the dtype used for tensors created from python data."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> None:
    """Set the global default floating dtype (float32 or float64)."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"default dtype must be float32 or float64, got {dtype}")
    _DEFAULT_DTYPE = dtype.type


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can (a) prepend new axes and (b) stretch size-1 axes.
    The adjoint of both is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with an optional gradient and autograd history.

    Parameters
    ----------
    data:
        Array-like payload.  Floating input is kept as-is; python lists
        and scalars are converted to the default float dtype unless they
        are integral (kept as int64, useful for index tensors).
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = (
        "data",
        "_grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "_grad_owned",
    )

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if not isinstance(data, np.ndarray):
            data = np.asarray(data)
            if data.dtype.kind == "f":
                data = data.astype(_DEFAULT_DTYPE, copy=False)
            elif data.dtype.kind in "iu":
                data = data.astype(np.int64, copy=False)
        if requires_grad and data.dtype.kind != "f":
            raise TypeError("only floating tensors can require gradients")
        self.data = data
        self._grad: Optional[np.ndarray] = None
        self._grad_owned = False
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def grad(self) -> Optional[np.ndarray]:
        return self._grad

    @grad.setter
    def grad(self, value: Optional[np.ndarray]) -> None:
        # Externally assigned buffers may be shared with the caller, so
        # in-place accumulation must not touch them (see _accumulate_grad).
        self._grad = value
        self._grad_owned = False

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f" '{self.name}'" if self.name else ""
        return f"Tensor{label}(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared memory, not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a 1-element tensor, got shape {self.shape}"
            )
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self._grad = None
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad``, in place when safe.

        Buffer ownership tracking: ``_grad_owned`` is True only when
        ``self.grad`` is an array this tensor allocated itself (a copy
        or the result of a ``+``).  Owned buffers are updated with
        ``+=``; borrowed buffers (references handed out by backward
        closures, which may be shared with sibling tensors or graph
        internals) are never mutated — accumulation into them allocates
        once and takes ownership of the result.
        """
        if grad.dtype != self.data.dtype:
            grad = grad.astype(self.data.dtype, copy=False)
        if self._grad is None:
            if grad.base is not None or grad is self.data:
                self._grad = grad.copy()
                self._grad_owned = True
            else:
                self._grad = grad
                self._grad_owned = False
        elif self._grad_owned and self._grad.shape == grad.shape:
            self._grad += grad
        else:
            self._grad = self._grad + grad
            self._grad_owned = True

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad and self._backward is None:
            raise RuntimeError("tensor does not require grad and has no graph")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"grad shape {grad.shape} does not match tensor shape {self.data.shape}"
                )
        _backward_over(_topo_sort(self), self, grad)

    # ------------------------------------------------------------------
    # Operator sugar (implementations live in functional.py)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.autograd import functional as F

        return F.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from repro.autograd import functional as F

        return F.sub(self, other)

    def __rsub__(self, other):
        from repro.autograd import functional as F

        return F.sub(other, self)

    def __mul__(self, other):
        from repro.autograd import functional as F

        return F.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.autograd import functional as F

        return F.div(self, other)

    def __rtruediv__(self, other):
        from repro.autograd import functional as F

        return F.div(other, self)

    def __neg__(self):
        from repro.autograd import functional as F

        return F.neg(self)

    def __pow__(self, exponent):
        from repro.autograd import functional as F

        return F.pow(self, exponent)

    def __matmul__(self, other):
        from repro.autograd import functional as F

        return F.matmul(self, other)

    def __getitem__(self, index):
        from repro.autograd import functional as F

        return F.getitem(self, index)

    # Convenience methods mirroring the functional API -----------------
    def reshape(self, *shape):
        from repro.autograd import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    def transpose(self, *axes):
        from repro.autograd import functional as F

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return F.transpose(self, axes if axes else None)

    def sum(self, axis=None, keepdims=False):
        from repro.autograd import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        from repro.autograd import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def exp(self):
        from repro.autograd import functional as F

        return F.exp(self)

    def log(self):
        from repro.autograd import functional as F

        return F.log(self)

    def sqrt(self):
        from repro.autograd import functional as F

        return F.sqrt(self)

    def tanh(self):
        from repro.autograd import functional as F

        return F.tanh(self)

    def sigmoid(self):
        from repro.autograd import functional as F

        return F.sigmoid(self)

    def relu(self):
        from repro.autograd import functional as F

        return F.relu(self)


def _topo_sort(root: "Tensor") -> list:
    """Topologically sort ``root``'s autograd graph (parents first).

    Iterative DFS so deep chains (e.g. unrolled GRUs) never hit the
    recursion limit.  Shared between the dynamic :meth:`Tensor.backward`
    and the static-graph tape, which captures this list once and replays
    :func:`_backward_over` against it — keeping the accumulation order,
    and therefore the float bit patterns, identical across both modes.
    """
    topo: list[Tensor] = []
    visited: set[int] = set()
    stack: list[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return topo


def _backward_over(topo: list, root: "Tensor", grad: np.ndarray) -> None:
    """Run the reverse sweep over a pre-built topological order.

    In-flight gradient buffers: ``owned`` holds the ids of nodes whose
    dict buffer was allocated by this loop (via ``+``) and is therefore
    safe to update in place; first contributions are borrowed references
    from backward closures and must not be mutated, because closures may
    hand the same array to several parents (e.g. ``add`` returns its
    incoming grad twice).
    """
    grads: dict[int, np.ndarray] = {id(root): grad}
    owned: set[int] = set()
    for node in reversed(topo):
        node_grad = grads.pop(id(node), None)
        if node_grad is None:
            continue
        owned.discard(id(node))
        if node.requires_grad:
            node._accumulate_grad(node_grad)
        if node._backward is None:
            continue
        parent_grads = node._backward(node_grad)
        if parent_grads is None:
            continue
        for parent, pgrad in zip(node._parents, parent_grads):
            if pgrad is None:
                continue
            if not (parent.requires_grad or parent._backward is not None):
                continue
            pid = id(parent)
            existing = grads.get(pid)
            if existing is None:
                grads[pid] = pgrad
            elif (
                pid in owned
                # 0-d arithmetic returns immutable numpy scalars, for
                # which ``+=`` would rebind the local and silently
                # drop the contribution — only true ndarrays qualify.
                and type(existing) is np.ndarray
                and existing.shape == pgrad.shape
                and existing.dtype == np.result_type(existing.dtype, pgrad.dtype)
            ):
                existing += pgrad
            else:
                grads[pid] = existing + pgrad
                owned.add(pid)


TensorLike = Union[Tensor, np.ndarray, float, int, Sequence]


def as_tensor(value: TensorLike) -> Tensor:
    """Coerce a value to :class:`Tensor` without copying existing tensors."""
    return value if isinstance(value, Tensor) else Tensor(value)
