"""Shared per-step compute workspace: scratch buffers and derived caches.

One optimizer step of every model in this repo runs over a single
``(B, N, d)`` geometry, yet before this module existed each hot-path op
re-derived its own working memory on every call: the spectral mixer
allocated a fresh ``(B, M, d)`` complex product buffer per layer per
encode, dropout drew a fresh float64 array per site, and attention
rebuilt its block mask and re-concatenated nothing (it ran three
separate Q/K/V GEMMs instead).  The :class:`StepWorkspace` gives those
ops one place to park reusable memory, keyed by ``(tag, shape, dtype)``,
so all ``L`` layers of a step — and all steps of a run — share one set
of scratch arrays per geometry.

Three kinds of state live here, with three different contracts:

``scratch(tag, shape, dtype)``
    A *transient* buffer.  The caller may use it only until the next
    ``scratch`` call with the same key; it must never be stored in an
    autograd closure or returned to a caller.  Hot-path ops write
    elementwise products into these (``np.multiply(..., out=buf)``)
    instead of allocating, which also keeps the pages warm.

``cached(key, build)``
    An *immutable* derived constant (causal masks, index rows, mirror
    weights).  Built once per key, returned read-only where possible.
    Never invalidated — entries are pure functions of their key.

:class:`ParamCache`
    A module-owned cache of a value *derived from parameter payloads*
    (the mixer's combined complex filter, attention's concatenated
    Q/K/V weight).  Keyed on the global parameter-mutation epoch
    (:func:`~repro.autograd.tensor.parameter_version`) plus the
    identity of the payload arrays, so it rebuilds exactly once per
    optimizer step / checkpoint restore and never serves stale data.

The workspace is **thread-local** (one per thread via
:func:`get_workspace`): scratch reuse is only safe when at most one op
is mid-flight per buffer, which a per-thread instance guarantees for
the single-threaded training loop without making concurrent evaluation
threads unsafe.

This module also owns the **seed-compatibility flag** for dropout mask
generation (:func:`set_fast_dropout_masks`).  The default (``False``)
keeps mask draws bitwise-faithful to the seed implementation — same
PCG64 stream, same float64 draws, same kept positions for a given seed.
Enabling the fast path switches to 16-bit threshold masks (one uint16
draw per element instead of one float64), which is ~2.5x cheaper but
consumes the generator stream differently, so per-seed masks change
(the marginal keep probability is quantized to 1/65536, an expectation
error below 8e-6).  See ``docs/PERFORMANCE.md``.

Layering: this module imports only :mod:`repro.autograd.tensor`; both
the autograd op library and the ``repro.nn`` stack build on it.  The
public, documented entry point is :mod:`repro.nn.workspace`.
"""

from __future__ import annotations

import contextlib
import copy
import threading
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.autograd.tensor import parameter_version

__all__ = [
    "StepWorkspace",
    "ParamCache",
    "get_workspace",
    "reset_workspace",
    "set_fast_dropout_masks",
    "fast_dropout_masks_enabled",
    "fast_dropout_masks",
    "set_dropout_view_count",
    "dropout_view_count",
    "dropout_views",
    "generator_state",
    "set_generator_state",
]


class StepWorkspace:
    """Reusable per-geometry buffers for one training/eval step.

    See the module docstring for the ``scratch`` vs ``cached``
    contracts.  ``hits``/``misses`` count scratch lookups and are
    exposed for tests and for the ``docs/PERFORMANCE.md`` workflow.
    """

    __slots__ = ("_scratch", "_cached", "hits", "misses")

    def __init__(self) -> None:
        self._scratch: Dict[Tuple, np.ndarray] = {}
        self._cached: Dict[Tuple, Any] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def scratch(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Return a reusable uninitialized buffer for ``(tag, shape, dtype)``.

        The buffer is valid only until the next ``scratch`` call with
        the same key.  Callers must fully overwrite it before reading
        and must never capture it in a backward closure — anything that
        outlives the current op needs its own allocation.
        """
        key = (tag, shape, np.dtype(dtype))
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=key[2])
            self._scratch[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def cached(self, key: Tuple, build: Callable[[], Any]) -> Any:
        """Return the derived constant for ``key``, building it once.

        ``build`` must be a pure function of ``key``; entries are never
        invalidated.  Arrays returned from here should be treated as
        read-only (builders are encouraged to ``setflags(write=False)``).
        """
        value = self._cached.get(key)
        if value is None:
            value = build()
            self._cached[key] = value
        return value

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every buffer and cache entry (frees the memory)."""
        self._scratch.clear()
        self._cached.clear()
        self.hits = 0
        self.misses = 0

    def nbytes(self) -> int:
        """Total bytes currently parked in scratch buffers."""
        return int(sum(buf.nbytes for buf in self._scratch.values()))

    def __repr__(self) -> str:
        return (
            f"StepWorkspace(scratch={len(self._scratch)}, cached={len(self._cached)}, "
            f"hits={self.hits}, misses={self.misses}, nbytes={self.nbytes()})"
        )


class ParamCache:
    """A cache of one value derived from parameter payloads.

    Owned by the module that derives the value (the filter mixer's
    combined complex filter, attention's concatenated Q/K/V weight).
    The cache key couples the global parameter-mutation epoch (bumped
    by optimizer steps, ``Module.to`` and checkpoint restores) with the
    *identity* of the payload arrays — held as strong references so a
    freed buffer's address can never be mistaken for a live one — plus
    an optional ``extra`` equality key (e.g. a mixing coefficient).
    The derived value is therefore rebuilt exactly once per parameter
    update even when the step evaluates the module several times.

    Call :meth:`invalidate` after mutating parameter ``.data`` buffers
    in place *without* going through an optimizer/``load_state_dict``
    (those bump the version themselves).
    """

    __slots__ = ("_token", "_payloads", "_value")

    def __init__(self) -> None:
        self._token: Optional[Tuple] = None
        self._payloads: Optional[Tuple[np.ndarray, ...]] = None
        self._value: Any = None

    def get(
        self,
        payloads: Tuple[np.ndarray, ...],
        build: Callable[[], Any],
        extra: Any = None,
    ) -> Any:
        token = (parameter_version(), extra)
        if (
            self._payloads is not None
            and self._token == token
            and len(self._payloads) == len(payloads)
            and all(a is b for a, b in zip(self._payloads, payloads))
        ):
            return self._value
        value = build()
        self._token = token
        self._payloads = tuple(payloads)
        self._value = value
        return value

    def invalidate(self) -> None:
        """Drop the cached value (after manual in-place weight edits)."""
        self._token = None
        self._payloads = None
        self._value = None


# ----------------------------------------------------------------------
# Thread-local workspace instance
# ----------------------------------------------------------------------

_tls = threading.local()


def get_workspace() -> StepWorkspace:
    """The calling thread's shared :class:`StepWorkspace` (created lazily)."""
    ws = getattr(_tls, "workspace", None)
    if ws is None:
        ws = StepWorkspace()
        _tls.workspace = ws
    return ws


def reset_workspace() -> StepWorkspace:
    """Replace the calling thread's workspace with a fresh, empty one."""
    ws = StepWorkspace()
    _tls.workspace = ws
    return ws


# ----------------------------------------------------------------------
# Random-stream capture: the RNG half of the run-state contract
# ----------------------------------------------------------------------
#
# Every stochastic stream in a training run is a ``numpy.random.Generator``
# (dropout layers, augmentation/noise/mask rngs on the baselines, the
# batch iterator's shuffle stream, the negative sampler).  Bitwise
# crash/resume requires capturing each generator's *bit state* — the
# exact position in its PCG64 sequence — not its seed: a seed only
# reproduces the stream from the start, while a checkpoint lands
# mid-stream.  These two helpers define the capture format used by
# ``Module.rng_state_dict`` and the trainer's run-state archive.


def generator_state(gen: np.random.Generator) -> Dict[str, Any]:
    """Deep-copied, JSON-serializable snapshot of a generator's bit state.

    The returned dict is numpy's own ``bit_generator.state`` payload
    (algorithm name + integer state words; PCG64 state words are 128-bit
    Python ints, which JSON carries exactly).  Restoring it with
    :func:`set_generator_state` resumes the stream at the captured
    position, so subsequent draws are bitwise-identical to a run that
    never stopped.
    """
    return copy.deepcopy(gen.bit_generator.state)


def set_generator_state(gen: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a :func:`generator_state` snapshot into ``gen`` in place.

    Raises ``ValueError`` (from numpy) when the snapshot belongs to a
    different bit-generator algorithm than ``gen`` uses.
    """
    gen.bit_generator.state = copy.deepcopy(state)


# ----------------------------------------------------------------------
# Dropout mask generation: the seed-compatibility flag
# ----------------------------------------------------------------------

#: Process-wide (unlike the workspace itself, deliberately NOT
#: thread-local: the flag is a run-level configuration choice, and a
#: worker thread silently falling back to the default would make a
#: benchmark measure nothing).  Reads are lock-free; flip it only from
#: one thread.
_FAST_MASKS_ENABLED = False


def set_fast_dropout_masks(enabled: bool) -> bool:
    """Toggle the fast dropout-mask path; returns the previous setting.

    ``False`` (the default) is the *seed-compatible* mode: masks are
    drawn exactly as the seed implementation drew them (float64 PCG64
    uniforms), so training runs are bitwise-reproducible against
    recorded results.  ``True`` switches to uint16 threshold masks —
    measurably cheaper, same distribution up to a 1/65536 quantization
    of the keep probability, but a *different* stochastic realization
    per seed.
    """
    global _FAST_MASKS_ENABLED
    previous = _FAST_MASKS_ENABLED
    _FAST_MASKS_ENABLED = bool(enabled)
    return previous


def fast_dropout_masks_enabled() -> bool:
    """Whether dropout currently uses the fast (non-seed-compatible) path."""
    return _FAST_MASKS_ENABLED


@contextlib.contextmanager
def fast_dropout_masks(enabled: bool = True):
    """Scope the fast dropout-mask path, e.g. for one benchmark run."""
    previous = set_fast_dropout_masks(enabled)
    try:
        yield
    finally:
        set_fast_dropout_masks(previous)


# ----------------------------------------------------------------------
# Dropout view streams: per-view mask draws for stacked multi-view passes
# ----------------------------------------------------------------------
#
# The contrastive objectives encode V views of a batch per step.  When
# the views are stacked along the batch axis into one ``(V*B, N, d)``
# pass, every dropout site must still draw the *same* per-view masks
# that V separate ``(B, N, d)`` passes would have drawn from its
# generator — otherwise the stacked fast path is a different stochastic
# model, not an optimization.  The view count below tells
# :func:`repro.autograd.functional.dropout` to split its mask draw into
# V consecutive per-view draws along the leading axis, exactly matching
# the V-pass stream consumption in both the seed-compatible and the
# fast mask modes.  Thread-local like the workspace itself: the count
# is per-forward-call state scoped by the ``dropout_views`` context.


def set_dropout_view_count(count: int) -> int:
    """Set the calling thread's dropout view count; returns the previous one.

    ``1`` (the default) is the ordinary single-view draw.  ``V > 1``
    makes every dropout site split its leading axis into ``V`` equal
    view blocks and draw each block's mask separately from its
    generator — the contract stacked multi-view encodes rely on.
    """
    count = int(count)
    if count < 1:
        raise ValueError(f"dropout view count must be >= 1, got {count}")
    previous = getattr(_tls, "dropout_views", 1)
    _tls.dropout_views = count
    return previous


def dropout_view_count() -> int:
    """The calling thread's current dropout view count (default 1)."""
    return getattr(_tls, "dropout_views", 1)


@contextlib.contextmanager
def dropout_views(count: int):
    """Scope a dropout view count over one stacked multi-view forward.

    Exception-safe: the previous count is restored in a ``finally``
    block, so an exception anywhere inside a batched ``encode_views``
    pass (a shape error in a dropout site, a raising layer) cannot leak
    the view count into the next step — the leaked count would silently
    change every later dropout draw's generator consumption.  An
    invalid ``count`` raises *before* any state is mutated.  Prefer
    this context manager over calling :func:`set_dropout_view_count`
    directly; direct callers own the try/finally themselves.
    """
    previous = set_dropout_view_count(count)
    try:
        yield
    finally:
        set_dropout_view_count(previous)
