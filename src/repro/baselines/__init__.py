"""Baseline recommenders reproduced on the same substrate (Table II).

Every baseline follows the common interface of
:class:`~repro.core.encoder.SequentialEncoderBase` so the trainer,
evaluator and benchmark harness treat all models uniformly.
"""

from repro.baselines.transformer import TransformerBlock, TransformerEncoder
from repro.baselines.bprmf import BPRMF
from repro.baselines.gru4rec import GRU4Rec
from repro.baselines.caser import Caser
from repro.baselines.sasrec import SASRec
from repro.baselines.bert4rec import BERT4Rec
from repro.baselines.fmlprec import FMLPRec
from repro.baselines.cl4srec import CL4SRec
from repro.baselines.coserec import CoSeRec
from repro.baselines.duorec import DuoRec
from repro.baselines.contrastvae import ContrastVAE
from repro.baselines.s3rec import S3Rec
from repro.baselines.registry import build_baseline, BASELINE_NAMES

__all__ = [
    "TransformerBlock",
    "TransformerEncoder",
    "BPRMF",
    "GRU4Rec",
    "Caser",
    "SASRec",
    "BERT4Rec",
    "FMLPRec",
    "CL4SRec",
    "CoSeRec",
    "DuoRec",
    "ContrastVAE",
    "S3Rec",
    "build_baseline",
    "BASELINE_NAMES",
]
