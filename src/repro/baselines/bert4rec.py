"""BERT4Rec baseline (Sun et al., CIKM 2019).

Bidirectional self-attention trained with the Cloze (masked item)
objective: a random fraction of positions is replaced by a ``[mask]``
token and the model predicts the original items.  At inference the
history is shifted left and a ``[mask]`` appended at the final position
whose hidden state scores the next item.

The bidirectional encoder shares the fused attention fast path
(:mod:`repro.nn.attention`): same single Q/K/V GEMM, with the causal
mask disabled and the padding-key block cached per sequence length.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.graph import record_host
from repro.autograd.tensor import Tensor
from repro.baselines.transformer import TransformerEncoder
from repro.core.encoder import SequentialEncoderBase
from repro.data.batching import Batch

__all__ = ["BERT4Rec"]

_IGNORE = -100  # positions that contribute no loss


class BERT4Rec(SequentialEncoderBase):
    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 2,
        mask_prob: float = 0.2,
        embed_dropout: float = 0.3,
        hidden_dropout: float = 0.3,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            embed_dropout=embed_dropout,
            extra_tokens=1,  # the [mask] token
            seed=seed,
            dtype=dtype,
        )
        self.mask_token = num_items + 1
        self.mask_prob = mask_prob
        self._mask_rng = np.random.default_rng(seed + 9)
        self.encoder = TransformerEncoder(
            hidden_dim,
            num_layers,
            num_heads=num_heads,
            dropout=hidden_dropout,
            causal=False,
            rng=np.random.default_rng(seed + 10),
            dtype=self.dtype,
        )

    # ------------------------------------------------------------------
    def encode_states(self, input_ids: np.ndarray) -> Tensor:
        ids = np.asarray(input_ids)
        padding = ids == 0
        # Static-graph replay: refresh the padding mask in place from the
        # persistent input buffer (see sasrec.py for the same pattern).
        record_host(lambda: np.equal(ids, 0, out=padding), "bert4rec.padding")
        hidden = self.embed(input_ids)
        for block in self.encoder.blocks:
            hidden = block(hidden, key_padding_mask=padding)
        return hidden

    # ------------------------------------------------------------------
    def loss(self, batch: Batch) -> Tensor:
        """Cloze objective over randomly masked non-padding positions."""
        ids = np.asarray(batch.input_ids, dtype=np.int64)
        inputs = np.empty_like(ids)
        labels = np.empty_like(ids)
        corrupted = np.empty_like(ids)

        def prepare():
            # Fold the next-item target in as the final sequence element
            # so the Cloze task sees complete sequences (standard
            # practice); equals ``roll(ids, -1, axis=1)`` with the
            # rolled-around column overwritten by the targets.
            inputs[:, :-1] = ids[:, 1:]
            inputs[:, -1] = batch.targets
            labels.fill(_IGNORE)
            real = inputs != 0
            masked = real & (self._mask_rng.random(inputs.shape) < self.mask_prob)
            # Always mask the last position: it is exactly the next-item task.
            masked[:, -1] = True
            labels[masked] = inputs[masked]
            np.copyto(corrupted, inputs)
            corrupted[masked] = self.mask_token

        prepare()
        # Static-graph replay: the Cloze corruption (including the fresh
        # mask RNG draw) reruns as a host entry into the same arrays the
        # captured graph reads.
        record_host(prepare, "bert4rec.cloze")

        states = self.encode_states(corrupted)  # (B, N, d)
        table = F.transpose(self._score_table(), (1, 0))
        logits = F.matmul(states, table)  # (B, N, V+1)
        return F.cross_entropy(logits, labels, ignore_index=_IGNORE)

    def predict_scores(self, input_ids: np.ndarray, context: np.ndarray | None = None) -> np.ndarray:
        """Append [mask] at the end and rank by its hidden state."""
        inputs = np.asarray(input_ids, dtype=np.int64)
        shifted = np.roll(inputs, -1, axis=1)
        shifted[:, -1] = self.mask_token
        states = self.encode_states(shifted)
        user = F.getitem(states, (slice(None), -1))
        if context is not None:
            return user.data @ context
        table = F.transpose(self._score_table(), (1, 0))
        return F.matmul(user, table).data
