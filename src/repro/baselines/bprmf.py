"""BPR-MF baseline (Rendle et al. 2012).

Classic non-sequential matrix factorization trained with the pairwise
Bayesian Personalized Ranking loss.  Adaptation for the shared
sequence-in/scores-out interface: the user factor is the mean of the
embeddings of the user's interacted items (an order-invariant pooling,
FISM-style), which preserves the property the paper relies on — BPR-MF
ignores sequential information entirely — while letting it rank unseen
evaluation users.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.graph import record_host
from repro.autograd.tensor import Tensor
from repro.core.encoder import SequentialEncoderBase
from repro.data.batching import Batch

__all__ = ["BPRMF"]


class BPRMF(SequentialEncoderBase):
    """Order-invariant MF with BPR loss and sampled negatives."""

    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_negatives: int = 1,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            embed_dropout=0.0,
            seed=seed,
            dtype=dtype,
        )
        self.num_negatives = num_negatives
        self._neg_rng = np.random.default_rng(seed + 17)

    def encode_states(self, input_ids: np.ndarray) -> Tensor:
        """Mean-pool item embeddings, replicated across positions."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        embedded = self.item_embedding(input_ids)  # (B, N, d)
        counts = np.maximum((input_ids != 0).sum(axis=1, keepdims=True), 1).astype(embedded.dtype)
        # Static-graph replay: refresh the history-length denominators in
        # place from the persistent input buffer.
        record_host(
            lambda: np.copyto(
                counts, np.maximum((input_ids != 0).sum(axis=1, keepdims=True), 1)
            ),
            "bprmf.counts",
        )
        pooled = F.div(F.sum(embedded, axis=1), Tensor(counts))  # (B, d)
        batch = input_ids.shape[0]
        # Broadcast the pooled vector to every position for interface parity.
        tiled = F.reshape(pooled, (batch, 1, self.hidden_dim))
        return F.add(tiled, Tensor(np.zeros((batch, self.max_len, self.hidden_dim), dtype=embedded.dtype)))

    def loss(self, batch: Batch) -> Tensor:
        """BPR: ``-log sigmoid(score(pos) - score(neg))`` with 1 negative."""
        user = F.getitem(self.encode_states(batch.input_ids), (slice(None), -1))
        pos_emb = self.item_embedding(batch.targets)
        negatives = np.empty(batch.targets.shape, dtype=np.int64)

        def draw():
            negatives[...] = self._neg_rng.integers(
                1, self.num_items + 1, size=negatives.shape
            )
            # Resample collisions with the positive once (close enough to exact).
            collision = negatives == batch.targets
            if collision.any():
                negatives[collision] = (negatives[collision] % self.num_items) + 1

        draw()
        # Static-graph replay: redraw negatives per step into the same
        # index array the captured embedding lookup reads.
        record_host(draw, "bprmf.negatives")
        neg_emb = self.item_embedding(negatives)
        pos_score = F.sum(F.mul(user, pos_emb), axis=1)
        neg_score = F.sum(F.mul(user, neg_emb), axis=1)
        margin = F.sub(pos_score, neg_score)
        return F.neg(F.mean(F.logsigmoid(margin)))
