"""Caser baseline (Tang & Wang, WSDM 2018).

Convolutional sequence embedding: the embedded history is treated as an
``N x d`` image processed by horizontal filters (window heights 2..4
with max-over-time pooling) and vertical filters, concatenated and
projected back to the model width.  The per-user latent factor of the
original is omitted (the shared protocol evaluates unseen prefixes),
matching common Caser reimplementations in sequential-recommendation
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core.encoder import SequentialEncoderBase
from repro.nn import Dropout, HorizontalConv, Linear, ModuleList, VerticalConv

__all__ = ["Caser"]


class Caser(SequentialEncoderBase):
    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_h_filters: int = 16,
        num_v_filters: int = 4,
        heights: tuple[int, ...] = (2, 3, 4),
        embed_dropout: float = 0.3,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            embed_dropout=embed_dropout,
            seed=seed,
            dtype=dtype,
        )
        rng = np.random.default_rng(seed + 6)
        self.horizontal = ModuleList(
            [
                HorizontalConv(max_len, hidden_dim, h, num_h_filters, rng=rng, dtype=self.dtype)
                for h in heights
            ]
        )
        self.vertical = VerticalConv(max_len, num_v_filters, rng=rng, dtype=self.dtype)
        concat_dim = num_h_filters * len(heights) + num_v_filters * hidden_dim
        self.project = Linear(concat_dim, hidden_dim, rng=rng, dtype=self.dtype)
        self.out_dropout = Dropout(embed_dropout, rng=np.random.default_rng(seed + 7))

    def encode_states(self, input_ids: np.ndarray) -> Tensor:
        embedded = self.embed(input_ids)  # (B, N, d)
        pieces = [conv(embedded) for conv in self.horizontal]
        pieces.append(self.vertical(embedded))
        features = F.concat(pieces, axis=1)  # (B, concat)
        user = F.relu(self.project(self.out_dropout(features)))  # (B, d)
        batch = user.shape[0]
        tiled = F.reshape(user, (batch, 1, self.hidden_dim))
        zeros = Tensor(np.zeros((batch, self.max_len, self.hidden_dim), dtype=user.dtype))
        return F.add(tiled, zeros)
