"""CL4SRec baseline (Xie et al., ICDE 2022).

SASRec encoder plus a contrastive task over *data-level* augmented
views: each sequence is augmented twice by a random choice of crop,
mask or reorder, and the two views are positives under InfoNCE.

All three encodes per step (original + two augmented views) run on the
fused attention fast path (:mod:`repro.nn.attention`); with
``batched_views`` (the default) they are additionally stacked into one
``(3B, N, d)`` forward with per-view dropout streams
(:meth:`~repro.core.encoder.SequentialEncoderBase.encode_views`).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.graph import record_host
from repro.autograd.tensor import Tensor
from repro.baselines.sasrec import SASRec
from repro.core.contrastive import info_nce_loss
from repro.data.augmentation import crop_sequence, mask_sequence, reorder_sequence
from repro.data.batching import Batch
from repro.data.preprocess import pad_or_truncate

__all__ = ["CL4SRec", "augmented_contrastive_loss"]


def augmented_contrastive_loss(model, batch: Batch) -> Tensor:
    """Shared CE + InfoNCE objective over two augmented views.

    Used by the CL4SRec-style models (CL4SRec, CoSeRec) whose views
    come from index-level augmentation: the model must expose
    ``cl_weight``, ``cl_temperature``, ``batched_views``,
    ``_augment_batch`` and ``_user``.  With ``batched_views`` the
    original batch and both augmented views run as one stacked
    ``(3B, N, d)`` walk (:meth:`~repro.core.encoder.SequentialEncoderBase.encode_views`);
    otherwise the sequential three-pass reference.  Both augment in the
    same ``_aug_rng`` order, so the two paths see identical views.
    """
    if model.cl_weight <= 0.0:
        return model.recommendation_loss(batch.input_ids, batch.targets)
    if model.batched_views:
        aug_a = model._augment_batch(batch.input_ids)
        aug_b = model._augment_batch(batch.input_ids)
        user, view_a, view_b = model.encode_views((batch.input_ids, aug_a, aug_b))
        rec = model.prediction_loss(user, batch.targets)
    else:
        rec = model.recommendation_loss(batch.input_ids, batch.targets)
        view_a = model._user(model._augment_batch(batch.input_ids))
        view_b = model._user(model._augment_batch(batch.input_ids))
    cl = info_nce_loss(view_a, view_b, temperature=model.cl_temperature)
    return F.add(rec, F.mul(cl, model.cl_weight))


class CL4SRec(SASRec):
    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 2,
        cl_weight: float = 0.1,
        cl_temperature: float = 1.0,
        aug_ratio: float = 0.6,
        embed_dropout: float = 0.3,
        hidden_dropout: float = 0.3,
        batched_views: bool = True,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            num_heads=num_heads,
            embed_dropout=embed_dropout,
            hidden_dropout=hidden_dropout,
            seed=seed,
            dtype=dtype,
        )
        self.cl_weight = cl_weight
        self.cl_temperature = cl_temperature
        self.aug_ratio = aug_ratio
        self.batched_views = batched_views
        # The mask augmentation uses item id 0 (padding) as the blank,
        # following the original which adds a dedicated mask item.
        self._aug_rng = np.random.default_rng(seed + 12)

    # ------------------------------------------------------------------
    def _augment_row(self, row: np.ndarray) -> np.ndarray:
        items: List[int] = [i for i in row.tolist() if i != 0]
        if not items:
            return row
        choice = int(self._aug_rng.integers(3))
        if choice == 0:
            items = crop_sequence(items, self.aug_ratio, self._aug_rng)
        elif choice == 1:
            items = mask_sequence(items, 1.0 - self.aug_ratio, 0, self._aug_rng)
        else:
            items = reorder_sequence(items, 1.0 - self.aug_ratio, self._aug_rng)
        return pad_or_truncate(items, self.max_len)

    def _augment_batch(self, input_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(input_ids)
        out = np.stack([self._augment_row(row) for row in ids])

        def refresh():
            # Static-graph replay: re-augment (fresh RNG draws) into the
            # same array the captured graph reads from.
            for i, row in enumerate(ids):
                out[i] = self._augment_row(row)

        record_host(refresh, "cl4srec.augment")
        return out

    def _user(self, input_ids: np.ndarray) -> Tensor:
        return F.getitem(self.encode_states(input_ids), (slice(None), -1))

    # ------------------------------------------------------------------
    def loss(self, batch: Batch) -> Tensor:
        return augmented_contrastive_loss(self, batch)
