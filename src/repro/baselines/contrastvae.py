"""ContrastVAE baseline (Wang et al., CIKM 2022), simplified.

A variational transformer encoder: the user state is mapped to a
Gaussian posterior ``N(mu, sigma^2)``; two reparameterized samples form
the contrastive views (variational augmentation) while the decoder
scores the next item from a sampled latent.  Loss = CE + beta * KL +
lambda * InfoNCE between the two samples.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.graph import record_host
from repro.autograd.tensor import Tensor
from repro.baselines.sasrec import SASRec
from repro.core.contrastive import info_nce_loss
from repro.data.batching import Batch
from repro.nn import Linear

__all__ = ["ContrastVAE"]


class ContrastVAE(SASRec):
    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 2,
        cl_weight: float = 0.1,
        cl_temperature: float = 1.0,
        kl_weight: float = 0.01,
        embed_dropout: float = 0.3,
        hidden_dropout: float = 0.3,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            num_heads=num_heads,
            embed_dropout=embed_dropout,
            hidden_dropout=hidden_dropout,
            seed=seed,
            dtype=dtype,
        )
        rng = np.random.default_rng(seed + 14)
        self.mu_head = Linear(hidden_dim, hidden_dim, rng=rng, dtype=self.dtype)
        self.logvar_head = Linear(hidden_dim, hidden_dim, rng=rng, dtype=self.dtype)
        self.cl_weight = cl_weight
        self.cl_temperature = cl_temperature
        self.kl_weight = kl_weight
        self._eps_rng = np.random.default_rng(seed + 15)

    # ------------------------------------------------------------------
    def _posterior(self, input_ids: np.ndarray) -> tuple[Tensor, Tensor]:
        user = F.getitem(self.encode_states(input_ids), (slice(None), -1))
        mu = self.mu_head(user)
        logvar = F.clip(self.logvar_head(user), -8.0, 8.0)
        return mu, logvar

    def _sample(self, mu: Tensor, logvar: Tensor) -> Tensor:
        eps_data = self._eps_rng.standard_normal(mu.shape).astype(mu.dtype)
        # Static-graph replay: redraw the reparameterization noise into
        # the same array each step, consuming the generator exactly as a
        # dynamic run would.
        record_host(
            lambda: np.copyto(eps_data, self._eps_rng.standard_normal(eps_data.shape)),
            "contrastvae.eps",
        )
        std = F.exp(F.mul(logvar, 0.5))
        return F.add(mu, F.mul(std, Tensor(eps_data)))

    # ------------------------------------------------------------------
    def predict_scores(self, input_ids: np.ndarray, context: np.ndarray | None = None) -> np.ndarray:
        mu, _ = self._posterior(input_ids)  # mean latent at inference
        if context is not None:
            return mu.data @ context
        table = F.transpose(self._score_table(), (1, 0))
        return F.matmul(mu, table).data

    def loss(self, batch: Batch) -> Tensor:
        mu, logvar = self._posterior(batch.input_ids)
        z1 = self._sample(mu, logvar)
        z2 = self._sample(mu, logvar)
        table = F.transpose(self._score_table(), (1, 0))
        rec = F.cross_entropy(F.matmul(z1, table), batch.targets)
        # KL(N(mu, sigma) || N(0, I)) = -0.5 * sum(1 + logvar - mu^2 - e^logvar)
        kl_terms = F.sub(
            F.add(F.mul(mu, mu), F.exp(logvar)),
            F.add(logvar, 1.0),
        )
        kl = F.mul(F.mean(F.sum(kl_terms, axis=1)), 0.5)
        total = F.add(rec, F.mul(kl, self.kl_weight))
        if self.cl_weight > 0.0:
            cl = info_nce_loss(z1, z2, temperature=self.cl_temperature)
            total = F.add(total, F.mul(cl, self.cl_weight))
        return total
