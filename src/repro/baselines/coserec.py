"""CoSeRec baseline (Liu et al. 2021).

CL4SRec's pipeline with *robust* augmentations: instead of destructive
crop/mask/reorder, items are substituted by or have inserted next to
them their most co-occurrence-correlated neighbours, producing harder
but semantically consistent positive views.

Like CL4SRec, every encode runs on the fused attention fast path
(:mod:`repro.nn.attention`), and with ``batched_views`` (the default)
the step's three encodes stack into one ``(3B, N, d)`` forward with
per-view dropout streams
(:meth:`~repro.core.encoder.SequentialEncoderBase.encode_views`); the
augmentation itself is index-level work outside the autograd graph.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.baselines.cl4srec import augmented_contrastive_loss
from repro.baselines.sasrec import SASRec
from repro.autograd.graph import record_host
from repro.data.augmentation import ItemCorrelation, insert_sequence, substitute_sequence
from repro.data.batching import Batch
from repro.data.dataset import SequenceDataset
from repro.data.preprocess import pad_or_truncate

__all__ = ["CoSeRec"]


class CoSeRec(SASRec):
    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 2,
        cl_weight: float = 0.1,
        cl_temperature: float = 1.0,
        aug_ratio: float = 0.3,
        embed_dropout: float = 0.3,
        hidden_dropout: float = 0.3,
        batched_views: bool = True,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            num_heads=num_heads,
            embed_dropout=embed_dropout,
            hidden_dropout=hidden_dropout,
            seed=seed,
            dtype=dtype,
        )
        self.cl_weight = cl_weight
        self.cl_temperature = cl_temperature
        self.aug_ratio = aug_ratio
        self.batched_views = batched_views
        self._aug_rng = np.random.default_rng(seed + 13)
        self._correlation: ItemCorrelation | None = None

    def prepare(self, dataset: SequenceDataset) -> "CoSeRec":
        """Fit the item co-occurrence statistics on the training split."""
        self._correlation = ItemCorrelation(dataset.train_sequences)
        return self

    # ------------------------------------------------------------------
    def _augment_row(self, row: np.ndarray) -> np.ndarray:
        items: List[int] = [i for i in row.tolist() if i != 0]
        if not items or self._correlation is None:
            return row
        if self._aug_rng.random() < 0.5:
            items = substitute_sequence(items, self.aug_ratio, self._correlation, self._aug_rng)
        else:
            items = insert_sequence(items, self.aug_ratio, self._correlation, self._aug_rng)
        return pad_or_truncate(items, self.max_len)

    def _augment_batch(self, input_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(input_ids)
        out = np.stack([self._augment_row(row) for row in ids])

        def refresh():
            # Static-graph replay: re-augment (fresh RNG draws) into the
            # same array the captured graph reads from.
            for i, row in enumerate(ids):
                out[i] = self._augment_row(row)

        record_host(refresh, "coserec.augment")
        return out

    def _user(self, input_ids: np.ndarray) -> Tensor:
        return F.getitem(self.encode_states(input_ids), (slice(None), -1))

    # ------------------------------------------------------------------
    def loss(self, batch: Batch) -> Tensor:
        return augmented_contrastive_loss(self, batch)
