"""DuoRec baseline (Qiu et al., WSDM 2022).

The paper's strongest baseline: a SASRec encoder regularized by
(a) unsupervised model-level contrast — the same sequence encoded twice
with different dropout masks — and (b) supervised contrast with another
training sequence sharing the same target item.  SLIME4Rec borrows this
exact contrastive recipe, so DuoRec differs from it only in the encoder
(self-attention vs slide filter mixer), which is what Table V isolates.

With ``batched_views`` (the default) the step's three encodes — main
pass, dropout view, same-target view — run as one stacked
``(3B, N, d)`` forward with per-view dropout streams
(:meth:`~repro.core.encoder.SequentialEncoderBase.encode_views`), all
on the fused attention fast path (:mod:`repro.nn.attention`); the many
dropout sites also make DuoRec the baseline that benefits most from
the fast dropout-mask flag
(:func:`repro.nn.workspace.set_fast_dropout_masks`).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.baselines.sasrec import SASRec
from repro.core.contrastive import info_nce_loss
from repro.data.batching import Batch

__all__ = ["DuoRec"]


class DuoRec(SASRec):
    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 2,
        cl_weight: float = 0.1,
        cl_temperature: float = 1.0,
        embed_dropout: float = 0.3,
        hidden_dropout: float = 0.3,
        noise_eps: float = 0.0,
        batched_views: bool = True,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            num_heads=num_heads,
            embed_dropout=embed_dropout,
            hidden_dropout=hidden_dropout,
            noise_eps=noise_eps,
            seed=seed,
            dtype=dtype,
        )
        self.cl_weight = cl_weight
        self.cl_temperature = cl_temperature
        self.batched_views = batched_views

    def _user(self, input_ids: np.ndarray) -> Tensor:
        return F.getitem(self.encode_states(input_ids), (slice(None), -1))

    def loss(self, batch: Batch) -> Tensor:
        if self.cl_weight <= 0.0 or batch.positive_ids is None:
            return self.recommendation_loss(batch.input_ids, batch.targets)
        if self.batched_views and self.noise_eps <= 0.0:
            # One stacked (3B, N, d) walk: main + dropout + same-target
            # views under per-view dropout streams (see encode_views).
            user, unsup, sup = self.encode_views(
                (batch.input_ids, batch.input_ids, batch.positive_ids)
            )
            rec = self.prediction_loss(user, batch.targets)
        else:
            rec = self.recommendation_loss(batch.input_ids, batch.targets)
            unsup = self._user(batch.input_ids)  # dropout view of the same input
            sup = self._user(batch.positive_ids)  # same-target sequence view
        cl = info_nce_loss(unsup, sup, temperature=self.cl_temperature)
        return F.add(rec, F.mul(cl, self.cl_weight))
