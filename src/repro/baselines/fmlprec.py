"""FMLP-Rec baseline (Zhou et al., WWW 2022).

All-MLP architecture whose filter block multiplies the *full* spectrum
by a learnable global filter — exactly SLIME4Rec's dynamic branch with
``alpha = 1`` (the paper notes this equivalence below Eq. 20), no
static branch and no contrastive objective.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.spectral import num_frequency_bins
from repro.autograd.tensor import Tensor
from repro.core.encoder import SequentialEncoderBase
from repro.core.filter_mixer import FilterMixerLayer
from repro.nn import ModuleList

__all__ = ["FMLPRec"]


class FMLPRec(SequentialEncoderBase):
    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_layers: int = 2,
        embed_dropout: float = 0.3,
        hidden_dropout: float = 0.3,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            embed_dropout=embed_dropout,
            seed=seed,
            dtype=dtype,
        )
        rng = np.random.default_rng(seed + 11)
        m = num_frequency_bins(max_len)
        full_band = np.ones(m, dtype=np.float64)
        self.layers = ModuleList(
            [
                FilterMixerLayer(
                    seq_len=max_len,
                    hidden_dim=hidden_dim,
                    dfs_mask=full_band,
                    sfs_mask=None,
                    gamma=0.0,
                    dropout=hidden_dropout,
                    rng=rng,
                    dtype=self.dtype,
                )
                for _ in range(num_layers)
            ]
        )

    def encode_states(self, input_ids: np.ndarray) -> Tensor:
        hidden = self.embed(input_ids)
        for layer in self.layers:
            hidden = layer(hidden)
        return hidden
