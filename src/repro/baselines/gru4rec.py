"""GRU4Rec baseline (Hidasi et al. 2016 / Jannach & Ludewig 2017)."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.core.encoder import SequentialEncoderBase
from repro.nn import GRU

__all__ = ["GRU4Rec"]


class GRU4Rec(SequentialEncoderBase):
    """Item embedding -> GRU -> final hidden state as user preference."""

    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        embed_dropout: float = 0.3,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            embed_dropout=embed_dropout,
            seed=seed,
            dtype=dtype,
        )
        self.gru = GRU(hidden_dim, hidden_dim, rng=np.random.default_rng(seed + 5), dtype=self.dtype)

    def encode_states(self, input_ids: np.ndarray) -> Tensor:
        return self.gru(self.embed(input_ids))
