"""Factory mapping Table II model names to constructors."""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.bert4rec import BERT4Rec
from repro.baselines.bprmf import BPRMF
from repro.baselines.caser import Caser
from repro.baselines.cl4srec import CL4SRec
from repro.baselines.contrastvae import ContrastVAE
from repro.baselines.coserec import CoSeRec
from repro.baselines.duorec import DuoRec
from repro.baselines.fmlprec import FMLPRec
from repro.baselines.gru4rec import GRU4Rec
from repro.baselines.s3rec import S3Rec
from repro.baselines.sasrec import SASRec
from repro.core.config import SlimeConfig
from repro.core.model import Slime4Rec
from repro.data.dataset import SequenceDataset

__all__ = ["BASELINE_NAMES", "build_baseline"]

#: Table II column order.
BASELINE_NAMES: List[str] = [
    "BPR-MF",
    "GRU4Rec",
    "Caser",
    "SASRec",
    "BERT4Rec",
    "FMLP-Rec",
    "CL4SRec",
    "ContrastVAE",
    "CoSeRec",
    "DuoRec",
    "SLIME4Rec",
]


def build_baseline(
    name: str,
    dataset: SequenceDataset,
    hidden_dim: int = 64,
    num_layers: int = 2,
    seed: int = 0,
    dtype=None,
    **overrides,
):
    """Construct a Table II model wired to ``dataset``'s geometry.

    ``overrides`` are forwarded to the model constructor (SLIME4Rec
    accepts SlimeConfig fields instead).  ``dtype`` selects the compute
    precision of every model uniformly (float32/float64); ``None``
    defers to :func:`repro.nn.init.get_default_dtype`.
    """
    common: Dict = dict(
        num_items=dataset.num_items,
        max_len=dataset.max_len,
        hidden_dim=hidden_dim,
        seed=seed,
        dtype=dtype,
    )
    if name == "BPR-MF":
        return BPRMF(**common, **overrides)
    if name == "GRU4Rec":
        return GRU4Rec(**common, **overrides)
    if name == "Caser":
        return Caser(**common, **overrides)
    if name == "SASRec":
        return SASRec(**common, num_layers=num_layers, **overrides)
    if name == "S3Rec":
        # Not part of Table II (the paper lists it as related work only)
        # but available through the registry for extension studies.
        return S3Rec(**common, num_layers=num_layers, **overrides)
    if name == "BERT4Rec":
        return BERT4Rec(**common, num_layers=num_layers, **overrides)
    if name == "FMLP-Rec":
        return FMLPRec(**common, num_layers=num_layers, **overrides)
    if name == "CL4SRec":
        return CL4SRec(**common, num_layers=num_layers, **overrides)
    if name == "ContrastVAE":
        return ContrastVAE(**common, num_layers=num_layers, **overrides)
    if name == "CoSeRec":
        return CoSeRec(**common, num_layers=num_layers, **overrides).prepare(dataset)
    if name == "DuoRec":
        return DuoRec(**common, num_layers=num_layers, **overrides)
    if name == "SLIME4Rec":
        config = SlimeConfig(
            num_items=dataset.num_items,
            max_len=dataset.max_len,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            seed=seed,
            dtype=dtype,
            **overrides,
        )
        return Slime4Rec(config)
    raise KeyError(f"unknown model '{name}'; choose from {BASELINE_NAMES}")
