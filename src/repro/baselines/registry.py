"""Factory mapping Table II model names to constructors."""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.bert4rec import BERT4Rec
from repro.baselines.bprmf import BPRMF
from repro.baselines.caser import Caser
from repro.baselines.cl4srec import CL4SRec
from repro.baselines.contrastvae import ContrastVAE
from repro.baselines.coserec import CoSeRec
from repro.baselines.duorec import DuoRec
from repro.baselines.fmlprec import FMLPRec
from repro.baselines.gru4rec import GRU4Rec
from repro.baselines.s3rec import S3Rec
from repro.baselines.sasrec import SASRec
from repro.core.config import SlimeConfig
from repro.core.model import Slime4Rec
from repro.data.dataset import SequenceDataset

__all__ = ["BASELINE_NAMES", "build_baseline"]

#: Prediction-loss knobs every :class:`SequentialEncoderBase` subclass
#: honors as plain attributes (SLIME4Rec additionally carries them as
#: ``SlimeConfig`` fields).  ``build_baseline`` extracts these from
#: ``overrides`` and applies them uniformly, so one switch turns on the
#: chunked or sampled-softmax training loss for any Table II model
#: whose objective runs through the shared ``prediction_loss`` head.
LOSS_KNOBS = ("ce_chunk_size", "train_num_negatives", "negative_sampling")

#: Models whose training loss bypasses ``prediction_loss`` entirely
#: (Cloze over positions, variational CE composition, pairwise BPR).
#: Passing a loss knob for these would be a silent no-op — the user
#: would believe sampled/chunked training is on while every step still
#: runs the bespoke objective — so ``build_baseline`` rejects it.
BESPOKE_LOSS_MODELS = frozenset({"BPR-MF", "BERT4Rec", "ContrastVAE"})

#: Table II column order.
BASELINE_NAMES: List[str] = [
    "BPR-MF",
    "GRU4Rec",
    "Caser",
    "SASRec",
    "BERT4Rec",
    "FMLP-Rec",
    "CL4SRec",
    "ContrastVAE",
    "CoSeRec",
    "DuoRec",
    "SLIME4Rec",
]


def build_baseline(
    name: str,
    dataset: SequenceDataset,
    hidden_dim: int = 64,
    num_layers: int = 2,
    seed: int = 0,
    dtype=None,
    **overrides,
):
    """Construct a Table II model wired to ``dataset``'s geometry.

    ``overrides`` are forwarded to the model constructor (SLIME4Rec
    accepts SlimeConfig fields instead).  ``dtype`` selects the compute
    precision of every model uniformly (float32/float64); ``None``
    defers to :func:`repro.nn.init.get_default_dtype`.  The shared
    prediction-loss knobs (``ce_chunk_size``, ``train_num_negatives``,
    ``negative_sampling`` — see :data:`LOSS_KNOBS`) are accepted for
    every model that trains through ``prediction_loss`` and applied as
    post-construction attributes, so e.g.
    ``build_baseline("SASRec", ds, train_num_negatives=256)`` trains
    SASRec with the sampled softmax; models with bespoke objectives
    (:data:`BESPOKE_LOSS_MODELS`) reject the knobs instead of silently
    ignoring them.
    """
    knobs: Dict = {k: overrides.pop(k) for k in LOSS_KNOBS if k in overrides}
    # The static-graph opt-in is plumbed like the loss knobs: a
    # SlimeConfig field for SLIME4Rec, a plain post-construction
    # attribute (declared on SequentialEncoderBase) for every baseline.
    static_graph = overrides.pop("static_graph", None)
    # Fail at build time, not at the first training step (mirrors the
    # SlimeConfig validation for the attribute-plumbed models).
    if knobs and name in BESPOKE_LOSS_MODELS:
        raise ValueError(
            f"{name} trains with a bespoke objective that bypasses "
            f"prediction_loss; the loss knobs {sorted(knobs)} would be a "
            f"silent no-op — remove them or pick a prediction_loss model"
        )
    if "negative_sampling" in knobs:
        from repro.data.negative_sampling import NegativeSampler

        if knobs["negative_sampling"] not in NegativeSampler.STRATEGIES:
            raise ValueError(
                f"negative_sampling must be one of {NegativeSampler.STRATEGIES}, "
                f"got {knobs['negative_sampling']!r}"
            )
    for knob in ("ce_chunk_size", "train_num_negatives"):
        value = knobs.get(knob)
        if value is not None and value < 1:
            raise ValueError(f"{knob} must be >= 1 or None, got {value}")
    common: Dict = dict(
        num_items=dataset.num_items,
        max_len=dataset.max_len,
        hidden_dim=hidden_dim,
        seed=seed,
        dtype=dtype,
    )
    if name == "SLIME4Rec":
        config = SlimeConfig(
            num_items=dataset.num_items,
            max_len=dataset.max_len,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            seed=seed,
            dtype=dtype,
            **overrides,
            **knobs,
            **({} if static_graph is None else {"static_graph": bool(static_graph)}),
        )
        return Slime4Rec(config)
    if name == "BPR-MF":
        model = BPRMF(**common, **overrides)
    elif name == "GRU4Rec":
        model = GRU4Rec(**common, **overrides)
    elif name == "Caser":
        model = Caser(**common, **overrides)
    elif name == "SASRec":
        model = SASRec(**common, num_layers=num_layers, **overrides)
    elif name == "S3Rec":
        # Not part of Table II (the paper lists it as related work only)
        # but available through the registry for extension studies.
        model = S3Rec(**common, num_layers=num_layers, **overrides)
    elif name == "BERT4Rec":
        model = BERT4Rec(**common, num_layers=num_layers, **overrides)
    elif name == "FMLP-Rec":
        model = FMLPRec(**common, num_layers=num_layers, **overrides)
    elif name == "CL4SRec":
        model = CL4SRec(**common, num_layers=num_layers, **overrides)
    elif name == "ContrastVAE":
        model = ContrastVAE(**common, num_layers=num_layers, **overrides)
    elif name == "CoSeRec":
        model = CoSeRec(**common, num_layers=num_layers, **overrides).prepare(dataset)
    elif name == "DuoRec":
        model = DuoRec(**common, num_layers=num_layers, **overrides)
    else:
        raise KeyError(f"unknown model '{name}'; choose from {BASELINE_NAMES}")
    for key, value in knobs.items():
        setattr(model, key, value)
    if static_graph is not None:
        model.static_graph = bool(static_graph)
    return model
