"""S3Rec baseline (Zhou et al., CIKM 2020), simplified.

Self-supervised pretraining for sequential recommendation.  The
original uses four mutual-information objectives over item attributes;
without attribute data the practical core is the *masked item
prediction* pretraining stage followed by next-item fine-tuning on the
same bidirectional-turned-causal encoder.  This implementation
pretrains with a Cloze objective for a fixed number of epochs, then
fine-tunes with the shared next-item cross-entropy — enough to exercise
the pretrain-then-finetune training scheme the paper's related work
discusses.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.graph import GraphCaptureError, is_capturing
from repro.autograd.tensor import Tensor
from repro.baselines.sasrec import SASRec
from repro.data.batching import Batch

__all__ = ["S3Rec"]

_IGNORE = -100


class S3Rec(SASRec):
    """SASRec encoder with a masked-item pretraining phase.

    Call :meth:`pretrain_epoch` over batches before normal training,
    or simply train: the first ``pretrain_epochs`` worth of ``loss``
    calls automatically use the Cloze objective (tracked by a step
    counter sized from the dataset), then switch to next-item CE.
    """

    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 2,
        mask_prob: float = 0.2,
        pretrain_steps: int = 0,
        embed_dropout: float = 0.3,
        hidden_dropout: float = 0.3,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            num_heads=num_heads,
            embed_dropout=embed_dropout,
            hidden_dropout=hidden_dropout,
            seed=seed,
            dtype=dtype,
        )
        self.mask_prob = mask_prob
        self.pretrain_steps = pretrain_steps
        self._steps_done = 0
        self._mask_rng = np.random.default_rng(seed + 23)

    def cloze_loss(self, batch: Batch) -> Tensor:
        """Masked-item objective over the batch sequences.

        Uses item id 0 (padding) as the blank token so no extra
        embedding row is needed; masked positions are never padding.
        """
        inputs = np.asarray(batch.input_ids, dtype=np.int64).copy()
        labels = np.full_like(inputs, _IGNORE)
        real = inputs != 0
        masked = real & (self._mask_rng.random(inputs.shape) < self.mask_prob)
        # Guarantee at least one masked position per row with history.
        for row in range(inputs.shape[0]):
            if real[row].any() and not masked[row].any():
                last = np.where(real[row])[0][-1]
                masked[row, last] = True
        labels[masked] = inputs[masked]
        corrupted = np.where(masked, 0, inputs)
        states = self.encode_states(corrupted)
        table = F.transpose(self._score_table(), (1, 0))
        logits = F.matmul(states, table)
        return F.cross_entropy(logits, labels, ignore_index=_IGNORE)

    def loss(self, batch: Batch) -> Tensor:
        if is_capturing():
            raise GraphCaptureError(
                "S3Rec.loss is not replay-safe: the pretrain->finetune switch "
                "changes the graph topology at a step count the tape executor "
                "cannot observe; train S3Rec with static_graph=False"
            )
        self._steps_done += 1
        if self._steps_done <= self.pretrain_steps:
            return self.cloze_loss(batch)
        return self.recommendation_loss(batch.input_ids, batch.targets)
