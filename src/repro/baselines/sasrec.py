"""SASRec baseline (Kang & McAuley, ICDM 2018).

Causal multi-head self-attention encoder; the strongest pure
time-domain baseline in the paper.  Trained under the unified
cross-entropy-on-next-item protocol so all Table-II models share the
same objective shape.

Runs on the fused attention fast path by default (single Q/K/V GEMM,
cached block masks — :mod:`repro.nn.attention`); this model is one of
the two step-time configs tracked in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.graph import record_host
from repro.autograd.tensor import Tensor
from repro.baselines.transformer import TransformerEncoder
from repro.core.encoder import SequentialEncoderBase

__all__ = ["SASRec"]


class SASRec(SequentialEncoderBase):
    def __init__(
        self,
        num_items: int,
        max_len: int = 50,
        hidden_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 2,
        embed_dropout: float = 0.3,
        hidden_dropout: float = 0.3,
        noise_eps: float = 0.0,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__(
            num_items=num_items,
            max_len=max_len,
            hidden_dim=hidden_dim,
            embed_dropout=embed_dropout,
            noise_eps=noise_eps,
            seed=seed,
            dtype=dtype,
        )
        self.encoder = TransformerEncoder(
            hidden_dim,
            num_layers,
            num_heads=num_heads,
            dropout=hidden_dropout,
            causal=True,
            rng=np.random.default_rng(seed + 8),
            dtype=self.dtype,
        )

    def encode_states(self, input_ids: np.ndarray) -> Tensor:
        ids = np.asarray(input_ids)
        padding = ids == 0
        # Static-graph replay: ``ids`` aliases the executor's persistent
        # input buffer, so the padding mask is refreshed in place for the
        # downstream block-mask host entry.
        record_host(lambda: np.equal(ids, 0, out=padding), "sasrec.padding")
        hidden = self.embed(input_ids)
        for block in self.encoder.blocks:
            hidden = block(self.inject_noise(hidden), key_padding_mask=padding)
        return hidden
