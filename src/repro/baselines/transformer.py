"""Transformer encoder blocks shared by the attention-based baselines.

Shapes: ``(B, N, dim)`` in, ``(B, N, dim)`` out, post-norm residual
wiring (the SASRec/BERT4Rec convention).  Each block's attention runs
on the fused workspace fast path by default — one ``(dim, 3*dim)``
Q/K/V GEMM, score scale folded into Q, cached block masks, fused
output projection (see :mod:`repro.nn.attention`) — and its dropout
sites draw masks through the shared per-step workspace.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core.encoder import PointwiseFeedForward
from repro.nn import Dropout, LayerNorm, Module, ModuleList, MultiHeadSelfAttention

__all__ = ["TransformerBlock", "TransformerEncoder"]


class TransformerBlock(Module):
    """Post-norm transformer block (the SASRec/BERT4Rec convention)."""

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        dropout: float = 0.3,
        causal: bool = True,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.attention = MultiHeadSelfAttention(
            dim, num_heads, dropout=dropout, causal=causal, rng=rng, dtype=dtype
        )
        self.attn_norm = LayerNorm(dim, dtype=dtype)
        self.attn_dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32)))
        self.ffn = PointwiseFeedForward(dim, inner_dim=4 * dim, rng=rng, dtype=dtype)
        self.ffn_norm = LayerNorm(dim, dtype=dtype)
        self.ffn_dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32)))

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        attended = self.attention(x, key_padding_mask=key_padding_mask)
        x = self.attn_norm(F.add(x, self.attn_dropout(attended)))
        return self.ffn_norm(F.add(x, self.ffn_dropout(self.ffn(x))))


class TransformerEncoder(Module):
    """A stack of :class:`TransformerBlock` layers."""

    def __init__(
        self,
        dim: int,
        num_layers: int,
        num_heads: int = 2,
        dropout: float = 0.3,
        causal: bool = True,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.blocks = ModuleList(
            [
                TransformerBlock(
                    dim, num_heads=num_heads, dropout=dropout, causal=causal, rng=rng, dtype=dtype
                )
                for _ in range(num_layers)
            ]
        )

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        for block in self.blocks:
            x = block(x, key_padding_mask=key_padding_mask)
        return x
