"""SLIME4Rec: the paper's primary contribution.

Public surface:

- :class:`~repro.core.config.SlimeConfig` — every hyper-parameter of the
  model (Table-IV slide modes, alpha, gamma, lambda, ...).
- :class:`~repro.core.model.Slime4Rec` — the contrastive enhanced slide
  filter mixer model.
- :mod:`~repro.core.filters` — frequency ramp structure windows (DFS and
  SFS) as pure functions, independently testable.
- :class:`~repro.core.encoder.SequentialEncoderBase` — shared embedding
  + prediction plumbing reused by all baselines.
"""

from repro.core.config import SlimeConfig, SlideMode
from repro.core.filters import (
    coverage_report,
    dfs_windows,
    sfs_windows,
    window_mask,
    ramp_masks,
)
from repro.core.encoder import SequentialEncoderBase, PointwiseFeedForward
from repro.core.contrastive import info_nce_loss
from repro.core.filter_mixer import FilterMixerLayer
from repro.core.model import Slime4Rec

__all__ = [
    "SlimeConfig",
    "SlideMode",
    "coverage_report",
    "dfs_windows",
    "sfs_windows",
    "window_mask",
    "ramp_masks",
    "SequentialEncoderBase",
    "PointwiseFeedForward",
    "info_nce_loss",
    "FilterMixerLayer",
    "Slime4Rec",
]
