"""Configuration for SLIME4Rec."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["SlideMode", "SlimeConfig"]


class SlideMode(enum.Enum):
    """The four frequency-ramp slide modes of Table IV.

    The value is a pair of directions ``(dfs, sfs)``; ``"high_to_low"``
    is the paper's ``<-`` arrow (window starts at the high-frequency end
    in layer 0 and slides towards low frequencies with depth).
    """

    MODE_1 = ("high_to_low", "low_to_high")
    MODE_2 = ("low_to_high", "high_to_low")
    MODE_3 = ("low_to_high", "low_to_high")
    MODE_4 = ("high_to_low", "high_to_low")  # paper default / best

    @property
    def dfs_direction(self) -> str:
        return self.value[0]

    @property
    def sfs_direction(self) -> str:
        return self.value[1]


@dataclass
class SlimeConfig:
    """Hyper-parameters of SLIME4Rec (paper Section IV-D defaults).

    Attributes
    ----------
    num_items:
        Number of real items; the embedding table has ``num_items + 1``
        rows (id 0 is padding).
    max_len:
        Input sequence length ``N`` (paper searches {25, 50, 75, 100}).
    hidden_dim:
        Embedding / model width ``d`` (paper default 64).
    num_layers:
        Number of filter mixer blocks ``L`` (paper searches {2, 4, 8}).
    alpha:
        Dynamic filter size ratio ``S_D / M`` in [0, 1] (Eq. 19).
    gamma:
        Mixing weight of the static branch (Eq. 26).
    slide_mode:
        Which of the four Table-IV ramp directions to use.
    use_dfs / use_sfs:
        Ablation switches (Figure 3's w/oD and w/oS variants).
    embed_dropout / hidden_dropout:
        Dropout rates (paper searches {0.1 .. 0.5}).
    cl_weight:
        Lambda, strength of the contrastive regularizer (Eq. 36);
        0 disables contrastive learning (the w/oC variant).
    cl_temperature:
        Softmax temperature of the InfoNCE objective.
    batched_views:
        When True (the default) the three contrastive encodes of each
        training step (main pass, dropout view, same-target view) run
        as **one** stacked ``(3B, N, d)`` forward with per-view dropout
        streams — the same stochastic model as three separate passes
        (identical masks per seed, float64 losses equal to
        reassociation tolerance) at ~1/3 the python/op count.
        ``False`` keeps the reference three-pass path for equivalence
        testing; runs with ``noise_eps > 0`` fall back to it
        automatically (the noise scale couples the views).
    ce_chunk_size:
        Class-chunk width for the prediction cross-entropy.  ``None``
        keeps the dense ``(B, V+1)`` logits GEMM+softmax; a positive
        value streams the loss over the item table in chunks of this
        many rows without materializing the full logits matrix
        (production-size catalogs).
    train_num_negatives:
        Sampled-softmax training.  ``None`` (default) trains against
        the full catalog (Eq. 32, possibly chunked — see above); a
        positive ``K`` scores each row against its positive plus ``K``
        sampled negatives with the logQ correction, bounding the
        prediction-layer *compute* for huge catalogs.  Evaluation
        always ranks the full catalog regardless.
    negative_sampling:
        Proposal distribution for ``train_num_negatives``:
        ``"uniform"`` (default) or ``"log_uniform"`` (Zipfian,
        popularity-weighted when item ids are popularity-sorted).
    static_graph:
        Opt-in to the static-graph tape executor (off by default): the
        trainer captures one training step into a replayable tape and
        replays it as a flat loop of kernel calls on subsequent
        same-shape batches, skipping per-step autograd graph
        construction.  Replays are bitwise-identical to the dynamic
        engine in float64; divergent geometry/topology (ragged final
        batch, ``noise_eps > 0``, changed dropout ambient state) falls
        back to the dynamic path with a logged reason.  See
        ``docs/ARCHITECTURE.md``.
    noise_eps:
        When positive, uniform noise of this relative magnitude is
        injected into every layer input (the Figure 6 robustness knob).
    seed:
        Parameter-init and dropout seed.
    dtype:
        Compute dtype of the whole model — ``"float32"`` or
        ``"float64"`` (or the numpy dtype objects).  ``None`` defers to
        :func:`repro.nn.init.get_default_dtype` (float64 unless
        reconfigured), which preserves the seed's float64 numerics
        bit-for-bit.  ``"float32"`` halves parameter/activation memory
        bandwidth and is the supported fast path: every op in the stack
        keeps float32 inputs in float32 (complex64 spectra in the
        filter mixer), and the evaluator ranks in the model dtype.
        Stored normalized to the canonical dtype name string so configs
        stay JSON-serializable.
    """

    num_items: int
    max_len: int = 50
    hidden_dim: int = 64
    num_layers: int = 2
    alpha: float = 0.4
    gamma: float = 0.5
    slide_mode: SlideMode = SlideMode.MODE_4
    use_dfs: bool = True
    use_sfs: bool = True
    embed_dropout: float = 0.3
    hidden_dropout: float = 0.3
    cl_weight: float = 0.1
    cl_temperature: float = 1.0
    batched_views: bool = True
    ce_chunk_size: int | None = None
    train_num_negatives: int | None = None
    negative_sampling: str = "uniform"
    static_graph: bool = False
    noise_eps: float = 0.0
    seed: int = 0
    dtype: str | None = None

    def __post_init__(self) -> None:
        if self.dtype is not None:
            from repro.nn.init import resolve_dtype

            try:
                self.dtype = resolve_dtype(self.dtype).name
            except TypeError as exc:  # np.dtype() on unrecognized input
                raise ValueError(
                    f"dtype must be float32 or float64, got {self.dtype!r}"
                ) from exc
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.ce_chunk_size is not None and self.ce_chunk_size < 1:
            raise ValueError(
                f"ce_chunk_size must be >= 1 or None, got {self.ce_chunk_size}"
            )
        if self.train_num_negatives is not None and self.train_num_negatives < 1:
            raise ValueError(
                f"train_num_negatives must be >= 1 or None, "
                f"got {self.train_num_negatives}"
            )
        from repro.data.negative_sampling import NegativeSampler

        if self.negative_sampling not in NegativeSampler.STRATEGIES:
            raise ValueError(
                f"negative_sampling must be one of {NegativeSampler.STRATEGIES}, "
                f"got {self.negative_sampling!r}"
            )
        if not (self.use_dfs or self.use_sfs):
            raise ValueError("at least one of use_dfs/use_sfs must be enabled")
        if isinstance(self.slide_mode, int):
            self.slide_mode = SlideMode[f"MODE_{self.slide_mode}"]
