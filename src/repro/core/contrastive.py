"""Contrastive objectives (Eqs. 33-35).

The paper regularizes the recommendation loss with a symmetric InfoNCE
between an *unsupervised* view (the same sequence passed through the
network twice, differing only through dropout) and a *supervised* view
(another training sequence with the same target item, following
DuoRec).  Negatives are all other augmented samples in the batch.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor

__all__ = ["info_nce_loss"]


def info_nce_loss(view_a: Tensor, view_b: Tensor, temperature: float = 1.0) -> Tensor:
    """Symmetric NT-Xent loss between two aligned batches of vectors.

    Row ``i`` of ``view_a`` and row ``i`` of ``view_b`` are positives;
    every other row in the concatenated ``2B`` batch is a negative.
    Computing the loss over the concatenation in both directions covers
    both terms of Eq. 33.

    Parameters
    ----------
    view_a, view_b:
        Tensors of shape ``(B, d)``.
    temperature:
        Softmax temperature; similarities are cosine (L2-normalized).
    """
    if view_a.shape != view_b.shape:
        raise ValueError(f"view shapes differ: {view_a.shape} vs {view_b.shape}")
    batch = view_a.shape[0]
    if batch < 2:
        # A single sample has no in-batch negatives; the loss is zero by
        # convention (keeps tiny tail batches harmless).
        return F.mul(F.sum(view_a), 0.0)

    z = F.concat([view_a, view_b], axis=0)  # (2B, d)
    z = F.l2_normalize(z, axis=-1)
    sim = F.matmul(z, F.transpose(z, (1, 0)))  # (2B, 2B) cosine
    sim = F.mul(sim, 1.0 / temperature)
    # A sample is never its own negative.
    sim = F.masked_fill(sim, np.eye(2 * batch, dtype=bool), -1e9)
    targets = np.concatenate([np.arange(batch, 2 * batch), np.arange(0, batch)])
    return F.cross_entropy(sim, targets)
