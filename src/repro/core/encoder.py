"""Shared encoder plumbing for all sequential recommenders.

Every model in this repo (SLIME4Rec and the baselines) shares the same
outer structure from the paper's Figure 2:

- an **embedding layer**: item embedding + learnable positional
  embedding, LayerNorm and dropout (Eqs. 9-10);
- a model-specific stack of encoder blocks;
- a **prediction layer**: dot product between the last hidden state and
  the item embedding table (Eq. 31), trained with cross-entropy
  (Eq. 32).

:class:`SequentialEncoderBase` implements the shared pieces; subclasses
override :meth:`encode_states`.

Hot-path notes: the embedding lookup's backward and every dropout site
here run through the shared per-step workspace
(:mod:`repro.nn.workspace`), and the ``states[:, -1]`` user-vector
slice takes the basic-index gradient fast path — so the shared outer
structure stays cheap while the per-model encoders (fused attention,
fused spectral mixing) do the heavy lifting.  Evaluation scoring uses
:meth:`SequentialEncoderBase.score_context` to materialize the
transposed item table once per pass.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.graph import GraphCaptureError, is_capturing, record_host
from repro.autograd.tensor import Tensor, no_grad
from repro.data.negative_sampling import NegativeSampler
from repro.nn import Dropout, Embedding, GELU, LayerNorm, Linear, Module
from repro.nn import init as nn_init
from repro.nn.workspace import dropout_views

__all__ = ["SequentialEncoderBase", "PointwiseFeedForward"]


class PointwiseFeedForward(Module):
    """The paper's FFN (Eq. 29): ``GELU(x W1 + b1) W2 + b2``.

    The caller applies Eq. 30's densely-residual LayerNorm; this module
    is just the two-layer MLP with GELU.
    """

    def __init__(
        self,
        dim: int,
        inner_dim: int | None = None,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        inner_dim = inner_dim or dim
        self.fc1 = Linear(dim, inner_dim, rng=rng, dtype=dtype)
        self.act = GELU()
        self.fc2 = Linear(inner_dim, dim, rng=rng, dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.act(self.fc1(x)))


class SequentialEncoderBase(Module):
    """Embedding layer + prediction layer shared by all models.

    Parameters
    ----------
    num_items:
        Real item count; embedding table gets ``num_items + 1 + extra_tokens`` rows.
    max_len:
        Sequence length ``N``.
    hidden_dim:
        Width ``d``.
    embed_dropout:
        Dropout applied after the positional sum (Eq. 10).
    extra_tokens:
        Additional special tokens after the item range (BERT4Rec's
        ``[mask]`` token lives there).
    noise_eps:
        When > 0, uniform noise of this relative magnitude is added to
        every layer input via :meth:`inject_noise` (Figure 6 protocol).
    dtype:
        Compute dtype for parameters and activations (float32/float64);
        ``None`` falls back to :func:`repro.nn.init.get_default_dtype`.
        The resolved dtype is exposed as ``self.dtype`` so subclasses
        can type their own submodules consistently.
    """

    #: Opt-in to the static-graph tape executor: when True the trainer
    #: captures one training step into a :class:`repro.autograd.graph.Tape`
    #: and replays it on subsequent same-shape batches instead of
    #: rebuilding the autograd graph (see ``docs/ARCHITECTURE.md``).
    #: Off by default; the dynamic engine remains the reference.
    static_graph: bool = False

    def __init__(
        self,
        num_items: int,
        max_len: int,
        hidden_dim: int,
        embed_dropout: float = 0.3,
        extra_tokens: int = 0,
        noise_eps: float = 0.0,
        seed: int = 0,
        dtype=None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dtype = nn_init.resolve_dtype(dtype)
        self.num_items = num_items
        self.max_len = max_len
        self.hidden_dim = hidden_dim
        self.noise_eps = noise_eps
        self.dtype = dtype
        #: Class-chunk width for the prediction-layer cross-entropy.
        #: ``None`` keeps the dense GEMM+softmax; a positive value makes
        #: :meth:`prediction_loss` stream over the ``V+1`` item table in
        #: chunks of this many rows (see
        #: :func:`repro.autograd.functional.linear_cross_entropy`), the
        #: memory-bounded path for production-size catalogs.
        self.ce_chunk_size: int | None = None
        #: Sampled-softmax training: when set to a positive ``K``,
        #: :meth:`prediction_loss` scores each row against its positive
        #: plus ``K`` sampled negatives
        #: (:func:`repro.autograd.functional.sampled_softmax_loss`)
        #: instead of the full ``V+1``-way softmax — the compute-bounded
        #: path for huge catalogs.  ``negative_sampling`` picks the
        #: proposal distribution (``"uniform"`` / ``"log_uniform"``);
        #: the logQ correction is always applied.  Evaluation is
        #: unaffected (it ranks the full catalog either way).
        self.train_num_negatives: int | None = None
        self.negative_sampling: str = "uniform"
        self._train_sampler: NegativeSampler | None = None
        self._train_sampler_seed = seed + 20011
        self._noise_rng = np.random.default_rng(seed + 104729)
        self.item_embedding = Embedding(
            num_items + 1 + extra_tokens, hidden_dim, padding_idx=0, rng=rng, dtype=dtype
        )
        self.position_embedding = Embedding(max_len, hidden_dim, rng=rng, dtype=dtype)
        self.embed_norm = LayerNorm(hidden_dim, dtype=dtype)
        self.embed_dropout = Dropout(embed_dropout, rng=np.random.default_rng(seed + 1))

    # ------------------------------------------------------------------
    def embed(self, input_ids: np.ndarray) -> Tensor:
        """Eqs. 9-10: lookup + positions + LayerNorm + dropout."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        batch, length = input_ids.shape
        if length != self.max_len:
            raise ValueError(f"expected sequences of length {self.max_len}, got {length}")
        items = self.item_embedding(input_ids)
        positions = self.position_embedding(np.arange(length))
        summed = F.add(items, positions)
        return self.embed_dropout(self.embed_norm(summed))

    def inject_noise(self, x: Tensor) -> Tensor:
        """Add uniform noise scaled by the representation magnitude.

        Implements the Figure 6 robustness protocol: noise
        ``eps * U(-1, 1) * std(x)`` added to the layer input.  A no-op
        when ``noise_eps`` is zero.
        """
        if self.noise_eps <= 0.0:
            return x
        if is_capturing():
            raise GraphCaptureError(
                "inject_noise is not replay-safe: the Figure-6 noise protocol "
                "scales by the live batch statistics (std of the layer input), "
                "which a tape replay cannot reproduce without rebuilding the "
                "graph; run noise-robustness sweeps with static_graph=False"
            )
        scale = float(x.data.std()) * self.noise_eps
        noise = self._noise_rng.uniform(-scale, scale, size=x.shape).astype(x.dtype)
        return F.add(x, Tensor(noise))

    # ------------------------------------------------------------------
    def encode_states(self, input_ids: np.ndarray) -> Tensor:
        """Return hidden states ``(B, N, d)``; subclasses implement."""
        raise NotImplementedError

    def user_representation(self, input_ids: np.ndarray) -> Tensor:
        """Last hidden state ``h_t^L`` as the user vector (Section III-D)."""
        states = self.encode_states(input_ids)
        return F.getitem(states, (slice(None), -1))

    def encode_views(self, view_inputs) -> tuple:
        """Encode several same-shape input batches in one stacked pass.

        The contrastive objectives encode ``V`` views of each training
        batch per step (main pass, dropout view, same-target or
        augmented views).  This helper concatenates the ``(B, N)``
        view inputs into one ``(V*B, N)`` batch, runs a **single**
        :meth:`encode_states` graph walk over it, and returns one
        ``(B, d)`` last-state user tensor per view — cutting the
        python/op count of the dominant training cost ~``V``-fold while
        fattening every GEMM and FFT.

        Inside the pass every dropout site draws its masks **per
        view** (:func:`repro.nn.workspace.dropout_views`), consuming
        each generator exactly like ``V`` separate passes would, so
        the stacked encode is the same stochastic model as the
        sequential one: per-view masks identical, float64 losses equal
        to the unbatched path to reassociation tolerance.

        Not valid under the Figure-6 noise protocol: ``inject_noise``
        scales by the *whole-batch* std, which would couple the views;
        callers gate on ``noise_eps <= 0`` and fall back to separate
        passes (see ``Slime4Rec.loss``).
        """
        arrays = [np.asarray(v) for v in view_inputs]
        if len(arrays) < 2:
            raise ValueError("encode_views needs at least two views")
        if any(arr.shape != arrays[0].shape for arr in arrays[1:]):
            raise ValueError(
                f"all views must share one shape, got {[a.shape for a in arrays]}"
            )
        batch = arrays[0].shape[0]
        stacked = np.concatenate(arrays, axis=0)
        # Static-graph replay: the view arrays alias the executor's
        # persistent input buffers (refreshed in place per batch), so
        # the stacked batch is re-concatenated into the same array
        # object the captured encode reads from.
        record_host(
            lambda: np.concatenate(arrays, axis=0, out=stacked), "encode_views.stack"
        )
        with dropout_views(len(arrays)):
            states = self.encode_states(stacked)
        user = F.getitem(states, (slice(None), -1))  # (V*B, d)
        return tuple(
            F.getitem(user, slice(i * batch, (i + 1) * batch))
            for i in range(len(arrays))
        )

    def logits(self, input_ids: np.ndarray) -> Tensor:
        """Scores over the full vocabulary: ``h @ M_V^T`` (Eq. 31)."""
        user = self.user_representation(input_ids)
        table = F.transpose(self._score_table(), (1, 0))
        return F.matmul(user, table)

    def _score_table(self) -> Tensor:
        """Embedding rows used for scoring (padding + real items only)."""
        weight = self.item_embedding.weight
        if weight.shape[0] == self.num_items + 1:
            return weight
        return F.getitem(weight, slice(0, self.num_items + 1))

    def score_context(self) -> np.ndarray:
        """Precomputed scoring state shared by one evaluation pass.

        Returns the transposed item table ``(d, V+1)`` as a contiguous
        array so the evaluator materializes it once per pass instead of
        re-deriving it (slice + transpose + graph wrapping) per batch.
        The context snapshots current weights; recompute it after any
        parameter update.
        """
        with no_grad():
            table = self._score_table().data
        return np.ascontiguousarray(table.T)

    def predict_scores(self, input_ids: np.ndarray, context: np.ndarray | None = None) -> np.ndarray:
        """Numpy scores for evaluation (no graph).

        ``context`` is an optional :meth:`score_context` result; when
        given, scoring is a single GEMM against the cached table.

        The whole scoring pass runs under :func:`no_grad` regardless of
        the caller's grad mode: evaluation only consumes ``.data``, so
        building (and immediately garbage-collecting) an autograd graph
        per request was pure bookkeeping overhead — every intermediate
        tensor allocated a node, parents tuple and backward closure.
        """
        with no_grad():
            if context is not None:
                return self.user_representation(input_ids).data @ context
            return self.logits(input_ids).data

    # ------------------------------------------------------------------
    # Inference-state hooks (the serving path, repro.serving)
    # ------------------------------------------------------------------
    def inference_version(self) -> int:
        """Staleness token for inference caches derived from parameters.

        Any cached scoring state (a :meth:`score_context` table, a
        serving-side half-precision item table, a per-user encoded
        vector) is valid only while this token is unchanged.  It is the
        process-global parameter-mutation epoch
        (:func:`repro.autograd.tensor.parameter_version`, bumped by
        optimizer steps, ``load_state_dict`` and ``Module.to``), so it
        can tick without *this* model having changed — a spurious
        rebuild, never a stale serve.  Mutating parameter ``.data``
        buffers by hand bypasses the counter; call
        :func:`repro.autograd.tensor.bump_parameter_version` after
        doing that.
        """
        from repro.autograd.tensor import parameter_version

        return parameter_version()

    def encode_users(
        self, input_ids: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Encode ``(B, N)`` history windows into ``(B, d)`` user vectors.

        The serving micro-batch entry point: one stacked
        :meth:`encode_states` graph walk for the whole batch (the same
        batch-axis stacking :meth:`encode_views` uses for training
        views), run entirely under :func:`no_grad` so no autograd graph
        is built.  Returns a plain numpy array in the model dtype; a
        single ``(N,)`` window is accepted and returns ``(1, d)``.

        Call with the model in eval mode — dropout must be off for the
        encoding to be a deterministic function of the window, which is
        what makes per-user caching of the result sound.  ``batch_size``
        optionally chunks very large batches to bound peak activation
        memory; results are row-identical to the unchunked call only up
        to BLAS/FFT batch-shape reassociation (bitwise in practice for
        float64, ~1e-6 relative for float32).
        """
        input_ids = np.asarray(input_ids, dtype=np.int64)
        if input_ids.ndim == 1:
            input_ids = input_ids[None, :]
        with no_grad():
            if batch_size is None or input_ids.shape[0] <= batch_size:
                return self.user_representation(input_ids).data
            chunks = [
                self.user_representation(input_ids[start : start + batch_size]).data
                for start in range(0, input_ids.shape[0], batch_size)
            ]
            return np.concatenate(chunks, axis=0)

    def negative_sampler(self) -> NegativeSampler:
        """The model's shared training :class:`NegativeSampler` (lazy).

        Built on first use from :attr:`negative_sampling` and the model
        seed; rebuilt if the strategy attribute changes between calls.
        """
        if (
            self._train_sampler is None
            or self._train_sampler.strategy != self.negative_sampling
        ):
            self._train_sampler = NegativeSampler(
                self.num_items,
                strategy=self.negative_sampling,
                seed=self._train_sampler_seed,
            )
        return self._train_sampler

    def prediction_loss(self, user: Tensor, targets: np.ndarray) -> Tensor:
        """Eq. 31-32 from precomputed user vectors: score table GEMM + CE.

        Honors the training-loss knobs, in precedence order:

        - :attr:`train_num_negatives` — sampled softmax over the
          positive plus ``K`` drawn negatives
          (:func:`repro.autograd.functional.sampled_softmax_loss`),
          bounding *compute* for huge catalogs;
        - :attr:`ce_chunk_size` — full softmax streamed over the item
          table in row chunks
          (:func:`repro.autograd.functional.linear_cross_entropy`),
          bounding *memory* without changing the objective;
        - neither — the dense ``(B, V+1)`` GEMM+softmax reference.
        """
        if self.train_num_negatives:
            return F.sampled_softmax_loss(
                user,
                self._score_table(),
                targets,
                num_negatives=self.train_num_negatives,
                sampler=self.negative_sampler(),
            )
        if self.ce_chunk_size:
            return F.linear_cross_entropy(
                user, self._score_table(), targets, chunk_size=self.ce_chunk_size
            )
        table = F.transpose(self._score_table(), (1, 0))
        return F.cross_entropy(F.matmul(user, table), targets)

    def recommendation_loss(self, input_ids: np.ndarray, targets: np.ndarray) -> Tensor:
        """Cross-entropy over the full softmax (Eq. 32)."""
        return self.prediction_loss(self.user_representation(input_ids), targets)

    # Default training objective; contrastive models override.
    def loss(self, batch) -> Tensor:
        return self.recommendation_loss(batch.input_ids, batch.targets)
