"""Filter mixer block (Section III-B): DFS + SFS + FFN.

Each block:

1. FFTs the input along the sequence axis (Eq. 12),
2. multiplies the spectrum by a learnable *dynamic* filter restricted
   to the layer's sliding window (Eq. 21) and, in parallel, by a
   learnable *static* filter restricted to the layer's split band
   (Eq. 25),
3. mixes the two spectra ``(1-gamma) * X_D + gamma * X_S`` and inverse
   FFTs back to time (Eqs. 26-27) — by linearity of the inverse FFT the
   implementation mixes the two filtered time signals, which is
   mathematically identical,
4. residual + LayerNorm + dropout (Eq. 28),
5. pointwise FFN with the densely-residual LayerNorm of Eq. 30.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.spectral import (
    combined_filter,
    num_frequency_bins,
    spectral_filter,
    spectral_filter_mixed,
)
from repro.autograd.tensor import Tensor
from repro.core.encoder import PointwiseFeedForward
from repro.nn import Dropout, LayerNorm, Module, Parameter
from repro.nn import init as nn_init
from repro.nn.workspace import ParamCache

__all__ = ["FilterMixerLayer"]


class FilterMixerLayer(Module):
    """One filter mixer block with fixed DFS/SFS frequency windows.

    Parameters
    ----------
    seq_len, hidden_dim:
        Input geometry ``(N, d)``; filters live on ``M = N//2+1`` bins.
    dfs_mask, sfs_mask:
        Per-layer binary windows from the frequency ramp structure;
        pass ``None`` to disable a branch (ablations w/oD and w/oS).
    gamma:
        Static-branch mixing weight (Eq. 26); ignored when a branch is
        disabled.
    dropout:
        Dropout rate used at both Eq. 28 and Eq. 30 sites.
    filter_init_std:
        Std of the complex filter init (FMLP-Rec uses 0.02).
    dtype:
        Parameter/activation dtype (float32/float64); ``None`` uses the
        :mod:`repro.nn.init` default.  Float32 filters combine into a
        complex64 spectrum filter, so the whole FFT pipeline stays in
        single precision.
    """

    def __init__(
        self,
        seq_len: int,
        hidden_dim: int,
        dfs_mask: np.ndarray | None,
        sfs_mask: np.ndarray | None,
        gamma: float = 0.5,
        dropout: float = 0.3,
        filter_init_std: float = 0.02,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        if dfs_mask is None and sfs_mask is None:
            raise ValueError("at least one of dfs_mask/sfs_mask is required")
        rng = rng or np.random.default_rng()
        dtype = nn_init.resolve_dtype(dtype)
        m = num_frequency_bins(seq_len)
        self.seq_len = seq_len
        self.gamma = gamma
        self.dtype = dtype

        self.dfs_mask = None
        if dfs_mask is not None:
            self.dfs_mask = self._check_mask(dfs_mask, m)
            self.dfs_real = Parameter(
                nn_init.normal(rng, (m, hidden_dim), std=filter_init_std, dtype=dtype), name="dfs_real"
            )
            self.dfs_imag = Parameter(
                nn_init.normal(rng, (m, hidden_dim), std=filter_init_std, dtype=dtype), name="dfs_imag"
            )

        self.sfs_mask = None
        if sfs_mask is not None:
            self.sfs_mask = self._check_mask(sfs_mask, m)
            self.sfs_real = Parameter(
                nn_init.normal(rng, (m, hidden_dim), std=filter_init_std, dtype=dtype), name="sfs_real"
            )
            self.sfs_imag = Parameter(
                nn_init.normal(rng, (m, hidden_dim), std=filter_init_std, dtype=dtype), name="sfs_imag"
            )

        self.filter_norm = LayerNorm(hidden_dim, dtype=dtype)
        self.filter_dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32)))
        self.ffn = PointwiseFeedForward(hidden_dim, rng=rng, dtype=dtype)
        self.ffn_norm = LayerNorm(hidden_dim, dtype=dtype)
        self.ffn_dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32)))
        # Parameter-version-keyed combined complex filter for the fused
        # path; see _combined_filter for the invalidation contract.
        self._filt_cache = ParamCache()

    @staticmethod
    def _check_mask(mask: np.ndarray, m: int) -> np.ndarray:
        mask = np.asarray(mask, dtype=np.float64).reshape(-1)
        if mask.shape[0] != m:
            raise ValueError(f"mask has {mask.shape[0]} bins, expected {m}")
        return mask

    # ------------------------------------------------------------------
    def _combined_filter(self) -> np.ndarray:
        """Cached ``(1-γ)·mask_D·W_D + γ·mask_S·W_S`` for the fused op.

        Backed by a :class:`~repro.nn.workspace.ParamCache` (the same
        mechanism attention uses for its concatenated Q/K/V weight):
        keyed on the global parameter-mutation epoch plus the identity
        of the parameter payloads, so the combined filter is rebuilt
        exactly once per parameter update even though the contrastive
        objective encodes every batch three times.  Call
        :meth:`invalidate_filter_cache` after mutating filter parameter
        ``.data`` in place by hand.
        """
        payloads = (
            self.dfs_real.data,
            self.dfs_imag.data,
            self.sfs_real.data,
            self.sfs_imag.data,
        )

        def build():
            return combined_filter(
                self.dfs_real, self.dfs_imag, self.dfs_mask,
                self.sfs_real, self.sfs_imag, self.sfs_mask,
                self.gamma,
            )

        return self._filt_cache.get(payloads, build, extra=self.gamma)

    def invalidate_filter_cache(self) -> None:
        """Drop the cached combined filter (after manual weight edits)."""
        self._filt_cache.invalidate()

    def mix_spectra(self, x: Tensor) -> Tensor:
        """Eqs. 21 + 25 + 26-27: filter, mix, return time-domain signal.

        Both branches active -> the fused single-FFT-pair op; single
        branch (ablations w/oD and w/oS) -> the original per-branch
        :func:`spectral_filter`, byte-for-byte the seed behaviour.

        The combined filter is handed over as a *provider* (the bound
        cached method) rather than a precomputed array so static-graph
        replays re-fetch it after each optimizer step; the
        :class:`~repro.nn.workspace.ParamCache` behind it still
        collapses the three contrastive encodes of one step to a single
        recombination.
        """
        if self.dfs_mask is None:
            return spectral_filter(x, self.sfs_real, self.sfs_imag, self.sfs_mask)
        if self.sfs_mask is None:
            return spectral_filter(x, self.dfs_real, self.dfs_imag, self.dfs_mask)
        return spectral_filter_mixed(
            x,
            self.dfs_real, self.dfs_imag, self.dfs_mask,
            self.sfs_real, self.sfs_imag, self.sfs_mask,
            self.gamma,
            filt_provider=self._combined_filter,
        )

    def forward(self, x: Tensor) -> Tensor:
        filtered = self.mix_spectra(x)
        # Eq. 28: residual + dropout + LayerNorm.
        hidden = self.filter_norm(F.add(x, self.filter_dropout(filtered)))
        # Eqs. 29-30: FFN with densely-residual LayerNorm.  The triple
        # residual runs as one fused add node (bitwise the chained sum).
        ffn_out = self.ffn(hidden)
        return self.ffn_norm(F.add3(x, hidden, self.ffn_dropout(ffn_out)))
