"""Frequency ramp structure: sliding window placement (Eqs. 16-25).

These are pure functions from ``(M, L, alpha, direction)`` to integer
windows ``[start, end)`` over the ``M`` rFFT bins, so the geometry of
the ramp can be unit- and property-tested independently of the model:

- **DFS** (dynamic frequency selection): a window of size
  ``round(alpha * M)`` that slides by ``step = (1 - alpha) * M / (L-1)``
  per layer (Eqs. 17-20).  In the paper's ``<-`` direction layer 0
  covers the top (high-frequency) end and layer L-1 ends at bin 0.
- **SFS** (static frequency split): an exact partition of ``[0, M)``
  into ``L`` bands of size ``~M / L`` (Eqs. 22-24); the union of the L
  windows always covers every bin with no overlap.

Frequency bin 0 is the DC / lowest frequency; bin M-1 is the highest.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["dfs_windows", "sfs_windows", "window_mask", "ramp_masks", "coverage_report"]

Window = Tuple[int, int]


def _validate(m: int, num_layers: int) -> None:
    if m < 1:
        raise ValueError(f"M must be >= 1, got {m}")
    if num_layers < 1:
        raise ValueError(f"L must be >= 1, got {num_layers}")


def dfs_windows(m: int, num_layers: int, alpha: float, direction: str = "high_to_low") -> List[Window]:
    """Sliding windows of the dynamic frequency selection module.

    Returns one ``[start, end)`` window per layer.  ``direction`` is
    ``"high_to_low"`` (paper's ``<-``) or ``"low_to_high"`` (``->``,
    defined in the paper as the reversed window list).
    """
    _validate(m, num_layers)
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    size = max(1, int(round(alpha * m)))
    step = (m - size) / (num_layers - 1) if num_layers > 1 else 0.0
    windows: List[Window] = []
    for layer in range(num_layers):
        end = m - int(round(layer * step))
        start = end - size
        start, end = max(0, start), min(m, end)
        windows.append((start, end))
    if direction == "high_to_low":
        return windows
    if direction == "low_to_high":
        return list(reversed(windows))
    raise ValueError(f"unknown direction {direction!r}")


def sfs_windows(m: int, num_layers: int, direction: str = "high_to_low") -> List[Window]:
    """Static frequency split: an exact L-way partition of ``[0, M)``.

    Band boundaries are ``round(t * M / L)`` so the union of all layers'
    windows is exactly ``[0, M)`` with no gaps or overlaps — the
    coverage guarantee Section III-B3 relies on.
    """
    _validate(m, num_layers)
    bounds = [int(round(t * m / num_layers)) for t in range(num_layers + 1)]
    ascending = [(bounds[t], bounds[t + 1]) for t in range(num_layers)]
    if direction == "high_to_low":
        return list(reversed(ascending))  # layer 0 gets the top band
    if direction == "low_to_high":
        return ascending
    raise ValueError(f"unknown direction {direction!r}")


def window_mask(m: int, window: Window, dtype=np.float64) -> np.ndarray:
    """Binary indicator vector sigma(omega) for a ``[start, end)`` window."""
    start, end = window
    if not 0 <= start <= end <= m:
        raise ValueError(f"window {window} out of bounds for M={m}")
    mask = np.zeros(m, dtype=dtype)
    mask[start:end] = 1.0
    return mask


def coverage_report(m: int, num_layers: int, alpha: float) -> dict:
    """Quantify which frequency bins the ramp structure touches.

    Explains Table III's DFS-vs-DFS+SFS contrast: when
    ``alpha < 1/L`` the sliding dynamic windows leave gaps between
    consecutive steps; the static split always covers everything.

    Returns a dict with ``dfs_covered`` / ``sfs_covered`` /
    ``combined_covered`` bin counts, the per-bin hit counts, and the
    boolean ``dfs_has_gaps``.
    """
    dfs_hits = np.zeros(m, dtype=int)
    for start, end in dfs_windows(m, num_layers, alpha):
        dfs_hits[start:end] += 1
    sfs_hits = np.zeros(m, dtype=int)
    for start, end in sfs_windows(m, num_layers):
        sfs_hits[start:end] += 1
    combined = (dfs_hits + sfs_hits) > 0
    return {
        "dfs_covered": int((dfs_hits > 0).sum()),
        "sfs_covered": int((sfs_hits > 0).sum()),
        "combined_covered": int(combined.sum()),
        "dfs_hits": dfs_hits,
        "sfs_hits": sfs_hits,
        "dfs_has_gaps": bool((dfs_hits == 0).any()),
    }


def ramp_masks(
    m: int,
    num_layers: int,
    alpha: float,
    dfs_direction: str,
    sfs_direction: str,
    dtype=np.float64,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Per-layer DFS and SFS masks for a full ramp configuration."""
    dfs = [window_mask(m, w, dtype) for w in dfs_windows(m, num_layers, alpha, dfs_direction)]
    sfs = [window_mask(m, w, dtype) for w in sfs_windows(m, num_layers, sfs_direction)]
    return dfs, sfs
