"""SLIME4Rec: contrastive enhanced slide filter mixer (Section III)."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.spectral import num_frequency_bins
from repro.autograd.tensor import Tensor
from repro.core.config import SlimeConfig
from repro.core.contrastive import info_nce_loss
from repro.core.encoder import SequentialEncoderBase
from repro.core.filter_mixer import FilterMixerLayer
from repro.core.filters import ramp_masks
from repro.data.batching import Batch
from repro.nn import ModuleList

__all__ = ["Slime4Rec"]


class Slime4Rec(SequentialEncoderBase):
    """The paper's model: embedding -> L filter mixer blocks -> prediction.

    Training couples the next-item cross-entropy with a contrastive
    regularizer built from an unsupervised dropout view and a
    supervised same-target view (Eq. 36):
    ``loss = L_rec + lambda * (NCE(h', h'_s))`` where both symmetric
    terms of Eq. 33 are folded into the NT-Xent objective.

    Example
    -------
    >>> cfg = SlimeConfig(num_items=100, max_len=16, hidden_dim=32)
    >>> model = Slime4Rec(cfg)
    >>> scores = model.predict_scores(np.zeros((2, 16), dtype=np.int64))
    >>> scores.shape
    (2, 101)
    """

    def __init__(self, config: SlimeConfig) -> None:
        super().__init__(
            num_items=config.num_items,
            max_len=config.max_len,
            hidden_dim=config.hidden_dim,
            embed_dropout=config.embed_dropout,
            noise_eps=config.noise_eps,
            seed=config.seed,
            dtype=config.dtype,
        )
        self.config = config
        self.ce_chunk_size = config.ce_chunk_size
        self.train_num_negatives = config.train_num_negatives
        self.negative_sampling = config.negative_sampling
        self.static_graph = config.static_graph
        rng = np.random.default_rng(config.seed + 2)
        m = num_frequency_bins(config.max_len)
        dfs_masks, sfs_masks = ramp_masks(
            m,
            config.num_layers,
            config.alpha,
            config.slide_mode.dfs_direction,
            config.slide_mode.sfs_direction,
        )
        layers = []
        for layer_idx in range(config.num_layers):
            layers.append(
                FilterMixerLayer(
                    seq_len=config.max_len,
                    hidden_dim=config.hidden_dim,
                    dfs_mask=dfs_masks[layer_idx] if config.use_dfs else None,
                    sfs_mask=sfs_masks[layer_idx] if config.use_sfs else None,
                    gamma=config.gamma if (config.use_dfs and config.use_sfs) else 0.0,
                    dropout=config.hidden_dropout,
                    rng=rng,
                    dtype=self.dtype,
                )
            )
        self.layers = ModuleList(layers)
        self._cl_rng = np.random.default_rng(config.seed + 3)

    # ------------------------------------------------------------------
    def to(self, dtype) -> "Slime4Rec":
        """Cast the model and keep ``config.dtype`` describing it.

        The config is replaced, not mutated: the caller's original
        ``SlimeConfig`` may be shared with other model builds.
        """
        import dataclasses

        super().to(dtype)
        self.config = dataclasses.replace(self.config, dtype=self.dtype.name)
        return self

    # ------------------------------------------------------------------
    def encode_states(self, input_ids: np.ndarray) -> Tensor:
        hidden = self.embed(input_ids)
        for layer in self.layers:
            hidden = layer(self.inject_noise(hidden))
        return hidden

    # ------------------------------------------------------------------
    def loss(self, batch: Batch) -> Tensor:
        """Joint objective of Eq. 36.

        When contrastive learning is enabled the step needs three
        encodes of the batch: the main pass (recommendation term), the
        same inputs under fresh dropout masks (the unsupervised view
        ``h'``), and the same-target positives (the supervised view
        ``h'_s``).  With ``config.batched_views`` (the default) all
        three run as **one** stacked ``(3B, N, d)`` graph walk with
        per-view dropout streams (:meth:`encode_views`); the reference
        path encodes them sequentially — same masks per seed, same
        losses to float64 reassociation tolerance.
        """
        if self.config.cl_weight <= 0.0 or batch.positive_ids is None:
            states = self.encode_states(batch.input_ids)
            return self.prediction_loss(_last_state(states), batch.targets)

        if self.config.batched_views and self.noise_eps <= 0.0:
            user, unsup_view, sup_view = self.encode_views(
                (batch.input_ids, batch.input_ids, batch.positive_ids)
            )
        else:
            user = _last_state(self.encode_states(batch.input_ids))
            unsup_view = _last_state(self.encode_states(batch.input_ids))
            sup_view = _last_state(self.encode_states(batch.positive_ids))
        rec_loss = self.prediction_loss(user, batch.targets)
        cl = info_nce_loss(unsup_view, sup_view, temperature=self.config.cl_temperature)
        return F.add(rec_loss, F.mul(cl, self.config.cl_weight))

    # ------------------------------------------------------------------
    def filter_amplitudes(self) -> dict:
        """Per-layer |filter| maps for the Figure 7 visualization.

        Returns ``{"dfs": [(M, d) arrays], "sfs": [...]}`` with the
        window masks applied, i.e. exactly the effective filters.
        """
        out = {"dfs": [], "sfs": []}
        for layer in self.layers:
            if layer.dfs_mask is not None:
                amp = np.abs(layer.dfs_real.data + 1j * layer.dfs_imag.data)
                out["dfs"].append(amp * layer.dfs_mask[:, None])
            if layer.sfs_mask is not None:
                amp = np.abs(layer.sfs_real.data + 1j * layer.sfs_imag.data)
                out["sfs"].append(amp * layer.sfs_mask[:, None])
        return out


def _last_state(states: Tensor) -> Tensor:
    return F.getitem(states, (slice(None), -1))
