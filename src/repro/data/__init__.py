"""Data pipeline: preprocessing, splits, synthetic workloads, batching."""

from repro.data.dataset import SequenceDataset, DatasetStats
from repro.data.preprocess import (
    apply_k_core,
    build_user_sequences,
    leave_one_out_split,
    pad_or_truncate,
)
from repro.data.synthetic import SyntheticConfig, generate_interactions, load_preset, PRESETS
from repro.data.batching import BatchIterator, Batch
from repro.data.augmentation import (
    crop_sequence,
    mask_sequence,
    reorder_sequence,
    substitute_sequence,
    insert_sequence,
    ItemCorrelation,
)
from repro.data.loaders import load_interactions_file
from repro.data.negative_sampling import NegativeSampler
from repro.data.reports import (
    PopularityReport,
    length_histogram,
    popularity_report,
    repeat_ratio,
)

__all__ = [
    "SequenceDataset",
    "DatasetStats",
    "apply_k_core",
    "build_user_sequences",
    "leave_one_out_split",
    "pad_or_truncate",
    "SyntheticConfig",
    "generate_interactions",
    "load_preset",
    "PRESETS",
    "BatchIterator",
    "Batch",
    "crop_sequence",
    "mask_sequence",
    "reorder_sequence",
    "substitute_sequence",
    "insert_sequence",
    "ItemCorrelation",
    "load_interactions_file",
    "NegativeSampler",
    "PopularityReport",
    "popularity_report",
    "length_histogram",
    "repeat_ratio",
]
