"""Sequence-level data augmentations for contrastive baselines.

CL4SRec (crop / mask / reorder) and CoSeRec (correlation-informed
substitute / insert) operate on raw item-id lists *before* padding.
SLIME4Rec itself uses model-level augmentation (dropout views) and does
not need these, but the baselines do.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "crop_sequence",
    "mask_sequence",
    "reorder_sequence",
    "substitute_sequence",
    "insert_sequence",
    "ItemCorrelation",
]


def crop_sequence(seq: Sequence[int], ratio: float, rng: np.random.Generator) -> List[int]:
    """Keep a random contiguous span of length ``ceil(ratio * len)``."""
    seq = list(seq)
    if len(seq) < 2:
        return seq
    span = max(1, int(np.ceil(ratio * len(seq))))
    start = int(rng.integers(0, len(seq) - span + 1))
    return seq[start : start + span]


def mask_sequence(
    seq: Sequence[int], ratio: float, mask_id: int, rng: np.random.Generator
) -> List[int]:
    """Replace a random ``ratio`` of positions with ``mask_id``."""
    seq = list(seq)
    if not seq:
        return seq
    count = max(1, int(np.floor(ratio * len(seq)))) if ratio > 0 else 0
    positions = rng.choice(len(seq), size=min(count, len(seq)), replace=False)
    for pos in positions:
        seq[pos] = mask_id
    return seq


def reorder_sequence(seq: Sequence[int], ratio: float, rng: np.random.Generator) -> List[int]:
    """Shuffle a random contiguous span of length ``ratio * len``."""
    seq = list(seq)
    if len(seq) < 2:
        return seq
    span = max(1, int(np.ceil(ratio * len(seq))))
    start = int(rng.integers(0, len(seq) - span + 1))
    segment = seq[start : start + span]
    rng.shuffle(segment)
    return seq[:start] + segment + seq[start + span :]


class ItemCorrelation:
    """Item-to-item co-occurrence statistics for CoSeRec augmentations.

    Correlation is measured by within-window co-occurrence counts over
    the training sequences; ``most_correlated`` returns the top
    neighbour of an item (or the item itself when unseen).
    """

    def __init__(self, train_sequences: Sequence[Sequence[int]], window: int = 3) -> None:
        counts: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        for seq in train_sequences:
            seq = list(seq)
            for i, a in enumerate(seq):
                for j in range(max(0, i - window), min(len(seq), i + window + 1)):
                    if i == j:
                        continue
                    counts[a][seq[j]] += 1
        self._top: Dict[int, List[int]] = {}
        for item, neigh in counts.items():
            ranked = sorted(neigh.items(), key=lambda kv: (-kv[1], kv[0]))
            self._top[item] = [n for n, _ in ranked[:10]]

    def most_correlated(self, item: int, rng: np.random.Generator) -> int:
        options = self._top.get(item)
        if not options:
            return item
        return int(options[int(rng.integers(len(options)))])


def substitute_sequence(
    seq: Sequence[int], ratio: float, corr: ItemCorrelation, rng: np.random.Generator
) -> List[int]:
    """Replace ``ratio`` of the items with highly-correlated neighbours."""
    seq = list(seq)
    if not seq:
        return seq
    count = max(1, int(np.floor(ratio * len(seq))))
    positions = rng.choice(len(seq), size=min(count, len(seq)), replace=False)
    for pos in positions:
        seq[pos] = corr.most_correlated(seq[pos], rng)
    return seq


def insert_sequence(
    seq: Sequence[int], ratio: float, corr: ItemCorrelation, rng: np.random.Generator
) -> List[int]:
    """Insert correlated items after ``ratio`` of the positions."""
    seq = list(seq)
    if not seq:
        return seq
    count = max(1, int(np.floor(ratio * len(seq))))
    positions = sorted(
        rng.choice(len(seq), size=min(count, len(seq)), replace=False), reverse=True
    )
    for pos in positions:
        seq.insert(pos + 1, corr.most_correlated(seq[pos], rng))
    return seq
