"""Mini-batch iteration over training instances."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.data.dataset import SequenceDataset

__all__ = ["Batch", "BatchIterator"]


@dataclass
class Batch:
    """One training mini-batch.

    ``input_ids`` is ``(B, N)`` int64 (0 = padding), ``targets`` is
    ``(B,)``.  When the iterator was built with same-target sampling,
    ``positive_ids`` holds another sequence per row that shares the same
    target item (DuoRec's supervised contrastive positive).
    """

    input_ids: np.ndarray
    targets: np.ndarray
    positive_ids: Optional[np.ndarray] = None
    instance_indices: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.input_ids.shape[0]


class BatchIterator:
    """Shuffled epoch iterator over a dataset's training instances.

    Parameters
    ----------
    dataset:
        The preprocessed :class:`SequenceDataset`.
    batch_size:
        Rows per batch (the trailing partial batch is kept).
    with_same_target:
        Also sample a same-target positive sequence per row.
    seed:
        Shuffle seed; each epoch reshuffles deterministically.
    """

    def __init__(
        self,
        dataset: SequenceDataset,
        batch_size: int = 256,
        with_same_target: bool = False,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.batch_size = batch_size
        self.with_same_target = with_same_target
        self._rng = np.random.default_rng(seed)
        self._inputs, self._targets = dataset.train_arrays()

    def __len__(self) -> int:
        return (len(self._targets) + self.batch_size - 1) // self.batch_size

    def epoch(self) -> Iterator[Batch]:
        order = self._rng.permutation(len(self._targets))
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            positives = None
            if self.with_same_target:
                pos_idx = np.array(
                    [self.dataset.sample_same_target(int(i), self._rng) for i in idx]
                )
                positives = self._inputs[pos_idx]
            yield Batch(
                input_ids=self._inputs[idx],
                targets=self._targets[idx],
                positive_ids=positives,
                instance_indices=idx,
            )
