"""Mini-batch iteration over training instances.

The iterator is **resumable**: together with the trainer's run-state
archive it supports bitwise-identical crash/resume.  All randomness
(epoch shuffles and DuoRec-style same-target draws) flows through one
PCG64 generator, and :meth:`BatchIterator.state_dict` captures that
generator's bit state *as of the current epoch's start* plus the number
of batches already consumed.  On restore the next :meth:`epoch` call
re-draws the same permutation and replays the same-target draws of the
consumed batches (consuming the generator identically without yielding
them), so the resumed run sees exactly the batch stream — and leaves
the generator in exactly the position — an uninterrupted run would
have.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.autograd.workspace import generator_state, set_generator_state
from repro.data.dataset import SequenceDataset

__all__ = ["Batch", "BatchIterator"]


@dataclass
class Batch:
    """One training mini-batch.

    ``input_ids`` is ``(B, N)`` int64 (0 = padding), ``targets`` is
    ``(B,)``.  When the iterator was built with same-target sampling,
    ``positive_ids`` holds another sequence per row that shares the same
    target item (DuoRec's supervised contrastive positive).
    """

    input_ids: np.ndarray
    targets: np.ndarray
    positive_ids: Optional[np.ndarray] = None
    instance_indices: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.input_ids.shape[0]


class BatchIterator:
    """Shuffled epoch iterator over a dataset's training instances.

    Parameters
    ----------
    dataset:
        The preprocessed :class:`SequenceDataset`.
    batch_size:
        Rows per batch (the trailing partial batch is kept).
    with_same_target:
        Also sample a same-target positive sequence per row.
    seed:
        Shuffle seed; each epoch reshuffles deterministically.
    """

    def __init__(
        self,
        dataset: SequenceDataset,
        batch_size: int = 256,
        with_same_target: bool = False,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.batch_size = batch_size
        self.with_same_target = with_same_target
        self._rng = np.random.default_rng(seed)
        self._inputs, self._targets = dataset.train_arrays()
        # Resume bookkeeping: the generator's bit state at the start of
        # the current (or next) epoch, the number of batches already
        # yielded from it, and a pending skip count set by
        # ``load_state_dict`` and consumed by the next ``epoch()`` call.
        self._epoch_start_state = generator_state(self._rng)
        self._position = 0
        self._resume_skip = 0

    def __len__(self) -> int:
        return (len(self._targets) + self.batch_size - 1) // self.batch_size

    def epoch(self) -> Iterator[Batch]:
        self._epoch_start_state = generator_state(self._rng)
        self._position = 0
        skip = self._resume_skip
        self._resume_skip = 0
        order = self._rng.permutation(len(self._targets))
        for batch_index, start in enumerate(range(0, len(order), self.batch_size)):
            idx = order[start : start + self.batch_size]
            positives = None
            pos_idx = None
            if self.with_same_target:
                # Drawn even for replayed (skipped) batches: the draws
                # consume the shared generator, and an identical stream
                # position is what makes resume bitwise-faithful.
                pos_idx = np.array(
                    [self.dataset.sample_same_target(int(i), self._rng) for i in idx]
                )
            self._position = batch_index + 1
            if batch_index < skip:
                continue
            if pos_idx is not None:
                positives = self._inputs[pos_idx]
            yield Batch(
                input_ids=self._inputs[idx],
                targets=self._targets[idx],
                positive_ids=positives,
                instance_indices=idx,
            )
        # Epoch fully consumed: re-anchor the resume state to the
        # generator's *current* position so a checkpoint taken between
        # epochs resumes with the next epoch's fresh permutation.
        self._position = 0
        self._epoch_start_state = generator_state(self._rng)

    # ------------------------------------------------------------------
    # Resume state
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Snapshot of the shuffle stream and the position inside it.

        ``epoch_start_state`` is the generator bit state at the start of
        the epoch currently being iterated (or, between epochs, the
        state the next epoch will start from); ``position`` counts the
        batches already yielded from that epoch (0 between epochs).
        """
        return {
            "epoch_start_state": copy.deepcopy(self._epoch_start_state),
            "position": int(self._position),
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict`; the next :meth:`epoch` call
        re-draws the saved epoch's permutation and resumes after the
        already-consumed batches."""
        position = int(state["position"])
        if position < 0 or position > len(self):
            raise ValueError(
                f"iterator position {position} out of range for "
                f"{len(self)} batches per epoch"
            )
        set_generator_state(self._rng, state["epoch_start_state"])
        self._epoch_start_state = copy.deepcopy(state["epoch_start_state"])
        self._position = position
        self._resume_skip = position
