"""SequenceDataset: the central container used by trainers and evaluators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.preprocess import (
    apply_k_core,
    build_user_sequences,
    leave_one_out_split,
    pad_or_truncate,
)

__all__ = ["SequenceDataset", "DatasetStats"]


@dataclass(frozen=True)
class DatasetStats:
    """The Table I statistics of a preprocessed dataset."""

    name: str
    num_users: int
    num_items: int
    num_actions: int
    avg_length: float
    sparsity: float

    def as_row(self) -> str:
        return (
            f"{self.name:<12} users={self.num_users:<7} items={self.num_items:<7} "
            f"avg_len={self.avg_length:<6.1f} actions={self.num_actions:<8} "
            f"sparsity={self.sparsity * 100:.2f}%"
        )


class SequenceDataset:
    """Preprocessed sequential-recommendation dataset with LOO splits.

    Parameters
    ----------
    interactions:
        Iterable of ``(user, item, timestamp)`` triples (raw ids).
    name:
        Human-readable dataset name (for reports).
    max_len:
        Maximum sequence length ``N``; longer histories keep only the
        most recent ``N`` items (Eq. 1).
    k_core:
        Minimum interactions per user and item (paper uses 5).
    """

    def __init__(
        self,
        interactions: Sequence[Tuple[int, int, float]],
        name: str = "dataset",
        max_len: int = 50,
        k_core: int = 5,
    ) -> None:
        self.name = name
        self.max_len = max_len
        filtered = apply_k_core(interactions, k=k_core)
        if not filtered:
            raise ValueError("no interactions remain after k-core filtering")
        sequences, self.user_map, self.item_map = build_user_sequences(filtered)
        self.sequences = sequences
        self.num_users = len(sequences)
        self.num_items = len(self.item_map)  # real items; ids 1..num_items
        self.train_sequences, self.valid, self.test = leave_one_out_split(sequences)

        # Training instances: every prefix of the train split predicts
        # its next item (the DuoRec/SLIME4Rec instance expansion).
        self.train_instances: List[Tuple[List[int], int]] = []
        for seq in self.train_sequences:
            for cut in range(1, len(seq)):
                self.train_instances.append((seq[:cut], seq[cut]))

        # Same-target index for supervised contrastive sampling.
        self._target_index: Dict[int, List[int]] = {}
        for idx, (_, target) in enumerate(self.train_instances):
            self._target_index.setdefault(target, []).append(idx)

    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        """Number of rows needed in an item embedding (items + padding)."""
        return self.num_items + 1

    def stats(self) -> DatasetStats:
        actions = sum(len(s) for s in self.sequences)
        # Sparsity counts distinct (user, item) cells, so repeat
        # purchases (common in the dense ML-1M-style preset) cannot
        # push it negative.
        unique_pairs = sum(len(set(s)) for s in self.sequences)
        sparsity = 1.0 - unique_pairs / (self.num_users * self.num_items)
        return DatasetStats(
            name=self.name,
            num_users=self.num_users,
            num_items=self.num_items,
            num_actions=actions,
            avg_length=actions / self.num_users,
            sparsity=sparsity,
        )

    # ------------------------------------------------------------------
    def encode_prefix(self, prefix: Sequence[int]) -> np.ndarray:
        return pad_or_truncate(prefix, self.max_len)

    def train_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All training instances as ``(inputs (I, N), targets (I,))``."""
        inputs = np.stack([self.encode_prefix(p) for p, _ in self.train_instances])
        targets = np.array([t for _, t in self.train_instances], dtype=np.int64)
        return inputs, targets

    def eval_arrays(self, split: str) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluation inputs/targets for ``split`` in {"valid", "test"}."""
        pairs = {"valid": self.valid, "test": self.test}[split]
        inputs = np.stack([self.encode_prefix(p) for p, _ in pairs])
        targets = np.array([t for _, t in pairs], dtype=np.int64)
        return inputs, targets

    def sample_same_target(self, instance_idx: int, rng: np.random.Generator) -> int:
        """Index of another train instance sharing this instance's target.

        Falls back to the instance itself when it is the only one with
        that target (DuoRec does the same).
        """
        _, target = self.train_instances[instance_idx]
        candidates = self._target_index[target]
        if len(candidates) == 1:
            return instance_idx
        pick = instance_idx
        while pick == instance_idx:
            pick = candidates[int(rng.integers(len(candidates)))]
        return pick

    def __repr__(self) -> str:
        return f"SequenceDataset({self.stats().as_row()})"
