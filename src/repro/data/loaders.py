"""Loaders for real interaction dumps.

If a user of this library has the actual Amazon/ML-1M/Yelp dumps, the
standard whitespace- or comma-separated ``user item timestamp`` format
(one interaction per line) can be loaded here and fed straight into
:class:`~repro.data.dataset.SequenceDataset`, replacing the synthetic
presets without touching any other code.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

__all__ = ["load_interactions_file"]


def load_interactions_file(path: str | Path, delimiter: str | None = None) -> List[Tuple[int, int, float]]:
    """Parse ``user item [timestamp]`` lines into interaction triples.

    Lines starting with ``#`` and blank lines are skipped.  When the
    timestamp column is absent, the line number is used so input order
    defines chronology.  User and item ids may be arbitrary integers;
    remapping happens downstream in ``build_user_sequences``.
    """
    path = Path(path)
    interactions: List[Tuple[int, int, float]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(delimiter) if delimiter else line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno + 1}: expected 'user item [ts]', got {line!r}")
            user, item = int(parts[0]), int(parts[1])
            ts = float(parts[2]) if len(parts) > 2 else float(lineno)
            interactions.append((user, item, ts))
    if not interactions:
        raise ValueError(f"{path}: no interactions found")
    return interactions
