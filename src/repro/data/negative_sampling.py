"""Shared negative sampling for sampled-softmax training and evaluation.

One seeded, vectorized :class:`NegativeSampler` backs both consumers of
negative item draws in this repo:

- **sampled-softmax training**
  (:func:`repro.autograd.functional.sampled_softmax_loss` via
  ``SequentialEncoderBase.prediction_loss``): a shared candidate set of
  ``K`` negatives is drawn *with replacement* per step and scored
  against every row of the batch, with the standard logQ correction
  (subtract ``log q(c)`` from each candidate's logit) making the
  sampled softmax a consistent estimator of the full softmax;
- **sampled evaluation** (:class:`repro.evaluation.sampled.SampledEvaluator`):
  per-user negatives are drawn *without replacement* from the eligible
  set (catalog minus history, target and padding) in one vectorized
  ``choice`` — no rejection loop, so a catalog smaller than the
  requested negative count raises immediately instead of hanging.

Two proposal distributions over the real item ids ``1..num_items``
(padding id 0 is never drawn):

``"uniform"``
    ``q(i) = 1 / num_items``.  The classic evaluation protocol and the
    safe training default.
``"log_uniform"``
    The Zipfian sampler of TF's ``log_uniform_candidate_sampler``:
    ``q(i) = log(1 + 1/i) / log(num_items + 1)``, drawn in O(K) by
    inverting the CDF (``i = floor(exp(u * log(V + 1)))``).  Matches
    the empirical long-tail of interaction frequencies when item ids
    are popularity-sorted, which concentrates negatives on the items a
    full softmax spends most of its normalizer mass on.

All draws come from one ``numpy`` PCG64 generator seeded at
construction, so a training run's negative stream is reproducible from
``(seed, call sequence)`` alone.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from repro.autograd.workspace import generator_state, set_generator_state

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Seeded, vectorized sampler of negative item ids in ``1..num_items``.

    Parameters
    ----------
    num_items:
        Real catalog size; draws cover ``1..num_items`` (0 is padding
        and never sampled).
    strategy:
        ``"uniform"`` or ``"log_uniform"`` (see module docstring).
    seed:
        Generator seed; two samplers built with equal arguments produce
        identical draw sequences.
    """

    STRATEGIES: Tuple[str, ...] = ("uniform", "log_uniform")

    def __init__(self, num_items: int, strategy: str = "uniform", seed: int = 0) -> None:
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown negative-sampling strategy {strategy!r}; "
                f"choose from {self.STRATEGIES}"
            )
        self.num_items = int(num_items)
        self.strategy = strategy
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        # log(V + 1), the log-uniform CDF normalizer.
        self._log_range = float(np.log1p(self.num_items))

    # ------------------------------------------------------------------
    def sample(self, size: Union[int, Tuple[int, ...]]) -> np.ndarray:
        """Draw item ids *with replacement* from the proposal distribution.

        Returns an int64 array of the requested ``size`` (int or shape
        tuple) with values in ``1..num_items``.  This is the training
        path: duplicates are possible and are accounted for by the logQ
        correction, not deduplicated.
        """
        if self.strategy == "uniform":
            return self._rng.integers(1, self.num_items + 1, size=size, dtype=np.int64)
        # Inverse-CDF log-uniform draw: u ~ U[0, 1) maps to
        # floor(exp(u * log(V+1))) in 1..V with
        # P(i) = (log(i+1) - log(i)) / log(V+1).
        u = self._rng.random(size=size)
        ids = np.floor(np.exp(u * self._log_range)).astype(np.int64)
        # exp/floor rounding can graze V+1 when u -> 1; clip, never 0.
        return np.clip(ids, 1, self.num_items)

    def log_q(self, ids: np.ndarray) -> np.ndarray:
        """``log q(id)`` of the proposal distribution, as float64.

        Used for the sampled-softmax logQ correction; ``ids`` must lie
        in the proposal support ``1..num_items`` — out-of-support ids
        have ``q = 0``, whose log would silently poison a correction
        with infinities, so they raise instead.
        """
        ids = np.asarray(ids)
        if ids.size and (int(ids.min()) < 1 or int(ids.max()) > self.num_items):
            raise ValueError(
                f"ids outside the proposal support 1..{self.num_items} "
                f"(got min {int(ids.min())}, max {int(ids.max())})"
            )
        if self.strategy == "uniform":
            return np.full(ids.shape, -np.log(self.num_items), dtype=np.float64)
        return np.log(np.log1p(1.0 / ids)) - np.log(self._log_range)

    # ------------------------------------------------------------------
    def sample_excluding(
        self, exclude: np.ndarray, num: int, replace: bool = False
    ) -> np.ndarray:
        """Draw ``num`` ids avoiding ``exclude``, without hanging or O(V) churn.

        The evaluation path (1 positive + n negatives).  Eligibility is
        counted up front from the (typically tiny) ``exclude`` array —
        padding id 0 is always excluded — and a catalog with fewer than
        ``num`` eligible items raises a clear :class:`ValueError`
        immediately, instead of spinning forever the way per-candidate
        rejection sampling does.  Two draw paths, both seeded from the
        sampler's generator:

        - **exact** (small catalogs, or a dense exclusion/request):
          materialize the eligible set once and ``Generator.choice``
          from it, weighted by the proposal distribution;
        - **vectorized over-draw** (large catalogs with plenty of
          eligible mass — the common case sampled evaluation exists
          for): draw batches from :meth:`sample` and filter exclusions
          and duplicates, so cost scales with ``num`` and
          ``len(exclude)``, never with the catalog size.  For the
          weighted proposal this realizes successive (with-discard)
          without-replacement sampling — the same protocol, a different
          tie-break order than the exact path for a given seed.
        """
        exclude = np.asarray(exclude, dtype=np.int64).reshape(-1)
        exclude = np.unique(exclude[(exclude >= 1) & (exclude <= self.num_items)])
        eligible_count = self.num_items - exclude.size
        if not replace and eligible_count < num:
            raise ValueError(
                f"cannot draw {num} distinct negatives: only {eligible_count} "
                f"eligible items remain out of a {self.num_items}-item catalog "
                f"after excluding {exclude.size} seen ids; "
                f"shrink num_negatives or use replace=True"
            )
        if eligible_count == 0:
            raise ValueError(
                f"no eligible negatives remain out of a {self.num_items}-item catalog"
            )
        need = num if replace else 4 * num
        if self.num_items <= 4096 or eligible_count < need:
            eligible = np.setdiff1d(
                np.arange(1, self.num_items + 1, dtype=np.int64), exclude
            )
            if self.strategy == "uniform":
                probs = None
            else:
                weights = np.log1p(1.0 / eligible)
                probs = weights / weights.sum()
            return self._rng.choice(eligible, size=num, replace=replace, p=probs)
        result = np.empty(0, dtype=np.int64)
        while result.size < num:
            draw = self.sample(2 * (num - result.size) + 16)
            draw = draw[~np.isin(draw, exclude)]
            if not replace:
                if result.size:
                    draw = draw[~np.isin(draw, result)]
                _, first = np.unique(draw, return_index=True)
                draw = draw[np.sort(first)]
            result = np.concatenate([result, draw])
        return result[:num]

    # ------------------------------------------------------------------
    # Random-stream capture (the Module.rng_state_dict delegate protocol)
    # ------------------------------------------------------------------
    def rng_state_dict(self) -> Dict:
        """JSON-serializable snapshot: sampler identity + generator bit state.

        The identity fields (``num_items``, ``strategy``, ``seed``) make
        a restore into a differently configured sampler fail loudly
        instead of silently resuming the wrong proposal distribution.
        """
        return {
            "num_items": self.num_items,
            "strategy": self.strategy,
            "seed": self.seed,
            "bit_state": generator_state(self._rng),
        }

    def load_rng_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`rng_state_dict` snapshot in place."""
        for field in ("num_items", "strategy"):
            if state.get(field) != getattr(self, field):
                raise ValueError(
                    f"sampler state mismatch on {field!r}: checkpoint has "
                    f"{state.get(field)!r}, live sampler has {getattr(self, field)!r}"
                )
        set_generator_state(self._rng, state["bit_state"])

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"NegativeSampler(num_items={self.num_items}, "
            f"strategy={self.strategy!r}, seed={self.seed})"
        )
