"""Interaction-log preprocessing.

Implements the paper's protocol (Section IV-A/B):

- 5-core filtering: iteratively drop users and items with fewer than
  ``k`` interactions until a fixed point.
- chronological user sequences with contiguous id remapping
  (item id 0 is reserved for padding),
- leave-one-out split: last item -> test, second-to-last -> validation,
  the rest -> training,
- truncation to the most recent ``N`` items and left zero-padding
  (Eq. 1 of the paper).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "apply_k_core",
    "build_user_sequences",
    "leave_one_out_split",
    "pad_or_truncate",
]

Interaction = Tuple[int, int, float]  # (user, item, timestamp)


def apply_k_core(interactions: Sequence[Interaction], k: int = 5) -> List[Interaction]:
    """Iteratively drop users/items with fewer than ``k`` interactions.

    Matches the "5-core settings" of the paper.  Runs to a fixed point:
    removing a sparse item can push a user below ``k`` and vice versa.
    """
    current = list(interactions)
    while True:
        user_counts = Counter(u for u, _, _ in current)
        item_counts = Counter(i for _, i, _ in current)
        kept = [
            (u, i, t)
            for u, i, t in current
            if user_counts[u] >= k and item_counts[i] >= k
        ]
        if len(kept) == len(current):
            return kept
        current = kept


def build_user_sequences(
    interactions: Sequence[Interaction],
) -> Tuple[List[List[int]], Dict[int, int], Dict[int, int]]:
    """Group interactions into per-user chronological item sequences.

    Returns ``(sequences, user_map, item_map)`` where ids are remapped
    contiguously: users to ``0..|U|-1`` and items to ``1..|V|`` (0 is
    the padding id).  Ties in timestamps are broken by input order,
    making the result deterministic.
    """
    per_user: Dict[int, List[Tuple[float, int, int]]] = defaultdict(list)
    for order, (user, item, ts) in enumerate(interactions):
        per_user[user].append((ts, order, item))

    user_map = {raw: idx for idx, raw in enumerate(sorted(per_user))}
    item_map: Dict[int, int] = {}
    sequences: List[List[int]] = [[] for _ in range(len(user_map))]
    for raw_user in sorted(per_user):
        events = sorted(per_user[raw_user])
        seq = []
        for _, _, raw_item in events:
            if raw_item not in item_map:
                item_map[raw_item] = len(item_map) + 1  # 0 reserved for padding
            seq.append(item_map[raw_item])
        sequences[user_map[raw_user]] = seq
    return sequences, user_map, item_map


def leave_one_out_split(
    sequences: Sequence[Sequence[int]],
) -> Tuple[List[List[int]], List[Tuple[List[int], int]], List[Tuple[List[int], int]]]:
    """Split each sequence per the leave-one-out protocol.

    Returns ``(train_sequences, valid, test)``:

    - ``train_sequences[u]`` is everything except the last two items,
    - ``valid[u] = (prefix_without_last_two, second_to_last_item)``,
    - ``test[u] = (prefix_without_last, last_item)``.

    Sequences shorter than 3 cannot be split and are skipped entirely
    (5-core preprocessing should prevent that in practice).
    """
    train: List[List[int]] = []
    valid: List[Tuple[List[int], int]] = []
    test: List[Tuple[List[int], int]] = []
    for seq in sequences:
        seq = list(seq)
        if len(seq) < 3:
            continue
        train.append(seq[:-2])
        valid.append((seq[:-2], seq[-2]))
        test.append((seq[:-1], seq[-1]))
    return train, valid, test


def pad_or_truncate(sequence: Sequence[int], max_len: int) -> np.ndarray:
    """Keep the most recent ``max_len`` items, left-padding with zeros.

    Implements Eq. 1: sequences longer than ``N`` are truncated to the
    final ``N`` elements; shorter sequences get zeros inserted on the
    left until the length reaches ``N``.
    """
    seq = list(sequence)[-max_len:]
    out = np.zeros(max_len, dtype=np.int64)
    if seq:
        out[max_len - len(seq):] = seq
    return out
