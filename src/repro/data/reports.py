"""Dataset diagnostics beyond the Table I headline numbers.

Sequential-recommendation results are sensitive to properties Table I
does not show: how skewed item popularity is, how long the length tail
runs, how repetitive users are.  These reports make a dataset's
difficulty legible before any training happens.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["PopularityReport", "popularity_report", "length_histogram", "repeat_ratio"]


@dataclass(frozen=True)
class PopularityReport:
    """Item-popularity skew statistics.

    Attributes
    ----------
    gini:
        Gini coefficient of the item interaction counts (0 = uniform,
        1 = one item absorbs everything).
    top_10pct_share:
        Fraction of all interactions landing on the most popular 10%
        of items (the "short head").
    coverage:
        Fraction of catalog items with at least one interaction.
    """

    gini: float
    top_10pct_share: float
    coverage: float


def _gini(counts: np.ndarray) -> float:
    if counts.size == 0 or counts.sum() == 0:
        return 0.0
    sorted_counts = np.sort(counts.astype(float))
    n = sorted_counts.size
    cum = np.cumsum(sorted_counts)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / cum[-1]) / n
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def popularity_report(sequences: Sequence[Sequence[int]], num_items: int) -> PopularityReport:
    """Compute popularity-skew statistics for a preprocessed dataset.

    ``num_items`` is the catalog size; ids are assumed 1-based with 0
    reserved for padding (the repo-wide convention).
    """
    counter: Counter = Counter()
    for seq in sequences:
        counter.update(i for i in seq if i != 0)
    counts = np.zeros(num_items, dtype=np.int64)
    for item, count in counter.items():
        counts[item - 1] = count
    total = counts.sum()
    if total == 0:
        return PopularityReport(gini=0.0, top_10pct_share=0.0, coverage=0.0)
    head = max(1, num_items // 10)
    top_share = float(np.sort(counts)[::-1][:head].sum() / total)
    return PopularityReport(
        gini=_gini(counts),
        top_10pct_share=top_share,
        coverage=float((counts > 0).mean()),
    )


def length_histogram(
    sequences: Sequence[Sequence[int]], edges: Sequence[int] = (5, 10, 20, 50, 100)
) -> Dict[str, int]:
    """Bucketed histogram of sequence lengths.

    Returns ``{"<=5": n, "<=10": n, ..., ">100": n}`` — the shape that
    determines how much signal truncation at ``N`` destroys.
    """
    lengths = [len(s) for s in sequences]
    histogram: Dict[str, int] = {}
    previous = 0
    for edge in edges:
        histogram[f"<={edge}"] = sum(previous < l <= edge for l in lengths)
        previous = edge
    histogram[f">{edges[-1]}"] = sum(l > edges[-1] for l in lengths)
    return histogram


def repeat_ratio(sequences: Sequence[Sequence[int]]) -> float:
    """Fraction of interactions that revisit an already-seen item.

    High values mean strong periodic re-consumption — exactly the
    regime where frequency-domain models have something to find.
    """
    repeats = 0
    total = 0
    for seq in sequences:
        seen: set = set()
        for item in seq:
            total += 1
            if item in seen:
                repeats += 1
            seen.add(item)
    return repeats / total if total else 0.0
