"""Synthetic interaction generators with planted frequency structure.

The paper motivates SLIME4Rec with users whose behaviour mixes
*high-frequency* patterns (e.g. clothing bought at short intervals) and
*low-frequency* patterns (e.g. electronics bought at long intervals)
that are entangled in the chronological sequence (Figure 1).  Real
Amazon/ML-1M/Yelp dumps are not available offline, so this module
generates workloads that plant exactly that structure:

- items are partitioned into categories, each with a characteristic
  *period* (in interaction steps);
- every user prefers a few categories with a random phase; at step
  ``t`` the category is drawn from a softmax over periodic activations
  ``pref * (1 + cos(2*pi*(t + phase) / period))``;
- within a category, items follow a Zipf popularity law with per-user
  affinity re-ranking;
- a configurable fraction of interactions is replaced by uniform noise
  (the "malicious fakes" the paper's filters are meant to attenuate).

Per-dataset presets mirror the *relative* statistics of Table I
(sparsity ordering, dense vs sparse, average length) at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["SyntheticConfig", "generate_interactions", "load_preset", "PRESETS"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the planted-frequency workload generator."""

    name: str = "synthetic"
    num_users: int = 500
    num_items: int = 400
    num_categories: int = 8
    #: categories get periods log-spaced between these bounds
    min_period: float = 2.0
    max_period: float = 32.0
    #: mean/σ of the lognormal sequence-length distribution
    mean_length: float = 10.0
    length_sigma: float = 0.4
    min_length: int = 5
    #: number of categories each user prefers
    user_categories: int = 3
    #: softmax temperature over category activations (lower = more periodic)
    temperature: float = 0.35
    #: Zipf exponent for in-category item popularity
    zipf_exponent: float = 1.1
    #: probability an interaction is replaced by uniform random noise
    noise_prob: float = 0.05
    seed: int = 7

    def scaled(self, factor: float) -> "SyntheticConfig":
        """Return a copy scaled in users/items (used for tiny test sizes)."""
        return replace(
            self,
            num_users=max(30, int(self.num_users * factor)),
            num_items=max(30, int(self.num_items * factor)),
        )


def _category_assignment(cfg: SyntheticConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Assign items to categories and categories to periods."""
    items_per_cat = np.full(cfg.num_categories, cfg.num_items // cfg.num_categories)
    items_per_cat[: cfg.num_items % cfg.num_categories] += 1
    item_category = np.repeat(np.arange(cfg.num_categories), items_per_cat)
    periods = np.geomspace(cfg.min_period, cfg.max_period, cfg.num_categories)
    return item_category, periods


def generate_interactions(cfg: SyntheticConfig) -> List[Tuple[int, int, float]]:
    """Generate ``(user, item, timestamp)`` triples for ``cfg``.

    Timestamps are the per-user interaction step, so chronological order
    within a user is exactly the generation order.
    """
    rng = np.random.default_rng(cfg.seed)
    item_category, periods = _category_assignment(cfg)
    categories: Dict[int, np.ndarray] = {
        c: np.where(item_category == c)[0] for c in range(cfg.num_categories)
    }

    # Zipf popularity inside each category.
    zipf_weights: Dict[int, np.ndarray] = {}
    for c, items in categories.items():
        ranks = np.arange(1, len(items) + 1, dtype=float)
        w = ranks ** (-cfg.zipf_exponent)
        zipf_weights[c] = w / w.sum()

    interactions: List[Tuple[int, int, float]] = []
    for user in range(cfg.num_users):
        length = int(
            np.clip(
                rng.lognormal(np.log(cfg.mean_length), cfg.length_sigma),
                cfg.min_length,
                cfg.mean_length * 6,
            )
        )
        prefs = rng.choice(cfg.num_categories, size=cfg.user_categories, replace=False)
        pref_strength = rng.uniform(0.5, 1.5, size=cfg.user_categories)
        phases = rng.uniform(0, cfg.max_period, size=cfg.user_categories)
        # Per-user item affinity jitter so users differ inside a category.
        affinity = rng.uniform(0.5, 1.5, size=cfg.num_items)

        for t in range(length):
            if rng.random() < cfg.noise_prob:
                item = int(rng.integers(cfg.num_items))
            else:
                activation = pref_strength * (
                    1.0 + np.cos(2.0 * np.pi * (t + phases) / periods[prefs])
                )
                logits = activation / cfg.temperature
                probs = np.exp(logits - logits.max())
                probs /= probs.sum()
                cat = int(prefs[rng.choice(cfg.user_categories, p=probs)])
                weights = zipf_weights[cat] * affinity[categories[cat]]
                weights = weights / weights.sum()
                item = int(rng.choice(categories[cat], p=weights))
            interactions.append((user, item, float(t)))
    return interactions


#: Scaled-down presets mirroring Table I's qualitative profile:
#: three sparse Amazon-style datasets, one dense ML-1M-style dataset,
#: and a Yelp-style dataset, in the paper's sparsity ordering.
PRESETS: Dict[str, SyntheticConfig] = {
    "beauty": SyntheticConfig(
        name="beauty", num_users=600, num_items=420, mean_length=9.0,
        min_period=2.0, max_period=24.0, noise_prob=0.05, seed=11,
    ),
    "clothing": SyntheticConfig(
        name="clothing", num_users=800, num_items=600, mean_length=7.0,
        min_period=2.0, max_period=16.0, noise_prob=0.08, seed=12,
    ),
    "sports": SyntheticConfig(
        name="sports", num_users=700, num_items=500, mean_length=8.0,
        min_period=2.0, max_period=24.0, noise_prob=0.06, seed=13,
    ),
    "ml1m": SyntheticConfig(
        name="ml1m", num_users=240, num_items=260, mean_length=60.0,
        num_categories=12, user_categories=5, min_period=3.0,
        max_period=48.0, noise_prob=0.04, seed=14,
    ),
    "yelp": SyntheticConfig(
        name="yelp", num_users=700, num_items=520, mean_length=10.0,
        min_period=2.0, max_period=32.0, noise_prob=0.07, seed=15,
    ),
}


def load_preset(name: str, scale: float = 1.0, max_len: int = 50, k_core: int = 5):
    """Build a :class:`~repro.data.dataset.SequenceDataset` for a preset.

    Parameters
    ----------
    name:
        One of ``beauty, clothing, sports, ml1m, yelp``.
    scale:
        User/item count multiplier; benches use ``scale<1`` for speed.
    max_len:
        Sequence truncation length ``N``.
    k_core:
        Minimum user/item interaction count.
    """
    from repro.data.dataset import SequenceDataset

    if name not in PRESETS:
        raise KeyError(f"unknown preset '{name}'; choose from {sorted(PRESETS)}")
    cfg = PRESETS[name]
    if scale != 1.0:
        cfg = cfg.scaled(scale)
    interactions = generate_interactions(cfg)
    return SequenceDataset(interactions, name=cfg.name, max_len=max_len, k_core=k_core)
