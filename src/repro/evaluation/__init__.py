"""Evaluation protocol: full-catalog ranking, HR@K, NDCG@K, MRR."""

from repro.evaluation.metrics import hit_ratio_at_k, mrr, mrr_at_k, ndcg_at_k, rank_of_target
from repro.evaluation.evaluator import Evaluator, EvalResult
from repro.evaluation.sampled import SampledEvaluator

__all__ = [
    "hit_ratio_at_k",
    "ndcg_at_k",
    "mrr",
    "mrr_at_k",
    "rank_of_target",
    "Evaluator",
    "EvalResult",
    "SampledEvaluator",
]
