"""Evaluation protocol: full-catalog ranking, HR@K, NDCG@K, MRR, top-k."""

from repro.evaluation.metrics import hit_ratio_at_k, mrr, mrr_at_k, ndcg_at_k, rank_of_target
from repro.evaluation.evaluator import Evaluator, EvalResult
from repro.evaluation.sampled import SampledEvaluator
from repro.evaluation.topk import TopKAccumulator, TopKResult, blocked_topk, full_sort_topk

__all__ = [
    "hit_ratio_at_k",
    "ndcg_at_k",
    "mrr",
    "mrr_at_k",
    "rank_of_target",
    "Evaluator",
    "EvalResult",
    "SampledEvaluator",
    "TopKAccumulator",
    "TopKResult",
    "blocked_topk",
    "full_sort_topk",
]
