"""Leave-one-out evaluator over the full item catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.dataset import SequenceDataset
from repro.evaluation.metrics import hit_ratio_at_k, ndcg_at_k, rank_of_target

__all__ = ["Evaluator", "EvalResult"]


@dataclass
class EvalResult:
    """Metric bundle for one split, keyed like ``HR@5`` / ``NDCG@10``."""

    metrics: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def as_row(self) -> str:
        return "  ".join(f"{k}={v:.4f}" for k, v in sorted(self.metrics.items()))


class Evaluator:
    """Ranks the full catalog for every evaluation user.

    Models must expose ``predict_scores(input_ids) -> np.ndarray`` of
    shape ``(B, vocab_size)``; the padding column (item 0) is excluded
    from the candidate set during ranking.  Items already present in a
    user's history are *not* masked, matching the paper's protocol of
    ranking over the whole item set.

    Models additionally exposing ``score_context()`` (all
    :class:`~repro.core.encoder.SequentialEncoderBase` subclasses do)
    get their item table materialized once per evaluation pass and
    passed back via ``predict_scores(chunk, context=...)`` instead of
    being rebuilt per batch.

    Scores are ranked in whatever float dtype the model produced — no
    widening copy to float64 — and the model's score buffer is never
    written to, so models may return views of shared or cached state.
    """

    def __init__(
        self,
        dataset: SequenceDataset,
        ks: Sequence[int] = (5, 10),
        batch_size: int = 512,
        rank_chunk_size: int = 256,
    ) -> None:
        self.dataset = dataset
        self.ks = tuple(ks)
        self.batch_size = batch_size
        self.rank_chunk_size = rank_chunk_size

    def ranks(self, model, split: str = "test") -> np.ndarray:
        inputs, targets = self.dataset.eval_arrays(split)
        all_ranks = []
        model.eval()
        with no_grad():
            context = model.score_context() if hasattr(model, "score_context") else None
            for start in range(0, inputs.shape[0], self.batch_size):
                chunk = inputs[start : start + self.batch_size]
                chunk_targets = targets[start : start + self.batch_size]
                if context is not None:
                    scores = np.asarray(model.predict_scores(chunk, context=context))
                else:
                    scores = np.asarray(model.predict_scores(chunk))
                all_ranks.append(
                    rank_of_target(
                        scores,
                        chunk_targets,
                        exclude_padding=True,
                        chunk_size=self.rank_chunk_size,
                    )
                )
        return np.concatenate(all_ranks)

    def evaluate(self, model, split: str = "test") -> EvalResult:
        ranks = self.ranks(model, split=split)
        metrics: Dict[str, float] = {}
        for k in self.ks:
            metrics[f"HR@{k}"] = hit_ratio_at_k(ranks, k)
            metrics[f"NDCG@{k}"] = ndcg_at_k(ranks, k)
        return EvalResult(metrics)
