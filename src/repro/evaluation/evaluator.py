"""Leave-one-out evaluator over the full item catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.dataset import SequenceDataset
from repro.evaluation.metrics import hit_ratio_at_k, ndcg_at_k, rank_of_target

__all__ = ["Evaluator", "EvalResult"]


@dataclass
class EvalResult:
    """Metric bundle for one split, keyed like ``HR@5`` / ``NDCG@10``."""

    metrics: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def as_row(self) -> str:
        return "  ".join(f"{k}={v:.4f}" for k, v in sorted(self.metrics.items()))


class Evaluator:
    """Ranks the full catalog for every evaluation user.

    Models must expose ``predict_scores(input_ids) -> np.ndarray`` of
    shape ``(B, vocab_size)``; scores for the padding column (item 0)
    are masked to ``-inf`` before ranking.  Items already present in a
    user's history are *not* masked, matching the paper's protocol of
    ranking over the whole item set.
    """

    def __init__(self, dataset: SequenceDataset, ks: Sequence[int] = (5, 10), batch_size: int = 512) -> None:
        self.dataset = dataset
        self.ks = tuple(ks)
        self.batch_size = batch_size

    def ranks(self, model, split: str = "test") -> np.ndarray:
        inputs, targets = self.dataset.eval_arrays(split)
        all_ranks = []
        model.eval()
        with no_grad():
            for start in range(0, inputs.shape[0], self.batch_size):
                chunk = inputs[start : start + self.batch_size]
                chunk_targets = targets[start : start + self.batch_size]
                scores = np.asarray(model.predict_scores(chunk), dtype=np.float64)
                scores[:, 0] = -np.inf  # never recommend the padding id
                all_ranks.append(rank_of_target(scores, chunk_targets))
        return np.concatenate(all_ranks)

    def evaluate(self, model, split: str = "test") -> EvalResult:
        ranks = self.ranks(model, split=split)
        metrics: Dict[str, float] = {}
        for k in self.ks:
            metrics[f"HR@{k}"] = hit_ratio_at_k(ranks, k)
            metrics[f"NDCG@{k}"] = ndcg_at_k(ranks, k)
        return EvalResult(metrics)
