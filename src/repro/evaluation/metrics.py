"""Ranking metrics.

The paper evaluates with HR@K and NDCG@K over the *full* item catalog
(no negative sampling), following Krichene & Rendle's guidance on
unbiased sampled metrics.  With a single ground-truth item per user:

- ``HR@K`` is 1 when the target ranks in the top K, else 0;
- ``NDCG@K`` is ``1 / log2(rank + 2)`` when the target ranks in the
  top K (0-based rank), else 0 — the ideal DCG is 1 for a single
  relevant item.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["rank_of_target", "hit_ratio_at_k", "ndcg_at_k", "mrr", "mrr_at_k"]


def _rank_rows(scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
    rows = np.arange(scores.shape[0])
    target_scores = scores[rows, targets][:, None]
    higher = (scores > target_scores).sum(axis=1)
    equal_before = ((scores == target_scores) & (np.arange(scores.shape[1])[None, :] < targets[:, None])).sum(axis=1)
    return higher + equal_before


def rank_of_target(
    scores: np.ndarray,
    targets: np.ndarray,
    exclude_padding: bool = False,
    chunk_size: int | None = None,
) -> np.ndarray:
    """0-based rank of each row's target item under descending scores.

    Ties are counted pessimistically: items with a strictly higher
    score *and* equal-score items with a smaller id rank ahead, giving
    a deterministic result.

    Parameters
    ----------
    scores:
        ``(B, V)`` score matrix.  Never written to — padding exclusion
        works by ranking over a column-sliced view, so callers may pass
        views of shared or cached state safely.
    targets:
        ``(B,)`` integer target ids.
    exclude_padding:
        When True, column 0 (the padding item) is excluded from the
        candidate set entirely — equivalent to the classic
        ``scores[:, 0] = -inf`` masking, without mutating ``scores``.
    chunk_size:
        Optional row-chunk size bounding the ``(B, V)`` boolean
        temporaries this computation allocates; ranks are identical for
        any chunking.
    """
    scores = np.asarray(scores)
    targets = np.asarray(targets)
    if exclude_padding:
        if np.any(targets <= 0):
            raise ValueError("exclude_padding requires all targets to be real items (id >= 1)")
        scores = scores[:, 1:]
        targets = targets - 1
    if chunk_size is None or scores.shape[0] <= chunk_size:
        return _rank_rows(scores, targets)
    return np.concatenate(
        [
            _rank_rows(scores[start : start + chunk_size], targets[start : start + chunk_size])
            for start in range(0, scores.shape[0], chunk_size)
        ]
    )


def hit_ratio_at_k(ranks: Sequence[int], k: int) -> float:
    """Fraction of targets ranked within the top ``k``."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float((ranks < k).mean())


def ndcg_at_k(ranks: Sequence[int], k: int) -> float:
    """Mean NDCG@k for single-relevant-item ranking."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    gains = np.where(ranks < k, 1.0 / np.log2(ranks + 2.0), 0.0)
    return float(gains.mean())


def mrr(ranks: Sequence[int]) -> float:
    """Mean reciprocal rank (no cutoff)."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float((1.0 / (ranks + 1.0)).mean())


def mrr_at_k(ranks: Sequence[int], k: int) -> float:
    """MRR with reciprocal ranks beyond the top ``k`` truncated to 0."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float(np.where(ranks < k, 1.0 / (ranks + 1.0), 0.0).mean())
