"""Sampled-negative evaluation (provided for comparison, not default).

The paper deliberately ranks against the *full* catalog, citing
Krichene & Rendle (KDD 2020) on the bias of sampled metrics.  This
module implements the classic 1-positive + n-negatives protocol anyway
so users can quantify that bias themselves on their own data; the
docstring warning is the point.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.dataset import SequenceDataset
from repro.data.negative_sampling import NegativeSampler
from repro.evaluation.metrics import hit_ratio_at_k, ndcg_at_k

__all__ = ["SampledEvaluator"]


class SampledEvaluator:
    """Rank the target against ``num_negatives`` random unseen items.

    .. warning::
       Sampled metrics are *biased*: they overestimate HR/NDCG and can
       change model orderings.  Use :class:`~repro.evaluation.Evaluator`
       (full ranking) for paper-comparable numbers; use this class only
       to reproduce legacy protocols or to measure the bias.

    Negatives come from a shared
    :class:`~repro.data.negative_sampling.NegativeSampler` (uniform by
    default, matching the classic protocol; pass ``sampler`` for a
    popularity-weighted variant).  Each user's negatives are drawn in
    one vectorized without-replacement ``choice`` over the eligible set
    — a catalog with fewer than ``num_negatives`` unseen items raises a
    clear :class:`ValueError` instead of hanging in a rejection loop.
    """

    def __init__(
        self,
        dataset: SequenceDataset,
        ks: Sequence[int] = (5, 10),
        num_negatives: int = 100,
        seed: int = 0,
        sampler: Optional[NegativeSampler] = None,
    ) -> None:
        self.dataset = dataset
        self.ks = tuple(ks)
        self.num_negatives = num_negatives
        self.sampler = sampler or NegativeSampler(
            dataset.num_items, strategy="uniform", seed=seed
        )

    def _negatives_for(self, history: np.ndarray, target: int) -> np.ndarray:
        exclude = np.concatenate([np.asarray(history).reshape(-1), [0, int(target)]])
        return self.sampler.sample_excluding(exclude, self.num_negatives)

    def evaluate(self, model, split: str = "test") -> Dict[str, float]:
        inputs, targets = self.dataset.eval_arrays(split)
        model.eval()
        ranks = []
        with no_grad():
            scores = np.asarray(model.predict_scores(inputs), dtype=np.float64)
        for row, target in enumerate(targets):
            negatives = self._negatives_for(inputs[row], target)
            candidates = np.concatenate([[target], negatives])
            candidate_scores = scores[row, candidates]
            # Rank of the target (index 0) among the candidates.
            ranks.append(int((candidate_scores > candidate_scores[0]).sum()))
        ranks = np.asarray(ranks)
        metrics: Dict[str, float] = {}
        for k in self.ks:
            metrics[f"HR@{k}"] = hit_ratio_at_k(ranks, k)
            metrics[f"NDCG@{k}"] = ndcg_at_k(ranks, k)
        return metrics
