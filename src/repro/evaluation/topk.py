"""Top-k item selection shared by evaluation and the serving path.

Production ranking never needs a full sort of the catalog: a request
wants the ``k`` best items out of ``V`` (``k ~ 10``, ``V ~ 10^5-10^6``),
and ``np.argsort`` over every row is ``O(V log V)`` per user plus a
``(B, V)`` int64 index materialization.  This module provides:

- :func:`full_sort_topk` — the *reference* implementation: one stable
  full argsort per row.  Exact contract, used as the ground truth in
  property tests and as the "naive" serving baseline.
- :func:`blocked_topk` — the production implementation: walks the
  catalog in column blocks, keeps a per-row candidate pool of width
  ``k`` via ``np.argpartition`` (``O(V)`` total, never a full sort),
  and only sorts the final ``k``-wide pool.
- :class:`TopKAccumulator` — the streaming core of ``blocked_topk``,
  for callers that *produce* scores block-by-block (the serving path
  computes each block's scores from a cached half-precision item table
  and never materializes the full ``(B, V)`` matrix at all).

**Ordering contract** (all implementations, pinned by property tests):
items are returned by descending score; equal scores break ties by
ascending item id.  This matches ``np.argsort(-scores, kind="stable")``
and makes every path bit-for-bit comparable.

**Masking contract**: excluded columns (the padding item 0 and,
optionally, per-row "seen" item sets) never surface in the result.
Rows with fewer than ``k`` admissible items pad the tail of the result
with id ``-1`` / score ``-inf``.  Inputs are never written to — masking
happens on block copies — so callers may pass views of cached state.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

__all__ = ["TopKResult", "TopKAccumulator", "blocked_topk", "full_sort_topk"]


class TopKResult(NamedTuple):
    """Ranked recommendation lists: ``ids[b, 0]`` is row ``b``'s best item.

    ``ids`` is ``(B, k')`` int64, ``scores`` the matching score values in
    the scoring dtype; ``k' = min(k, candidate_count)``.  Excluded /
    inadmissible tail slots hold id ``-1`` and score ``-inf``.

    ``degraded`` is ``False`` for every model-path ranking; the serving
    fallback ranker (:mod:`repro.serving.fallback`) sets it ``True`` so
    callers can tell a popularity answer from a personalized one.  The
    masking contract is identical either way.
    """

    ids: np.ndarray
    scores: np.ndarray
    degraded: bool = False


def _mask_block(
    block: np.ndarray,
    start: int,
    stop: int,
    exclude: Optional[Sequence[np.ndarray]],
    exclude_padding: bool,
    writable: bool,
) -> np.ndarray:
    """Apply column-0 and per-row seen-item masks to one score block.

    Copies the block first unless the caller owns it (``writable``);
    returns it untouched when nothing in ``[start, stop)`` is masked.
    """
    needs_padding = exclude_padding and start == 0
    rows_hit = []
    if exclude is not None:
        for row, ids in enumerate(exclude):
            if ids is None or len(ids) == 0:
                rows_hit.append(None)
                continue
            ids = np.asarray(ids, dtype=np.int64)
            local = ids[(ids >= start) & (ids < stop)] - start
            rows_hit.append(local if local.size else None)
        if all(h is None for h in rows_hit):
            rows_hit = []
    if not needs_padding and not rows_hit:
        return block
    if not writable:
        block = block.copy()
    neg_inf = -np.inf
    if needs_padding:
        block[:, 0] = neg_inf
    for row, local in enumerate(rows_hit):
        if local is not None:
            block[row, local] = neg_inf
    return block


def _select_topk(scores: np.ndarray, ids: np.ndarray, k: int) -> tuple:
    """Exact unordered top-k of each row by (score desc, id asc).

    ``np.argpartition`` gives the k best scores per row with arbitrary
    tie resolution at the boundary; rows where equal-score candidates
    straddle that boundary are repaired to keep the *smallest ids*
    among the threshold ties, so the selected set always matches the
    stable full-sort reference.
    """
    n = scores.shape[1]
    if k >= n:
        return scores, ids
    part = np.argpartition(scores, n - k, axis=1)[:, n - k :]
    sel_scores = np.take_along_axis(scores, part, axis=1)
    sel_ids = np.take_along_axis(ids, part, axis=1)
    thr = sel_scores.min(axis=1)
    # Boundary-tie repair: a row needs it when candidates tied with the
    # k-th score exist outside the selection (the partition then chose
    # an arbitrary — possibly id-wise wrong — subset of the ties).
    total_ties = (scores == thr[:, None]).sum(axis=1)
    kept_ties = (sel_scores == thr[:, None]).sum(axis=1)
    for row in np.flatnonzero(total_ties > kept_ties):
        row_scores = scores[row]
        greater = np.flatnonzero(row_scores > thr[row])
        tied = np.flatnonzero(row_scores == thr[row])
        need = k - greater.size
        tied = tied[np.argsort(ids[row, tied], kind="stable")][:need]
        chosen = np.concatenate([greater, tied])
        sel_scores[row] = row_scores[chosen]
        sel_ids[row] = ids[row, chosen]
    return sel_scores, sel_ids


def _order_pool(pool_scores: np.ndarray, pool_ids: np.ndarray) -> TopKResult:
    """Sort a (B, k) candidate pool by (score desc, id asc); pad misses."""
    order = np.lexsort((pool_ids, -pool_scores), axis=-1)
    scores = np.take_along_axis(pool_scores, order, axis=1)
    ids = np.take_along_axis(pool_ids, order, axis=1).astype(np.int64, copy=False)
    dead = np.isneginf(scores)
    if dead.any():
        ids = np.where(dead, -1, ids)
    return TopKResult(ids=ids, scores=scores)


class TopKAccumulator:
    """Streaming top-k over score blocks that arrive column-range by range.

    Usage: construct with the batch size and ``k``, feed each scored
    block with :meth:`update`, read the ranked result with
    :meth:`result`.  Blocks may arrive in any order and cover any
    column ranges; ids are global column indices (``start`` offsets the
    block).  The accumulator keeps one ``(B, <=k)`` score/id pool and
    merges each block with a single ``argpartition`` — memory is
    ``O(B * (k + block))``, work is ``O(B * V)`` overall.

    ``update`` treats the incoming block as read-only unless
    ``writable=True`` (the serving path passes freshly GEMM'd buffers
    it owns, avoiding a copy when masking).
    """

    def __init__(self, batch: int, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.batch = int(batch)
        self.k = int(k)
        self._pool_scores: Optional[np.ndarray] = None
        self._pool_ids: Optional[np.ndarray] = None

    def update(
        self,
        start: int,
        block: np.ndarray,
        exclude: Optional[Sequence[np.ndarray]] = None,
        exclude_padding: bool = True,
        writable: bool = False,
    ) -> None:
        block = np.asarray(block)
        if block.ndim != 2 or block.shape[0] != self.batch:
            raise ValueError(
                f"expected a ({self.batch}, block) score matrix, got {block.shape}"
            )
        stop = start + block.shape[1]
        block = _mask_block(block, start, stop, exclude, exclude_padding, writable)
        ids = np.broadcast_to(np.arange(start, stop, dtype=np.int64), block.shape)
        if self._pool_scores is None:
            merged_scores, merged_ids = block, ids
        else:
            merged_scores = np.concatenate([self._pool_scores, block], axis=1)
            merged_ids = np.concatenate([self._pool_ids, ids], axis=1)
        sel_scores, sel_ids = _select_topk(merged_scores, merged_ids, self.k)
        # Own the pool memory: the merged arrays alias the caller's block
        # when it fits entirely (first update with block <= k columns).
        self._pool_scores = np.array(sel_scores, copy=True)
        self._pool_ids = np.array(sel_ids, copy=True)

    def result(self) -> TopKResult:
        """Ranked ``TopKResult`` over everything seen so far."""
        if self._pool_scores is None:
            raise ValueError("TopKAccumulator.result() before any update()")
        return _order_pool(self._pool_scores, self._pool_ids)


def blocked_topk(
    scores: np.ndarray,
    k: int,
    block_size: int = 8192,
    exclude: Optional[Sequence[np.ndarray]] = None,
    exclude_padding: bool = True,
) -> TopKResult:
    """Top-k of each row of ``(B, V)`` ``scores`` without a full sort.

    Walks the columns in blocks of ``block_size`` through a
    :class:`TopKAccumulator`; see the module docstring for the ordering
    and masking contracts.  ``scores`` is never written to.
    """
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise ValueError(f"expected (B, V) scores, got shape {scores.shape}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    acc = TopKAccumulator(scores.shape[0], k)
    for start in range(0, scores.shape[1], block_size):
        acc.update(
            start,
            scores[:, start : start + block_size],
            exclude=exclude,
            exclude_padding=exclude_padding,
        )
    return acc.result()


def full_sort_topk(
    scores: np.ndarray,
    k: int,
    exclude: Optional[Sequence[np.ndarray]] = None,
    exclude_padding: bool = True,
) -> TopKResult:
    """Reference top-k: one stable full argsort per row.

    Same contract as :func:`blocked_topk` (the property tests pin the
    two equal); ``O(B * V log V)`` and materializes a full ``(B, V)``
    index matrix, so production paths should prefer the blocked
    version.  ``scores`` is never written to.
    """
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise ValueError(f"expected (B, V) scores, got shape {scores.shape}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    masked = _mask_block(
        scores, 0, scores.shape[1], exclude, exclude_padding, writable=False
    )
    k = min(k, scores.shape[1])
    order = np.argsort(-masked, axis=1, kind="stable")[:, :k]
    top_scores = np.take_along_axis(masked, order, axis=1)
    ids = order.astype(np.int64, copy=False)
    dead = np.isneginf(top_scores)
    if dead.any():
        ids = np.where(dead, -1, ids)
    return TopKResult(ids=ids, scores=top_scores)
