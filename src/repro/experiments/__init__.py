"""Experiment harness: one runnable per paper table/figure.

Each experiment function accepts an :class:`ExperimentBudget` that
scales dataset size and training epochs, so the same code serves both
quick CI benchmarks (small budget) and full reproduction runs (large
budget).  ``EXPERIMENTS`` maps experiment ids (``table1`` .. ``fig7``,
``complexity``) to their runners.
"""

from repro.experiments.common import ExperimentBudget, run_model
from repro.experiments.tables import (
    run_table1_dataset_stats,
    run_table2_overall_performance,
    run_table3_filter_module_designs,
    run_table4_slide_modes,
    run_table5_depth_comparison,
)
from repro.experiments.figures import (
    run_fig3_ablation,
    run_fig4_alpha_sweep,
    run_fig5_seqlen_and_hidden,
    run_fig6_noise_robustness,
    run_fig7_filter_visualization,
)
from repro.experiments.complexity import run_complexity_comparison
from repro.experiments.visualization import ascii_heatmap

EXPERIMENTS = {
    "table1": run_table1_dataset_stats,
    "table2": run_table2_overall_performance,
    "table3": run_table3_filter_module_designs,
    "table4": run_table4_slide_modes,
    "table5": run_table5_depth_comparison,
    "fig3": run_fig3_ablation,
    "fig4": run_fig4_alpha_sweep,
    "fig5": run_fig5_seqlen_and_hidden,
    "fig6": run_fig6_noise_robustness,
    "fig7": run_fig7_filter_visualization,
    "complexity": run_complexity_comparison,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentBudget",
    "run_model",
    "ascii_heatmap",
    "run_table1_dataset_stats",
    "run_table2_overall_performance",
    "run_table3_filter_module_designs",
    "run_table4_slide_modes",
    "run_table5_depth_comparison",
    "run_fig3_ablation",
    "run_fig4_alpha_sweep",
    "run_fig5_seqlen_and_hidden",
    "run_fig6_noise_robustness",
    "run_fig7_filter_visualization",
    "run_complexity_comparison",
]
