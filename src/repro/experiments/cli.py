"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.cli table2 --budget small
    python -m repro.experiments.cli fig4 --budget quick
    python -m repro.experiments.cli all --budget quick

Budgets: ``quick`` (seconds-scale CI budget), ``small`` (minutes),
``full`` (the complete preset sizes and paper-scale epochs).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.experiments import EXPERIMENTS, ExperimentBudget

__all__ = ["main"]

_BUDGETS = {
    "quick": ExperimentBudget.quick,
    "small": ExperimentBudget.small,
    "full": ExperimentBudget,
}


def _to_jsonable(value):
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate SLIME4Rec paper tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument("--budget", choices=sorted(_BUDGETS), default="quick")
    parser.add_argument("--json", action="store_true", help="print raw JSON")
    args = parser.parse_args(argv)

    budget = _BUDGETS[args.budget]()
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = EXPERIMENTS[name]
        start = time.time()
        result = runner(budget) if name != "complexity" else runner()
        elapsed = time.time() - start
        print(f"\n### {name} ({elapsed:.1f}s)")
        if args.json:
            print(json.dumps(_to_jsonable(result), indent=2))
        else:
            for key, value in _to_jsonable(result).items():
                print(f"{key:<44} {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
