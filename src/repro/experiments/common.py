"""Shared experiment infrastructure: budgets, model runs, caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.baselines import build_baseline
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import load_preset
from repro.train import TrainConfig, Trainer

__all__ = ["ExperimentBudget", "run_model"]


@dataclass
class ExperimentBudget:
    """Scales every experiment between CI-quick and full reproduction.

    Attributes
    ----------
    scale:
        Multiplier on synthetic user/item counts (1.0 = preset size).
    epochs:
        Training epochs per model.
    max_len:
        Sequence length ``N`` (paper default 50).
    hidden_dim:
        Model width ``d`` (paper default 64).
    batch_size, patience, seed:
        Trainer knobs.
    datasets:
        Which presets to touch; ``None`` means all five.
    """

    scale: float = 1.0
    epochs: int = 30
    max_len: int = 50
    hidden_dim: int = 64
    batch_size: int = 256
    patience: int = 5
    seed: int = 0
    datasets: Optional[list] = None
    _dataset_cache: Dict[str, SequenceDataset] = field(default_factory=dict, repr=False)

    @classmethod
    def quick(cls) -> "ExperimentBudget":
        """The CI/benchmark budget: tiny datasets, few epochs."""
        return cls(
            scale=0.12, epochs=3, max_len=16, hidden_dim=24,
            batch_size=128, patience=0, datasets=["beauty", "ml1m"],
        )

    @classmethod
    def small(cls) -> "ExperimentBudget":
        """A few-minutes budget giving meaningful orderings."""
        return cls(
            scale=0.3, epochs=10, max_len=24, hidden_dim=32,
            batch_size=256, patience=3,
        )

    def dataset(self, name: str) -> SequenceDataset:
        if name not in self._dataset_cache:
            self._dataset_cache[name] = load_preset(
                name, scale=self.scale, max_len=self.max_len
            )
        return self._dataset_cache[name]

    def dataset_names(self) -> list:
        return self.datasets or ["beauty", "clothing", "sports", "ml1m", "yelp"]

    def train_config(self) -> TrainConfig:
        return TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            patience=self.patience,
            seed=self.seed,
        )


def run_model(
    model_name: str,
    dataset: SequenceDataset,
    budget: ExperimentBudget,
    num_layers: int = 2,
    **model_overrides,
) -> Dict[str, float]:
    """Train one model on one dataset and return its test metrics."""
    model = build_baseline(
        model_name,
        dataset,
        hidden_dim=budget.hidden_dim,
        num_layers=num_layers,
        seed=budget.seed,
        **model_overrides,
    )
    needs_positive = model_name in ("DuoRec", "SLIME4Rec")
    trainer = Trainer(model, dataset, budget.train_config(), with_same_target=needs_positive)
    trainer.fit()
    return dict(trainer.test().metrics)
