"""Section III-F: runtime comparison of filter mixer vs self-attention.

The paper argues the filter mixer costs ``O(n log n * d)`` against
self-attention's ``O(n^2 d + n d^2)``.  This experiment measures the
wall-clock forward+backward time of a single layer of each kind over a
range of sequence lengths, so the scaling *shape* can be checked.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

import numpy as np

from repro.autograd.spectral import num_frequency_bins
from repro.autograd.tensor import Tensor
from repro.core.filter_mixer import FilterMixerLayer
from repro.nn import MultiHeadSelfAttention

__all__ = ["run_complexity_comparison"]


def _time_layer(forward, batch: int, n: int, d: int, repeats: int) -> float:
    rng = np.random.default_rng(0)
    best = np.inf
    for _ in range(repeats):
        x = Tensor(rng.normal(size=(batch, n, d)).astype(np.float32), requires_grad=True)
        start = time.perf_counter()
        out = forward(x)
        out.sum().backward()
        best = min(best, time.perf_counter() - start)
    return best


def run_complexity_comparison(
    seq_lens: Sequence[int] = (16, 32, 64, 128),
    hidden_dim: int = 64,
    batch: int = 32,
    repeats: int = 3,
) -> Dict[str, Dict[int, float]]:
    """Milliseconds per forward+backward of one layer, by sequence length."""
    results: Dict[str, Dict[int, float]] = {"filter_mixer": {}, "self_attention": {}}
    for n in seq_lens:
        m = num_frequency_bins(n)
        mixer = FilterMixerLayer(
            n, hidden_dim, np.ones(m), np.ones(m), rng=np.random.default_rng(0)
        )
        mixer.eval()
        attention = MultiHeadSelfAttention(
            hidden_dim, 2, causal=True, rng=np.random.default_rng(0)
        )
        attention.eval()
        results["filter_mixer"][n] = 1e3 * _time_layer(mixer, batch, n, hidden_dim, repeats)
        results["self_attention"][n] = 1e3 * _time_layer(attention, batch, n, hidden_dim, repeats)
    return results
