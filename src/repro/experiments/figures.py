"""Runners for the paper's Figures 3-7."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import build_baseline
from repro.core import Slime4Rec, SlimeConfig
from repro.experiments.common import ExperimentBudget, run_model
from repro.train import Trainer

__all__ = [
    "run_fig3_ablation",
    "run_fig4_alpha_sweep",
    "run_fig5_seqlen_and_hidden",
    "run_fig6_noise_robustness",
    "run_fig7_filter_visualization",
]


def run_fig3_ablation(budget: ExperimentBudget) -> Dict[str, Dict[str, float]]:
    """Figure 3: full model vs w/oC, w/oD, w/oS variants (+ DuoRec)."""
    variants = {
        "SLIME4Rec": {},
        "w/oC": {"cl_weight": 0.0},
        "w/oD": {"use_dfs": False},
        "w/oS": {"use_sfs": False},
    }
    results: Dict[str, Dict[str, float]] = {}
    for ds_name in budget.dataset_names():
        dataset = budget.dataset(ds_name)
        for label, overrides in variants.items():
            results[f"{ds_name}/{label}"] = run_model(
                "SLIME4Rec", dataset, budget, **overrides
            )
        results[f"{ds_name}/DuoRec"] = run_model("DuoRec", dataset, budget)
    return results


def run_fig4_alpha_sweep(
    budget: ExperimentBudget, alphas: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
) -> Dict[str, Dict[str, float]]:
    """Figure 4: relative improvement over DuoRec across filter sizes."""
    results: Dict[str, Dict[str, float]] = {}
    for ds_name in budget.dataset_names():
        dataset = budget.dataset(ds_name)
        duorec = run_model("DuoRec", dataset, budget)
        results[f"{ds_name}/DuoRec"] = duorec
        for alpha in alphas:
            ours = run_model("SLIME4Rec", dataset, budget, alpha=alpha)
            ours["improvement_HR@5_%"] = round(
                (ours["HR@5"] - duorec["HR@5"]) / max(duorec["HR@5"], 1e-9) * 100, 2
            )
            results[f"{ds_name}/alpha={alpha}"] = ours
    return results


def run_fig5_seqlen_and_hidden(
    budget: ExperimentBudget,
    seq_lens: Sequence[int] = (8, 16, 24),
    hidden_dims: Sequence[int] = (16, 32, 64),
) -> Dict[str, Dict[str, float]]:
    """Figure 5: sensitivity to max sequence length N and hidden size d."""
    from repro.data.synthetic import load_preset

    results: Dict[str, Dict[str, float]] = {}
    for ds_name in budget.dataset_names():
        for n in seq_lens:
            dataset = load_preset(ds_name, scale=budget.scale, max_len=n)
            results[f"{ds_name}/N={n}"] = run_model("SLIME4Rec", dataset, budget)
        dataset = budget.dataset(ds_name)
        for d in hidden_dims:
            model = build_baseline(
                "SLIME4Rec", dataset, hidden_dim=d, seed=budget.seed
            )
            trainer = Trainer(model, dataset, budget.train_config(), with_same_target=True)
            trainer.fit()
            results[f"{ds_name}/d={d}"] = dict(trainer.test().metrics)
    return results


def run_fig6_noise_robustness(
    budget: ExperimentBudget, eps_values: Sequence[float] = (0.0, 0.1, 0.2, 0.4)
) -> Dict[str, Dict[str, float]]:
    """Figure 6: HR@5 under injected uniform representation noise.

    Each model is trained clean, then evaluated with noise of magnitude
    ``eps`` injected at every layer input (both SLIME4Rec and DuoRec
    implement :meth:`inject_noise`).
    """
    results: Dict[str, Dict[str, float]] = {}
    for ds_name in budget.dataset_names():
        dataset = budget.dataset(ds_name)
        for model_name in ("SLIME4Rec", "DuoRec"):
            model = build_baseline(
                model_name, dataset, hidden_dim=budget.hidden_dim, seed=budget.seed
            )
            trainer = Trainer(model, dataset, budget.train_config(), with_same_target=True)
            trainer.fit()
            for eps in eps_values:
                model.noise_eps = eps
                metrics = trainer.evaluator.evaluate(model, split="test").metrics
                results[f"{ds_name}/{model_name}/eps={eps}"] = dict(metrics)
            model.noise_eps = 0.0
    return results


def run_fig7_filter_visualization(budget: ExperimentBudget) -> Dict[str, np.ndarray]:
    """Figure 7: amplitudes of the learned DFS/SFS filters.

    Trains a small SLIME4Rec (alpha < 1/L so SFS must recapture gaps,
    matching the paper's alpha=0.1, beta=0.25 setting) and returns the
    per-layer amplitude maps plus the DFS/SFS coverage differential.
    """
    ds_name = budget.dataset_names()[0]
    dataset = budget.dataset(ds_name)
    config = SlimeConfig(
        num_items=dataset.num_items,
        max_len=dataset.max_len,
        hidden_dim=budget.hidden_dim,
        num_layers=4,
        alpha=0.1,
        seed=budget.seed,
    )
    model = Slime4Rec(config)
    trainer = Trainer(model, dataset, budget.train_config(), with_same_target=True)
    trainer.fit()
    amplitudes = model.filter_amplitudes()
    dfs_coverage = np.clip(
        np.sum([(a.sum(axis=1) > 0) for a in amplitudes["dfs"]], axis=0), 0, 1
    )
    sfs_coverage = np.clip(
        np.sum([(a.sum(axis=1) > 0) for a in amplitudes["sfs"]], axis=0), 0, 1
    )
    return {
        "dfs_amplitude": np.stack([a.mean(axis=1) for a in amplitudes["dfs"]]),
        "sfs_amplitude": np.stack([a.mean(axis=1) for a in amplitudes["sfs"]]),
        "dfs_coverage": dfs_coverage,
        "sfs_coverage": sfs_coverage,
        "recaptured_by_sfs": np.clip(sfs_coverage - dfs_coverage, 0, 1),
    }
