"""Runners for the paper's Tables I-V."""

from __future__ import annotations

from typing import Dict, List

from repro.baselines import BASELINE_NAMES
from repro.experiments.common import ExperimentBudget, run_model

__all__ = [
    "run_table1_dataset_stats",
    "run_table2_overall_performance",
    "run_table3_filter_module_designs",
    "run_table4_slide_modes",
    "run_table5_depth_comparison",
]


def run_table1_dataset_stats(budget: ExperimentBudget) -> Dict[str, Dict[str, float]]:
    """Table I: statistics of the five datasets after preprocessing."""
    rows: Dict[str, Dict[str, float]] = {}
    for name in budget.dataset_names():
        stats = budget.dataset(name).stats()
        rows[name] = {
            "users": stats.num_users,
            "items": stats.num_items,
            "avg_length": round(stats.avg_length, 2),
            "actions": stats.num_actions,
            "sparsity": round(stats.sparsity, 4),
        }
    return rows


def run_table2_overall_performance(
    budget: ExperimentBudget, models: List[str] | None = None
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Table II: HR/NDCG@{5,10} for every model on every dataset.

    Returns ``{dataset: {model: metrics}}`` plus the relative
    improvement of SLIME4Rec over the best baseline per metric.
    """
    models = models or BASELINE_NAMES
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for ds_name in budget.dataset_names():
        dataset = budget.dataset(ds_name)
        table[ds_name] = {}
        for model_name in models:
            table[ds_name][model_name] = run_model(model_name, dataset, budget)
        if "SLIME4Rec" in models and len(models) > 1:
            table[ds_name]["_improvement_vs_best_baseline"] = _improvement(
                table[ds_name], models
            )
    return table


def _improvement(rows: Dict[str, Dict[str, float]], models: List[str]) -> Dict[str, float]:
    ours = rows["SLIME4Rec"]
    improvements = {}
    for metric in ours:
        best = max(
            rows[m][metric] for m in models if m != "SLIME4Rec"
        )
        improvements[metric] = round((ours[metric] - best) / max(best, 1e-9) * 100, 2)
    return improvements


def run_table3_filter_module_designs(budget: ExperimentBudget) -> Dict[str, Dict[str, float]]:
    """Table III: DFS-only vs DFS+SFS at L in {2,4,8}, alpha ~ 1/L-ish.

    The paper pairs (L=2, alpha=0.3), (L=4, alpha=0.2), (L=8, alpha=0.1)
    and contrasts DFS alone against DFS mixed with SFS (beta = 1/L).
    """
    results: Dict[str, Dict[str, float]] = {}
    pairs = [(2, 0.3), (4, 0.2), (8, 0.1)]
    for ds_name in budget.dataset_names():
        dataset = budget.dataset(ds_name)
        for layers, alpha in pairs:
            dfs_only = run_model(
                "SLIME4Rec", dataset, budget, num_layers=layers,
                alpha=alpha, use_sfs=False,
            )
            both = run_model(
                "SLIME4Rec", dataset, budget, num_layers=layers, alpha=alpha,
            )
            results[f"{ds_name}/L={layers}/alpha={alpha}/DFS"] = dfs_only
            results[f"{ds_name}/L={layers}/alpha={alpha}/DFS+SFS"] = both
    return results


def run_table4_slide_modes(budget: ExperimentBudget) -> Dict[str, Dict[str, float]]:
    """Table IV: the four frequency-ramp slide direction combinations."""
    results: Dict[str, Dict[str, float]] = {}
    for ds_name in budget.dataset_names():
        dataset = budget.dataset(ds_name)
        for mode in (1, 2, 3, 4):
            results[f"{ds_name}/mode{mode}"] = run_model(
                "SLIME4Rec", dataset, budget, slide_mode=mode
            )
    return results


def run_table5_depth_comparison(budget: ExperimentBudget) -> Dict[str, Dict[str, float]]:
    """Table V: SLIME4Rec vs DuoRec at L in {2, 4, 8}."""
    results: Dict[str, Dict[str, float]] = {}
    for ds_name in budget.dataset_names():
        dataset = budget.dataset(ds_name)
        for layers in (2, 4, 8):
            # Smaller alpha for deeper models, as the paper tunes.
            alpha = {2: 0.4, 4: 0.2, 8: 0.1}[layers]
            results[f"{ds_name}/L={layers}/DuoRec"] = run_model(
                "DuoRec", dataset, budget, num_layers=layers
            )
            results[f"{ds_name}/L={layers}/SLIME4Rec"] = run_model(
                "SLIME4Rec", dataset, budget, num_layers=layers, alpha=alpha
            )
    return results
