"""Terminal-friendly visualization of learned filters (Figure 7)."""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_heatmap"]

_SHADES = " .:-=+*#%@"


def ascii_heatmap(matrix: np.ndarray, title: str = "", width: int = 64) -> str:
    """Render a 2-D non-negative matrix as an ASCII heat map.

    Rows are layers, columns frequency bins (downsampled to ``width``).
    Darker characters mean larger amplitude — the textual analogue of
    the paper's Figure 7 filter plots.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    if matrix.shape[1] > width:
        # Average-pool columns down to the display width.
        edges = np.linspace(0, matrix.shape[1], width + 1).astype(int)
        matrix = np.stack(
            [matrix[:, a:b].mean(axis=1) for a, b in zip(edges[:-1], edges[1:])], axis=1
        )
    lo, hi = matrix.min(), matrix.max()
    scale = (len(_SHADES) - 1) / (hi - lo) if hi > lo else 0.0
    lines = [title] if title else []
    for row_idx, row in enumerate(matrix):
        chars = "".join(_SHADES[int((v - lo) * scale)] for v in row)
        lines.append(f"layer {row_idx}: |{chars}|")
    lines.append(f"{'':>9}low freq {'-' * max(0, matrix.shape[1] - 18)} high freq")
    return "\n".join(lines)
