"""Neural-network modules built on the repro autograd engine.

The package mirrors the ``torch.nn`` layout at miniature scale:
:class:`Module`/:class:`Parameter` provide attribute-based parameter
registration (:mod:`repro.nn.module`), the concrete layers live in one
file each, and :mod:`repro.nn.init` owns weight initialization plus the
process-wide parameter-dtype knob (float64 default, float32 fast path).
:mod:`repro.nn.workspace` is the shared per-step compute workspace that
the hot paths (fused Q/K/V attention, the spectral mixer's FFT scratch,
dropout mask draws) allocate through; ``pydoc repro.nn.<module>`` on
any submodule documents its shapes and dtype contract.
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.linear import Linear
from repro.nn.embedding import Embedding
from repro.nn.normalization import LayerNorm
from repro.nn.dropout import Dropout
from repro.nn.activation import GELU, ReLU, Tanh, Sigmoid
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.recurrent import GRU
from repro.nn.conv import HorizontalConv, VerticalConv
from repro.nn import init
from repro.nn import workspace

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "GELU",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "MultiHeadSelfAttention",
    "GRU",
    "HorizontalConv",
    "VerticalConv",
    "init",
    "workspace",
]
