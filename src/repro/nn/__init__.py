"""Neural-network modules built on the repro autograd engine."""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.linear import Linear
from repro.nn.embedding import Embedding
from repro.nn.normalization import LayerNorm
from repro.nn.dropout import Dropout
from repro.nn.activation import GELU, ReLU, Tanh, Sigmoid
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.recurrent import GRU
from repro.nn.conv import HorizontalConv, VerticalConv
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "GELU",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "MultiHeadSelfAttention",
    "GRU",
    "HorizontalConv",
    "VerticalConv",
    "init",
]
