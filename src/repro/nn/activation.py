"""Activation modules (thin wrappers over functional ops).

Shapes and dtype contract: elementwise over any floating input; output
and gradients keep the input's shape and dtype.  :class:`GELU` is the
tanh approximation used by the paper's FFN, with cubes expanded to
multiplies and intermediates folded in place on both passes (see
:func:`repro.autograd.functional.gelu`); the others are textbook.
"""

from __future__ import annotations

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["GELU", "ReLU", "Tanh", "Sigmoid"]


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)
