"""Activation modules (thin wrappers over functional ops)."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["GELU", "ReLU", "Tanh", "Sigmoid"]


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)
