"""Multi-head self-attention (used by the Transformer baselines).

SLIME4Rec itself is attention-free; this module exists so SASRec,
BERT4Rec, CL4SRec, CoSeRec, DuoRec and ContrastVAE can be reproduced on
the same substrate, and so the Section III-F complexity comparison has a
real self-attention implementation to benchmark against.

Shapes and dtype contract
-------------------------
Input is ``(B, N, dim)`` with ``dim = num_heads * head_dim``; scores
and attention probabilities are ``(B, H, N, N)``; output is
``(B, N, dim)``.  All activations and gradients stay in the parameter
dtype (float32 or float64, see :mod:`repro.nn.init`).

Fused fast path
---------------
By default (``fused=True``) the layer runs on the shared per-step
workspace (:mod:`repro.nn.workspace`):

- the three Q/K/V projections collapse into a **single** ``(dim, 3*dim)``
  GEMM against a parameter-version-cached concatenation of the three
  weight matrices (the parameters themselves stay three separate
  ``Linear`` modules, so checkpoints, seeds and ``state_dict`` layouts
  are unchanged);
- the ``1/sqrt(head_dim)`` score scale is folded into the Q slab of
  that GEMM's output, removing two full ``(B, H, N, N)`` multiplies per
  step;
- the head split happens once on the packed ``(B, N, 3*dim)`` result,
  and the output projection consumes the ``(B, H, N, head_dim)``
  context directly — no separate transpose/reshape autograd nodes;
- causal and diagonal mask patterns are cached per sequence length.

``fused=False`` (or any projection built without a bias) falls back to
the seed implementation composed of primitive autograd ops; the test
suite checks both paths agree on values and gradients in both dtypes.
The two paths draw identical dropout masks per seed — the probability
tensor has the same shape in both — but fused values differ from
unfused at the usual floating-point reassociation tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.graph import record_host, record_node
from repro.autograd.tensor import Tensor, is_grad_enabled
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.workspace import ParamCache, get_workspace

__all__ = ["MultiHeadSelfAttention", "causal_mask"]


def causal_mask(n: int) -> np.ndarray:
    """Boolean (n, n) mask that is True where attention must be blocked."""
    return np.triu(np.ones((n, n), dtype=bool), k=1)


def _readonly(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


def _fused_qkv_heads(
    x: Tensor,
    params: tuple,
    qkv_cat,
    num_heads: int,
    scale: float,
) -> tuple:
    """Project ``x`` to head-split Q, K, V with one ``(d, 3d)`` GEMM.

    Returns three sibling autograd nodes of shape ``(B, H, N, hd)``;
    Q already carries the ``scale`` factor.  ``params`` is the tuple
    ``(wq, bq, wk, bk, wv, bv)`` of the *original* projection
    parameters — gradients are routed back to them by splitting the
    fused GEMM's weight/bias gradients, so the fusion is invisible to
    optimizers and checkpoints.  ``qkv_cat`` is a zero-argument
    callable returning the cached ``(w_cat, b_cat)`` concatenation; it
    is invoked on every forward evaluation (build and static-graph
    replay alike) so replays observe post-optimizer weights.

    The backward pass is fused too: each sibling contributes its
    incoming gradient to one slab of a shared ``(3, B, H, N, hd)``
    buffer, and the third arrival runs the combined ``(B*N, 3d)``
    GEMM pair for the input and weight gradients.  All three outputs
    must therefore participate in the loss (they always do inside
    attention); an output dropped from the graph would silently
    swallow the shared gradient.
    """
    batch, length, dim = x.shape
    head_dim = dim // num_heads
    w_cat = b_cat = x2 = packed = None

    def forward():
        # Replay closure: re-fetches the concatenated weights and the
        # live input array every call; ``w_cat``/``x2``/``packed`` are
        # rebound for the backward closure, which shares these cells.
        nonlocal w_cat, b_cat, x2, packed
        w_cat, b_cat = qkv_cat()
        x2 = x.data.reshape(-1, dim)  # (B*N, d) view
        qkv = x2 @ w_cat
        qkv += b_cat
        if scale != 1.0:
            qkv[:, :dim] *= scale
        packed = np.ascontiguousarray(
            qkv.reshape(batch, length, 3, num_heads, head_dim).transpose(2, 0, 3, 1, 4)
        )  # (3, B, H, N, hd)
        return packed[0], packed[1], packed[2]

    forward()

    needs_grad = is_grad_enabled() and (
        x.requires_grad or x._backward is not None or any(p.requires_grad for p in params)
    )
    if not needs_grad:
        outs = tuple(Tensor(packed[i]) for i in range(3))
        record_node(outs, forward, "fused_qkv")
        return outs

    parents = (x,) + tuple(params)
    state = {"arrived": 0, "gbuf": None}

    def make_backward(slot: int):
        def backward(grad):
            if state["gbuf"] is None:
                state["gbuf"] = np.empty(packed.shape, dtype=x.dtype)
            np.copyto(state["gbuf"][slot], grad)
            state["arrived"] += 1
            if state["arrived"] < 3:
                return None
            # Reset so a second backward over a shared graph starts a
            # fresh accumulation round instead of reading stale slabs.
            state["arrived"] = 0
            g = np.ascontiguousarray(state["gbuf"].transpose(1, 3, 0, 2, 4)).reshape(
                batch * length, 3 * dim
            )
            if scale != 1.0:
                g[:, :dim] *= scale
            gx = (g @ w_cat.T).reshape(batch, length, dim)
            gw = x2.T @ g  # (d, 3d)
            gb = g.sum(axis=0)  # (3d,)
            return (
                gx,
                gw[:, :dim], gb[:dim],
                gw[:, dim:2 * dim], gb[dim:2 * dim],
                gw[:, 2 * dim:], gb[2 * dim:],
            )

        return backward

    outs = tuple(
        Tensor(packed[i], _parents=parents, _backward=make_backward(i)) for i in range(3)
    )
    record_node(outs, forward, "fused_qkv")
    return outs


def _attention_output(context: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """Output projection fused with the head merge.

    Consumes the ``(B, H, N, hd)`` context directly: one contiguous
    ``(B, N, d)`` copy feeds the GEMM, instead of the seed's separate
    transpose + reshape autograd nodes and an extra broadcast-add for
    the bias.
    """
    batch, heads, length, head_dim = context.shape
    dim = heads * head_dim
    ctx2 = None

    def forward():
        # Replay closure: ``ctx2`` is rebound for the backward closure.
        nonlocal ctx2
        ctx2 = context.data.transpose(0, 2, 1, 3).reshape(batch * length, dim)  # copies
        out = ctx2 @ weight.data
        out += bias.data
        return out.reshape(batch, length, dim)

    out = forward()

    needs_grad = is_grad_enabled() and (
        context.requires_grad
        or context._backward is not None
        or weight.requires_grad
        or bias.requires_grad
    )
    if not needs_grad:
        result = Tensor(out)
        record_node(result, forward, "attention_output")
        return result

    def backward(grad):
        g2 = grad.reshape(batch * length, dim)
        gctx = np.ascontiguousarray(
            (g2 @ weight.data.T)
            .reshape(batch, length, heads, head_dim)
            .transpose(0, 2, 1, 3)
        )
        gw = ctx2.T @ g2
        gb = g2.sum(axis=0)
        return (gctx, gw, gb)

    result = Tensor(out, _parents=(context, weight, bias), _backward=backward)
    record_node(result, forward, "attention_output")
    return result


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Parameters
    ----------
    dim:
        Model width; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads.
    dropout:
        Attention-probability dropout rate.
    causal:
        When True a causal (left-to-right) mask is applied, as in
        SASRec.  Bidirectional models (BERT4Rec) pass False.
    fused:
        Run the fused Q/K/V + output-projection fast path (default).
        ``False`` uses the reference composition of primitive ops; see
        the module docstring for the equivalence contract.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.0,
        causal: bool = True,
        rng: np.random.Generator | None = None,
        dtype=None,
        fused: bool = True,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.fused = fused
        self.query = Linear(dim, dim, rng=rng, dtype=dtype)
        self.key = Linear(dim, dim, rng=rng, dtype=dtype)
        self.value = Linear(dim, dim, rng=rng, dtype=dtype)
        self.out = Linear(dim, dim, rng=rng, dtype=dtype)
        self.attn_dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32)))
        # Parameter-version-keyed concatenated (d, 3d) projection weight
        # for the fused GEMM; rebuilt once per optimizer step.
        self._qkv_cache = ParamCache()

    # ------------------------------------------------------------------
    def _qkv_cat(self) -> tuple:
        payloads = (
            self.query.weight.data, self.query.bias.data,
            self.key.weight.data, self.key.bias.data,
            self.value.weight.data, self.value.bias.data,
        )

        def build():
            w = np.concatenate(
                [self.query.weight.data, self.key.weight.data, self.value.weight.data],
                axis=1,
            )
            b = np.concatenate(
                [self.query.bias.data, self.key.bias.data, self.value.bias.data]
            )
            return w, b

        return self._qkv_cache.get(payloads, build)

    def invalidate_qkv_cache(self) -> None:
        """Drop the concatenated projection weight (after manual edits)."""
        self._qkv_cache.invalidate()

    def _block_mask(self, length: int, key_padding_mask: np.ndarray | None) -> np.ndarray:
        """The boolean "attention blocked" pattern, cached per length.

        Equals ``(causal | padding) & ~eye`` from the seed
        implementation — each query's own position stays attendable so
        fully-masked rows cannot produce NaN softmax outputs — but the
        static parts are built once per ``N`` in the shared workspace,
        and the no-padding case returns a broadcastable ``(1, 1, N, N)``
        view instead of a per-batch array.
        """
        ws = get_workspace()
        if key_padding_mask is None:
            if self.causal:
                # triu(k=1) never touches the diagonal, so & ~eye is a no-op.
                return ws.cached(
                    ("attn.causal", length),
                    lambda: _readonly(causal_mask(length)[None, None]),
                )
            return ws.cached(
                ("attn.noblock", length),
                lambda: _readonly(np.zeros((1, 1, length, length), dtype=bool)),
            )
        not_eye = ws.cached(
            ("attn.not_eye", length),
            lambda: _readonly(~np.eye(length, dtype=bool)),
        )
        causal = (
            ws.cached(("attn.causal2d", length), lambda: _readonly(causal_mask(length)))
            if self.causal
            else None
        )

        def build(out=None):
            res = np.logical_and(key_padding_mask[:, None, None, :], not_eye, out=out)
            if causal is not None:
                np.logical_or(res, causal, out=res)
            return res

        block = build()
        # Static-graph replay: ``key_padding_mask`` is a persistent host
        # buffer refreshed in place per batch (see the encoders'
        # ``record_host`` sites), so the blocked pattern is recomputed
        # into the same array object that downstream masked_fill
        # closures captured.
        record_host(lambda: build(out=block), "attention.block_mask")
        return block

    # ------------------------------------------------------------------
    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        x = F.reshape(x, (batch, length, self.num_heads, self.head_dim))
        return F.transpose(x, (0, 2, 1, 3))  # (B, H, N, hd)

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        """Attend over the sequence axis.

        Parameters
        ----------
        x:
            Input of shape ``(B, N, dim)``.
        key_padding_mask:
            Optional boolean array of shape ``(B, N)`` that is True at
            padding positions (those keys are never attended to).
        """
        batch, length, _ = x.shape
        block = self._block_mask(length, key_padding_mask)
        biased = all(
            proj.bias is not None for proj in (self.query, self.key, self.value, self.out)
        )
        if not (self.fused and biased):
            return self._forward_unfused(x, block, batch, length)

        q, k, v = _fused_qkv_heads(
            x,
            (
                self.query.weight, self.query.bias,
                self.key.weight, self.key.bias,
                self.value.weight, self.value.bias,
            ),
            self._qkv_cat,
            self.num_heads,
            float(1.0 / np.sqrt(self.head_dim)),
        )
        scores = F.matmul(q, F.transpose(k, (0, 1, 3, 2)))  # (B, H, N, N), pre-scaled
        scores = F.masked_fill(scores, block, -1e9)
        probs = self.attn_dropout(F.softmax(scores, axis=-1))
        context = F.matmul(probs, v)  # (B, H, N, hd)
        return _attention_output(context, self.out.weight, self.out.bias)

    def _forward_unfused(
        self, x: Tensor, block: np.ndarray, batch: int, length: int
    ) -> Tensor:
        """Reference path: three projections, explicit scale and merges."""
        q = self._split_heads(self.query(x), batch, length)
        k = self._split_heads(self.key(x), batch, length)
        v = self._split_heads(self.value(x), batch, length)

        scores = F.matmul(q, F.transpose(k, (0, 1, 3, 2)))  # (B, H, N, N)
        scores = F.mul(scores, 1.0 / np.sqrt(self.head_dim))
        scores = F.masked_fill(scores, block, -1e9)

        probs = self.attn_dropout(F.softmax(scores, axis=-1))
        context = F.matmul(probs, v)  # (B, H, N, hd)
        context = F.transpose(context, (0, 2, 1, 3))
        context = F.reshape(context, (batch, length, self.dim))
        return self.out(context)
