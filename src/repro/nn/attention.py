"""Multi-head self-attention (used by the Transformer baselines).

SLIME4Rec itself is attention-free; this module exists so SASRec,
BERT4Rec, CL4SRec, CoSeRec, DuoRec and ContrastVAE can be reproduced on
the same substrate, and so the Section III-F complexity comparison has a
real self-attention implementation to benchmark against.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module

__all__ = ["MultiHeadSelfAttention", "causal_mask"]


def causal_mask(n: int) -> np.ndarray:
    """Boolean (n, n) mask that is True where attention must be blocked."""
    return np.triu(np.ones((n, n), dtype=bool), k=1)


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Parameters
    ----------
    dim:
        Model width; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads.
    dropout:
        Attention-probability dropout rate.
    causal:
        When True a causal (left-to-right) mask is applied, as in
        SASRec.  Bidirectional models (BERT4Rec) pass False.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.0,
        causal: bool = True,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.query = Linear(dim, dim, rng=rng, dtype=dtype)
        self.key = Linear(dim, dim, rng=rng, dtype=dtype)
        self.value = Linear(dim, dim, rng=rng, dtype=dtype)
        self.out = Linear(dim, dim, rng=rng, dtype=dtype)
        self.attn_dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32)))

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        x = F.reshape(x, (batch, length, self.num_heads, self.head_dim))
        return F.transpose(x, (0, 2, 1, 3))  # (B, H, N, hd)

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        """Attend over the sequence axis.

        Parameters
        ----------
        x:
            Input of shape ``(B, N, dim)``.
        key_padding_mask:
            Optional boolean array of shape ``(B, N)`` that is True at
            padding positions (those keys are never attended to).
        """
        batch, length, _ = x.shape
        q = self._split_heads(self.query(x), batch, length)
        k = self._split_heads(self.key(x), batch, length)
        v = self._split_heads(self.value(x), batch, length)

        scores = F.matmul(q, F.transpose(k, (0, 1, 3, 2)))  # (B, H, N, N)
        scores = F.mul(scores, 1.0 / np.sqrt(self.head_dim))

        block = np.zeros((batch, 1, length, length), dtype=bool)
        if self.causal:
            block |= causal_mask(length)[None, None]
        if key_padding_mask is not None:
            block |= key_padding_mask[:, None, None, :]
        # Keep each query's own position attendable so fully-masked rows
        # cannot produce NaN softmax outputs.
        eye = np.eye(length, dtype=bool)[None, None]
        block = block & ~eye
        scores = F.masked_fill(scores, block, -1e9)

        probs = self.attn_dropout(F.softmax(scores, axis=-1))
        context = F.matmul(probs, v)  # (B, H, N, hd)
        context = F.transpose(context, (0, 2, 1, 3))
        context = F.reshape(context, (batch, length, self.dim))
        return self.out(context)
