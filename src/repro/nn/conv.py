"""Sequence convolutions for the Caser baseline.

Caser treats the embedded sequence as an ``N x d`` image and applies:

- *horizontal* filters of shape ``(h, d)`` followed by max-pooling over
  time (capturing union-level patterns of ``h`` consecutive items), and
- *vertical* filters of shape ``(N, 1)`` (weighted sums over time per
  embedding dimension).

Both are expressed through primitive autograd ops (slicing + matmul),
so no dedicated convolution kernels are required.

Shapes and dtype contract: input ``(B, N, d)`` in the resolved
parameter dtype; :class:`HorizontalConv` returns ``(B, channels)``
(max-pooled over time), :class:`VerticalConv` returns
``(B, channels * d)``.  Neither path is workspace-fused — Caser is not
a throughput baseline; see ``docs/PERFORMANCE.md`` for which paths are.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["HorizontalConv", "VerticalConv"]


class HorizontalConv(Module):
    """Full-width window convolution with max-over-time pooling.

    Parameters
    ----------
    seq_len:
        Input sequence length ``N``.
    dim:
        Embedding width ``d``.
    height:
        Window height ``h`` (number of consecutive items).
    channels:
        Number of filters ``F``.
    """

    def __init__(
        self,
        seq_len: int,
        dim: int,
        height: int,
        channels: int,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        if height > seq_len:
            raise ValueError(f"window height {height} exceeds sequence length {seq_len}")
        rng = rng or np.random.default_rng()
        dtype = init.resolve_dtype(dtype)
        self.seq_len = seq_len
        self.height = height
        self.channels = channels
        self.weight = Parameter(init.xavier_uniform(rng, (height * dim, channels), dtype=dtype), name="weight")
        self.bias = Parameter(init.zeros(channels, dtype=dtype), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        """(B, N, d) -> (B, channels): ReLU conv then max-over-time."""
        batch, length, dim = x.shape
        windows: List[Tensor] = []
        for start in range(length - self.height + 1):
            window = F.getitem(x, (slice(None), slice(start, start + self.height)))
            windows.append(F.reshape(window, (batch, self.height * dim)))
        stacked = F.stack(windows, axis=1)  # (B, T', h*d)
        conv = F.relu(F.add(F.matmul(stacked, self.weight), self.bias))  # (B, T', C)
        # Max-over-time via softmax-free hard max: use reduce by comparing.
        return _max_over_axis(conv, axis=1)


class VerticalConv(Module):
    """Per-dimension weighted sum over the time axis (L filters)."""

    def __init__(
        self,
        seq_len: int,
        channels: int,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.seq_len = seq_len
        self.channels = channels
        self.weight = Parameter(
            init.xavier_uniform(rng, (channels, seq_len), dtype=init.resolve_dtype(dtype)),
            name="weight",
        )

    def forward(self, x: Tensor) -> Tensor:
        """(B, N, d) -> (B, channels * d)."""
        batch, _, dim = x.shape
        mixed = F.matmul(self.weight, x)  # (B, channels, d) via broadcasting
        return F.reshape(mixed, (batch, self.channels * dim))


def _max_over_axis(x: Tensor, axis: int) -> Tensor:
    """Differentiable max along ``axis`` (gradient flows to argmax)."""
    idx = None

    def forward():
        # Replay closure: argmax indices are data-dependent, so they are
        # recomputed (and rebound for the backward closure) every call.
        nonlocal idx
        data = x.data
        idx = data.argmax(axis=axis)
        return np.take_along_axis(data, np.expand_dims(idx, axis), axis=axis).squeeze(axis)

    out = forward()

    from repro.autograd.graph import record_node
    from repro.autograd.tensor import Tensor as _T, is_grad_enabled

    if not (is_grad_enabled() and (x.requires_grad or x._backward is not None)):
        result = _T(out)
        record_node(result, forward, "max_over_axis")
        return result

    def backward(grad):
        full = np.zeros_like(x.data)
        np.put_along_axis(full, np.expand_dims(idx, axis), np.expand_dims(grad, axis), axis=axis)
        return (full,)

    result = _T(out, _parents=(x,), _backward=backward)
    record_node(result, forward, "max_over_axis")
    return result
