"""Dropout layer with an owned random stream.

Shapes and dtype contract: any floating input, output of the same
shape and dtype; the eval-mode forward returns the input tensor itself
(no copy, no graph node).

Mask generation runs through the shared per-step workspace
(:mod:`repro.nn.workspace`).  The default path is **seed-compatible**:
one float64 uniform per element from this layer's own generator, drawn
into a reusable buffer, bitwise-faithful to the seed implementation.
:func:`repro.nn.workspace.set_fast_dropout_masks` (or the
``fast_dropout_masks()`` context manager) switches every dropout site
in the process to cheap uint16 threshold masks — same distribution up
to a 1/65536 quantization of the keep probability, different stochastic
realization per seed.  Inside a
:func:`repro.nn.workspace.dropout_views` context (the stacked
multi-view contrastive encode) the mask is drawn as one per-view block
draw per view, so a ``(V*B, N, d)`` call consumes this layer's
generator exactly like ``V`` separate ``(B, N, d)`` calls.  See
:func:`repro.autograd.functional.dropout` for the exact contract.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode.

    Each instance owns a ``numpy.random.Generator`` so two dropout
    layers with different seeds produce *different* stochastic views of
    the same input — exactly the property SLIME4Rec's unsupervised
    contrastive augmentation relies on.
    """

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
