"""Embedding lookup table.

Shapes and dtype contract: integer indices of any shape ``(...,)``
gather rows from a ``(num_embeddings, embedding_dim)`` weight in the
resolved parameter dtype, producing ``(..., embedding_dim)``.  The
backward is a flat-``bincount`` segment sum whose linear-index scratch
comes from the shared per-step workspace
(:func:`repro.autograd.functional.embedding`); gradients return in the
weight's dtype.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["Embedding"]


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Index 0 is conventionally the padding item in this codebase; set
    ``padding_idx=0`` to keep its vector frozen at zero (its gradient is
    cleared after every backward inside the optimizer step).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        padding_idx: int | None = None,
        std: float = 0.02,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.normal(rng, (num_embeddings, embedding_dim), std=std, dtype=dtype)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight, name="embedding")

    def forward(self, indices) -> Tensor:
        return F.embedding(self.weight, indices)

    def zero_padding_row(self) -> None:
        """Reset the padding embedding to zero (call after optimizer steps)."""
        if self.padding_idx is not None:
            self.weight.data[self.padding_idx] = 0.0

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim}, padding_idx={self.padding_idx})"
