"""Weight initialization helpers and the parameter-dtype knob.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed.

Dtype contract
--------------
Every initializer accepts a ``dtype`` keyword resolved through
:func:`resolve_dtype`: passing ``None`` (the default) falls back to the
process-wide default parameter dtype, which is **float64** so seed
numerics stay bit-for-bit unchanged.  Random draws always consume the
*float64* generator stream and are cast afterwards — a float32 model is
therefore the rounded image of the float64 model with the same seed,
which is what lets the test suite compare metrics across dtypes.

Use :func:`set_default_dtype` (or the :func:`default_dtype` context
manager) to flip whole-model construction to float32 without threading
the keyword through every constructor.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = [
    "normal",
    "uniform",
    "xavier_uniform",
    "xavier_normal",
    "zeros",
    "ones",
    "resolve_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
]

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_PARAM_DTYPE = np.dtype(np.float64)


def resolve_dtype(dtype=None) -> np.dtype:
    """Validate ``dtype`` (float32/float64), defaulting to the global knob."""
    if dtype is None:
        return _DEFAULT_PARAM_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in _FLOAT_DTYPES:
        raise ValueError(f"parameter dtype must be float32 or float64, got {dtype}")
    return dtype


def get_default_dtype() -> np.dtype:
    """The dtype new parameters are created with when none is given."""
    return _DEFAULT_PARAM_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-wide default parameter dtype; returns the old one."""
    global _DEFAULT_PARAM_DTYPE
    previous = _DEFAULT_PARAM_DTYPE
    _DEFAULT_PARAM_DTYPE = resolve_dtype(dtype)
    return previous


@contextlib.contextmanager
def default_dtype(dtype):
    """Scope the default parameter dtype, e.g. for one model build."""
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def normal(rng: np.random.Generator, shape, std: float = 0.02, dtype=None) -> np.ndarray:
    """Truncated-free normal init, the default for embeddings (BERT-style)."""
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)


def uniform(
    rng: np.random.Generator, shape, low: float = -0.05, high: float = 0.05, dtype=None
) -> np.ndarray:
    return rng.uniform(low, high, size=shape).astype(resolve_dtype(dtype), copy=False)


def _fans(shape) -> tuple[int, int]:
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive


def xavier_uniform(rng: np.random.Generator, shape, dtype=None) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(resolve_dtype(dtype), copy=False)


def xavier_normal(rng: np.random.Generator, shape, dtype=None) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)


def zeros(shape, dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=resolve_dtype(dtype))


def ones(shape, dtype=None) -> np.ndarray:
    return np.ones(shape, dtype=resolve_dtype(dtype))
