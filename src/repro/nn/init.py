"""Weight initialization helpers.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normal", "uniform", "xavier_uniform", "xavier_normal", "zeros", "ones"]


def normal(rng: np.random.Generator, shape, std: float = 0.02) -> np.ndarray:
    """Truncated-free normal init, the default for embeddings (BERT-style)."""
    return rng.normal(0.0, std, size=shape)


def uniform(rng: np.random.Generator, shape, low: float = -0.05, high: float = 0.05) -> np.ndarray:
    return rng.uniform(low, high, size=shape)


def _fans(shape) -> tuple[int, int]:
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive


def xavier_uniform(rng: np.random.Generator, shape) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(rng: np.random.Generator, shape) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    return np.ones(shape)
