"""Fully-connected layer.

Shapes and dtype contract: input ``(..., in_features)``, output
``(..., out_features)``; weight ``(in_features, out_features)`` and
bias ``(out_features,)`` live in the resolved parameter dtype
(float32/float64, see :mod:`repro.nn.init`) and activations follow it.

The attention fast path (:mod:`repro.nn.attention`) bypasses
``Linear.forward`` for its three Q/K/V projections — it concatenates
the three weight payloads into one cached ``(d, 3d)`` GEMM operand —
but the parameters remain these ``Linear`` modules, so checkpoints and
optimizers are unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` applied to the last axis.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learnable bias (default True).
    rng:
        Generator used for Xavier-uniform weight init.
    dtype:
        Parameter dtype; ``None`` uses :func:`repro.nn.init.get_default_dtype`.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        dtype = init.resolve_dtype(dtype)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(rng, (in_features, out_features), dtype=dtype), name="weight"
        )
        self.bias = Parameter(init.zeros(out_features, dtype=dtype), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"
