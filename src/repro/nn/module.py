"""Base classes for composable neural-network modules.

A :class:`Module` owns :class:`Parameter` tensors and child modules,
discovered automatically through attribute assignment (the same
convention as ``torch.nn.Module``).  It provides recursive parameter
iteration, train/eval mode switching, and a flat ``state_dict`` for
checkpointing.

Dtype contract: parameters are created in the dtype resolved by
:mod:`repro.nn.init` (float64 default, float32 fast path) and
:meth:`Module.to` casts a built module between the two.  Mutations
that rebind or restore parameter payloads (``to``, ``load_state_dict``)
bump the global parameter version so parameter-derived caches — the
filter mixer's combined filter, attention's concatenated Q/K/V weight
(:class:`repro.nn.workspace.ParamCache`) — rebuild on the next use;
editing ``param.data`` in place by hand requires invalidating those
caches yourself.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, bump_parameter_version

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute-based registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return int(np.sum([p.size for p in self.parameters()])) if self.parameters() else 0

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    # ------------------------------------------------------------------
    # Mode switching and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def to(self, dtype) -> "Module":
        """Cast every parameter payload to ``dtype`` (float32/float64).

        Gradients are dropped (they belong to the old-dtype graph) and
        parameter-derived caches are invalidated.  Call this *before*
        creating an optimizer: moment/scratch buffers are sized and
        typed from ``p.data`` at optimizer construction.
        """
        from repro.nn.init import resolve_dtype

        dtype = resolve_dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != dtype:
                param.data = param.data.astype(dtype)
            param.zero_grad()
        for module in self.modules():
            if hasattr(module, "dtype"):
                module.dtype = dtype
        bump_parameter_version()
        return self

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.shape}, got {value.shape}"
                )
            param.data = value.astype(param.dtype, copy=True)
        # Restored payloads invalidate parameter-derived caches (e.g.
        # the filter mixer's combined complex filter).
        bump_parameter_version()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules) if self._modules else ""
        return f"{type(self).__name__}({children})"


class ModuleList(Module):
    """A list of sub-modules, registered so parameters are discovered."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)
