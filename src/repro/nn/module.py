"""Base classes for composable neural-network modules.

A :class:`Module` owns :class:`Parameter` tensors and child modules,
discovered automatically through attribute assignment (the same
convention as ``torch.nn.Module``).  It provides recursive parameter
iteration, train/eval mode switching, and a flat ``state_dict`` for
checkpointing.

Dtype contract: parameters are created in the dtype resolved by
:mod:`repro.nn.init` (float64 default, float32 fast path) and
:meth:`Module.to` casts a built module between the two.  Mutations
that rebind or restore parameter payloads (``to``, ``load_state_dict``)
bump the global parameter version so parameter-derived caches — the
filter mixer's combined filter, attention's concatenated Q/K/V weight
(:class:`repro.nn.workspace.ParamCache`) — rebuild on the next use;
editing ``param.data`` in place by hand requires invalidating those
caches yourself.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, bump_parameter_version
from repro.autograd.workspace import generator_state, set_generator_state

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute-based registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return int(np.sum([p.size for p in self.parameters()])) if self.parameters() else 0

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_path, module)`` for this module and all children.

        The root module's path is ``""``; children follow attribute
        names (``"encoder.layers.0"``), the same naming scheme
        :meth:`named_parameters` uses.
        """
        yield prefix, self
        for name, module in self._modules.items():
            child = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(prefix=child)

    # ------------------------------------------------------------------
    # Mode switching and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def to(self, dtype) -> "Module":
        """Cast every parameter payload to ``dtype`` (float32/float64).

        Gradients are dropped (they belong to the old-dtype graph) and
        parameter-derived caches are invalidated.  Call this *before*
        creating an optimizer: moment/scratch buffers are sized and
        typed from ``p.data`` at optimizer construction.
        """
        from repro.nn.init import resolve_dtype

        dtype = resolve_dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != dtype:
                param.data = param.data.astype(dtype)
            param.zero_grad()
        for module in self.modules():
            if hasattr(module, "dtype"):
                module.dtype = dtype
        bump_parameter_version()
        return self

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], cast: bool = False) -> None:
        """Restore a :meth:`state_dict`, validating keys, shapes and dtypes.

        A dtype mismatch raises a :class:`ValueError` naming the
        offending key instead of casting silently — a float32
        checkpoint loaded into a float64 model would otherwise carry
        only float32 precision while claiming float64, and the reverse
        direction would silently truncate.  Pass ``cast=True`` to opt
        into the conversion deliberately (e.g. restoring a float64
        reference checkpoint into a model already moved with
        :meth:`to`).
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.shape}, got {value.shape}"
                )
            if value.dtype != param.dtype and not cast:
                raise ValueError(
                    f"dtype mismatch for '{name}': checkpoint has {value.dtype}, "
                    f"parameter is {param.dtype}; build the model in the "
                    f"checkpoint's dtype or pass cast=True to convert explicitly"
                )
        for name, param in own.items():
            param.data = np.asarray(state[name]).astype(param.dtype, copy=True)
        # Restored payloads invalidate parameter-derived caches (e.g.
        # the filter mixer's combined complex filter).
        bump_parameter_version()

    # ------------------------------------------------------------------
    # Random-stream capture (the RNG half of a full-state checkpoint)
    # ------------------------------------------------------------------
    def _named_rng_owners(self) -> Dict[str, Tuple[str, object]]:
        """Map ``dotted.path`` to every random-stream owner in the tree.

        Two kinds of owner are discovered by scanning module attributes:
        bare ``numpy.random.Generator`` instances (dropout streams,
        augmentation/noise/mask rngs) and *delegates* — objects exposing
        their own ``rng_state_dict``/``load_rng_state_dict`` pair (the
        :class:`~repro.data.negative_sampling.NegativeSampler`).  The
        walk order is deterministic (attribute-assignment order per
        module, :meth:`named_modules` order across the tree).
        """
        owners: Dict[str, Tuple[str, object]] = {}
        for mprefix, module in self.named_modules():
            for attr, value in vars(module).items():
                if isinstance(value, Module):
                    continue
                path = f"{mprefix}.{attr}" if mprefix else attr
                if isinstance(value, np.random.Generator):
                    owners[path] = ("generator", value)
                elif callable(getattr(value, "rng_state_dict", None)) and callable(
                    getattr(value, "load_rng_state_dict", None)
                ):
                    owners[path] = ("delegate", value)
        return owners

    def rng_state_dict(self) -> Dict[str, Dict]:
        """Snapshot every random stream owned by this module tree.

        Returns ``{path: state}`` where ``state`` is a JSON-serializable
        bit-state snapshot (:func:`repro.nn.workspace.generator_state`)
        or a delegate's own ``rng_state_dict``.  Together with
        :meth:`state_dict` and the optimizer state this is everything a
        bitwise-identical training resume needs from the model.
        """
        out: Dict[str, Dict] = {}
        for path, (kind, owner) in self._named_rng_owners().items():
            out[path] = generator_state(owner) if kind == "generator" else owner.rng_state_dict()
        return out

    def load_rng_state_dict(self, state: Dict[str, Dict]) -> None:
        """Restore a :meth:`rng_state_dict` snapshot in place.

        Raises :class:`KeyError` on any mismatch between the snapshot
        and the live tree's stream owners.  A lazily created stream
        (e.g. the training negative sampler) must be materialized before
        restoring — the trainer does this for streams it knows about.
        """
        owners = self._named_rng_owners()
        missing = set(owners) - set(state)
        unexpected = set(state) - set(owners)
        if missing or unexpected:
            raise KeyError(
                f"rng state mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)} (a lazily built stream, e.g. "
                f"the negative sampler, must exist before its state can load)"
            )
        for path, (kind, owner) in owners.items():
            if kind == "generator":
                set_generator_state(owner, state[path])
            else:
                owner.load_rng_state_dict(state[path])

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules) if self._modules else ""
        return f"{type(self).__name__}({children})"


class ModuleList(Module):
    """A list of sub-modules, registered so parameters are discovered."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)
