"""Normalization layers.

Shapes and dtype contract: :class:`LayerNorm` normalizes the last axis
of any ``(..., dim)`` floating input; ``gamma``/``beta`` are ``(dim,)``
parameters in the resolved dtype and output/gradients keep the input
dtype.  The underlying op (:func:`repro.autograd.functional.layer_norm`)
is fused: forward folds its intermediates in place, and the backward
routes its transient product buffer through the shared per-step
workspace (:mod:`repro.nn.workspace`).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable affine.

    The paper uses eps=1e-12 (the BERT/FMLP-Rec convention).
    """

    def __init__(self, dim: int, eps: float = 1e-12, dtype=None) -> None:
        super().__init__()
        dtype = init.resolve_dtype(dtype)
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones(dim, dtype=dtype), name="gamma")
        self.beta = Parameter(init.zeros(dim, dtype=dtype), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.dim}, eps={self.eps})"
