"""Gated recurrent unit for the GRU4Rec baseline.

Shapes and dtype contract: input ``(B, N, input_dim)``, optional
initial state ``(B, hidden_dim)``, output ``(B, N, hidden_dim)``; the
three gate projections are packed as ``(input_dim, 3*hidden_dim)`` /
``(hidden_dim, 3*hidden_dim)`` parameters in the resolved dtype (the
same packed-GEMM layout the attention fast path builds dynamically).
All input projections for the whole sequence run as one batched matmul
before the recurrence; only the hidden-to-hidden step is sequential.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["GRU"]


class GRU(Module):
    """Single-layer GRU unrolled over the sequence axis.

    Follows the standard formulation::

        r_t = sigmoid(x_t W_xr + h_{t-1} W_hr + b_r)
        z_t = sigmoid(x_t W_xz + h_{t-1} W_hz + b_z)
        n_t = tanh(x_t W_xn + (r_t * h_{t-1}) W_hn + b_n)
        h_t = (1 - z_t) * n_t + z_t * h_{t-1}

    Returns the full hidden sequence ``(B, N, hidden)``; callers pick
    the states they need (GRU4Rec uses the last one).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator | None = None,
        dtype=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        dtype = init.resolve_dtype(dtype)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = Parameter(init.xavier_uniform(rng, (input_dim, 3 * hidden_dim), dtype=dtype), name="w_x")
        self.w_h = Parameter(init.xavier_uniform(rng, (hidden_dim, 3 * hidden_dim), dtype=dtype), name="w_h")
        self.bias = Parameter(init.zeros(3 * hidden_dim, dtype=dtype), name="bias")

    def forward(self, x: Tensor, h0: Tensor | None = None) -> Tensor:
        batch, length, _ = x.shape
        hidden = self.hidden_dim
        h = h0 if h0 is not None else Tensor(np.zeros((batch, hidden), dtype=x.dtype))

        # Precompute all input projections in one matmul: (B, N, 3H).
        x_proj = F.add(F.matmul(x, self.w_x), self.bias)
        states = []
        for t in range(length):
            xt = F.getitem(x_proj, (slice(None), t))  # (B, 3H)
            h_proj = F.matmul(h, self.w_h)  # (B, 3H)
            xr = F.getitem(xt, (slice(None), slice(0, hidden)))
            xz = F.getitem(xt, (slice(None), slice(hidden, 2 * hidden)))
            xn = F.getitem(xt, (slice(None), slice(2 * hidden, 3 * hidden)))
            hr = F.getitem(h_proj, (slice(None), slice(0, hidden)))
            hz = F.getitem(h_proj, (slice(None), slice(hidden, 2 * hidden)))
            hn = F.getitem(h_proj, (slice(None), slice(2 * hidden, 3 * hidden)))
            r = F.sigmoid(F.add(xr, hr))
            z = F.sigmoid(F.add(xz, hz))
            n = F.tanh(F.add(xn, F.mul(r, hn)))
            h = F.add(F.mul(F.sub(1.0, z), n), F.mul(z, h))
            states.append(h)
        return F.stack(states, axis=1)  # (B, N, H)
