"""Public surface of the shared per-step compute workspace.

``repro.nn.workspace`` is the documented entry point for the workspace
subsystem that backs the training hot paths:

- **Scratch buffers** (:meth:`StepWorkspace.scratch`): the spectral ops
  write their frequency-domain filter products into shared ``(B, M, d)``
  complex buffers instead of allocating per call, dropout draws its
  float64 uniforms into a shared buffer, and the embedding backward
  builds its scatter indices in one; all ``L`` layers of a step reuse
  the same arrays (see :mod:`repro.autograd.spectral` and
  :func:`repro.autograd.functional.dropout`).
- **Derived-constant caches** (:meth:`StepWorkspace.cached`): causal /
  anti-diagonal attention masks per sequence length, index rows, and
  other pure functions of the geometry.
- **Parameter-derived caches** (:class:`ParamCache`): the filter
  mixer's combined complex filter and attention's concatenated
  ``(d, 3d)`` Q/K/V weight, rebuilt exactly once per optimizer step.
- **The dropout seed-compatibility flag**
  (:func:`set_fast_dropout_masks` / :func:`fast_dropout_masks`): opt-in
  cheap mask generation for throughput runs that do not need
  bitwise-reproducible stochasticity.
- **Dropout view streams** (:func:`dropout_views` /
  :func:`set_dropout_view_count`): inside the context every dropout
  site splits its leading axis into ``V`` view blocks and draws each
  block's mask separately, so a stacked ``(V*B, N, d)`` multi-view
  encode consumes each generator exactly like ``V`` separate
  ``(B, N, d)`` passes would (the contract behind
  :meth:`repro.core.encoder.SequentialEncoderBase.encode_views`).
  The context restores the previous count in a ``finally`` block —
  an exception inside a batched forward cannot leak view state into
  the next step (``tests/test_batched_views.py`` pins this); code
  that calls :func:`set_dropout_view_count` directly must wrap the
  restore in its own try/finally.

- **Random-stream capture** (:func:`generator_state` /
  :func:`set_generator_state`): the JSON-serializable bit-state
  snapshot format behind ``Module.rng_state_dict`` and the trainer's
  crash-safe run-state archive — a restored generator resumes its
  PCG64 sequence mid-stream, bitwise-identically.

Typical uses::

    from repro.nn import workspace

    # Inspect / free the hot-path buffers (e.g. between experiments):
    ws = workspace.get_workspace()
    print(ws)             # scratch/cached entry counts, hit rate, bytes
    ws.clear()

    # Benchmark with cheap dropout masks (non-seed-compatible):
    with workspace.fast_dropout_masks():
        train_one_epoch(model)

Everything here re-exports :mod:`repro.autograd.workspace`, which is
the implementation layer shared by the autograd ops; import from this
module in user code and model code.  The buffer-ownership rules that
make the reuse safe are documented in ``docs/ARCHITECTURE.md`` and the
measured effect in ``docs/PERFORMANCE.md``.
"""

from repro.autograd.workspace import (
    ParamCache,
    StepWorkspace,
    dropout_view_count,
    dropout_views,
    fast_dropout_masks,
    fast_dropout_masks_enabled,
    generator_state,
    get_workspace,
    reset_workspace,
    set_dropout_view_count,
    set_fast_dropout_masks,
    set_generator_state,
)

__all__ = [
    "StepWorkspace",
    "ParamCache",
    "get_workspace",
    "reset_workspace",
    "set_fast_dropout_masks",
    "fast_dropout_masks_enabled",
    "fast_dropout_masks",
    "set_dropout_view_count",
    "dropout_view_count",
    "dropout_views",
    "generator_state",
    "set_generator_state",
]
