"""Optimizers and learning-rate schedules for the repro autograd engine."""

from repro.optim.optimizer import Optimizer, clip_grad_norm
from repro.optim.adam import Adam
from repro.optim.sgd import SGD
from repro.optim.lr_scheduler import ConstantLR, LRScheduler, StepLR, WarmupCosineLR

__all__ = [
    "Optimizer",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "WarmupCosineLR",
]
