"""Adam optimizer (the paper trains every model with Adam, lr=1e-3)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction and optional decoupled weight decay.

    Parameters mirror the common PyTorch defaults; the paper uses
    ``lr=0.001`` and default betas.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m[i]
            v = self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
