"""Adam optimizer (the paper trains every model with Adam, lr=1e-3)."""

from __future__ import annotations

import math
from typing import Dict, Iterable

import numpy as np

from repro.autograd.tensor import Tensor, bump_parameter_version
from repro.optim.optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction and optional decoupled weight decay.

    Parameters mirror the common PyTorch defaults; the paper uses
    ``lr=0.001`` and default betas.

    The update runs fully in place: ``p.data``, the moment buffers and a
    per-parameter scratch buffer are reused across steps, and the bias
    corrections are folded into the step size (``lr·√bias2/bias1``) and
    the epsilon (``eps·√bias2``), so a step allocates nothing.  The
    folded form is algebraically identical to the textbook
    ``lr·m̂/(√v̂+eps)`` update::

        lr·(m/bias1) / (√(v/bias2)+eps) = (lr·√bias2/bias1) · m/(√v+eps·√bias2)
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._decayed = (
            [np.empty_like(p.data) for p in self.params] if weight_decay else None
        )

    def step(self) -> None:
        self._step += 1
        sqrt_bias2 = math.sqrt(1.0 - self.beta2 ** self._step)
        step_size = self.lr * sqrt_bias2 / (1.0 - self.beta1 ** self._step)
        folded_eps = self.eps * sqrt_bias2
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            s = self._scratch[i]
            if self.weight_decay:
                decayed = self._decayed[i]
                np.multiply(p.data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            m = self._m[i]
            v = self._v[i]
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=s)
            m += s
            v *= self.beta2
            np.multiply(grad, grad, out=s)
            s *= 1.0 - self.beta2
            v += s
            np.sqrt(v, out=s)
            s += folded_eps
            np.divide(m, s, out=s)
            s *= step_size
            p.data -= s
        bump_parameter_version()

    # ------------------------------------------------------------------
    # Resume state
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Step count, lr, and copies of the first/second moment buffers.

        The bias corrections are pure functions of the step count, so
        ``(step, m, v)`` is the complete update state: a restored Adam
        continues the moment recursions and the folded bias-correction
        schedule bitwise-identically.
        """
        state = super().state_dict()
        state.update(
            step=int(self._step),
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self._restore_buffers(self._m, state["m"], "m")
        self._restore_buffers(self._v, state["v"], "v")
        self._step = int(state["step"])
