"""Learning-rate schedules.

The paper trains with a constant lr=1e-3, but depth experiments
(Table V, L=8) benefit from warmup on some seeds; schedulers are
provided as an opt-in trainer feature and ablation knob.

Resume semantics: a scheduler anchors its shape to ``base_lr``.  By
default that is ``optimizer.lr`` *at construction* — correct for a
fresh run, silently wrong when a scheduler is rebuilt mid-run (the
optimizer's lr has already been decayed, so warmup would re-anchor to
the decayed value).  Two supported ways to resume:

- pass ``last_step`` (and, when rebuilding against an already-stepped
  optimizer, an explicit ``base_lr``) to the constructor;
- round-trip :meth:`LRScheduler.state_dict` /
  :meth:`LRScheduler.load_state_dict`, which restores both the step
  counter and the anchor and re-applies the current lr to the
  optimizer.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.optim.optimizer import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "StepLR", "WarmupCosineLR"]


class LRScheduler:
    """Base class: mutates ``optimizer.lr`` on every :meth:`step`.

    Parameters
    ----------
    optimizer:
        The optimizer whose ``lr`` this schedule drives.
    last_step:
        Step count already taken (0 for a fresh run).  The next
        :meth:`step` call computes step ``last_step + 1``, so a
        scheduler rebuilt with the saved step count continues the
        schedule instead of restarting warmup.  Concrete subclasses
        also re-apply the lr for ``last_step`` to the optimizer at
        construction.
    base_lr:
        Explicit schedule anchor.  ``None`` (default) captures
        ``optimizer.lr`` — only correct when the optimizer has not been
        stepped by a previous schedule; pass the original anchor when
        resuming mid-run.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        last_step: int = 0,
        base_lr: float | None = None,
    ) -> None:
        if last_step < 0:
            raise ValueError(f"last_step must be >= 0, got {last_step}")
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr if base_lr is None else base_lr)
        self._step_count = int(last_step)

    @property
    def last_step(self) -> int:
        """Number of :meth:`step` calls taken (including ``last_step`` credit)."""
        return self._step_count

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._step_count += 1
        lr = self.get_lr(self._step_count)
        self.optimizer.lr = lr
        return lr

    def get_lr(self, step: int) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, float]:
        """The resume state: step counter and schedule anchor."""
        return {"step": self._step_count, "base_lr": self.base_lr}

    def load_state_dict(self, state: Dict[str, float]) -> None:
        """Restore a :meth:`state_dict` and re-apply the current lr.

        After loading, ``optimizer.lr`` equals what it was when the
        state was saved (for ``step >= 1``; at step 0 the anchor
        itself), and the next :meth:`step` continues the schedule.
        """
        self.base_lr = float(state["base_lr"])
        self._step_count = int(state["step"])
        self._resync()

    def _resync(self) -> None:
        """Write the lr for the current step count back to the optimizer.

        Called by :meth:`load_state_dict` and by concrete subclasses at
        the end of construction (once their schedule parameters exist),
        so a resumed scheduler never leaves a stale lr on the optimizer
        between construction and the first step.
        """
        self.optimizer.lr = self.get_lr(self._step_count) if self._step_count else self.base_lr


class ConstantLR(LRScheduler):
    def __init__(
        self,
        optimizer: Optimizer,
        last_step: int = 0,
        base_lr: float | None = None,
    ) -> None:
        super().__init__(optimizer, last_step=last_step, base_lr=base_lr)
        self._resync()

    def get_lr(self, step: int) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the lr by ``gamma`` every ``step_size`` steps."""

    def __init__(
        self,
        optimizer: Optimizer,
        step_size: int,
        gamma: float = 0.5,
        last_step: int = 0,
        base_lr: float | None = None,
    ) -> None:
        super().__init__(optimizer, last_step=last_step, base_lr=base_lr)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma
        self._resync()

    def get_lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class WarmupCosineLR(LRScheduler):
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
        last_step: int = 0,
        base_lr: float | None = None,
    ) -> None:
        super().__init__(optimizer, last_step=last_step, base_lr=base_lr)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr
        self._resync()

    def get_lr(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
