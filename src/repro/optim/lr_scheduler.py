"""Learning-rate schedules.

The paper trains with a constant lr=1e-3, but depth experiments
(Table V, L=8) benefit from warmup on some seeds; schedulers are
provided as an opt-in trainer feature and ablation knob.
"""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "StepLR", "WarmupCosineLR"]


class LRScheduler:
    """Base class: mutates ``optimizer.lr`` on every :meth:`step`."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self._step_count = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._step_count += 1
        lr = self.get_lr(self._step_count)
        self.optimizer.lr = lr
        return lr

    def get_lr(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRScheduler):
    def get_lr(self, step: int) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the lr by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class WarmupCosineLR(LRScheduler):
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def get_lr(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
