"""Optimizer base class and gradient utilities."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Optimizer", "clip_grad_norm"]


class Optimizer:
    """Base class: holds parameter references and clears gradients."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Resume state
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Hyper-parameters plus per-parameter buffers, for checkpointing.

        Subclasses extend the base dict (which carries ``lr`` — the one
        hyper-parameter mutated at runtime, by LR schedules) with their
        own moment/velocity buffers; buffer arrays are copies, safe to
        archive.  Restoring with :meth:`load_state_dict` continues the
        update sequence bitwise-identically.
        """
        return {"lr": float(self.lr)} if hasattr(self, "lr") else {}

    def load_state_dict(self, state: Dict) -> None:
        if "lr" in state and hasattr(self, "lr"):
            self.lr = float(state["lr"])

    def _restore_buffers(self, buffers, saved, label: str) -> None:
        """Copy ``saved`` arrays into preallocated ``buffers`` in place.

        Shared by subclass ``load_state_dict`` implementations; validates
        count, shape and dtype so a checkpoint from a differently built
        model (or dtype) fails loudly instead of corrupting moments.
        """
        if len(saved) != len(buffers):
            raise ValueError(
                f"optimizer state mismatch: checkpoint has {len(saved)} "
                f"{label} buffers, optimizer has {len(buffers)}"
            )
        for i, (buf, value) in enumerate(zip(buffers, saved)):
            value = np.asarray(value)
            if value.shape != buf.shape or value.dtype != buf.dtype:
                raise ValueError(
                    f"optimizer {label} buffer {i} mismatch: checkpoint has "
                    f"{value.dtype}{value.shape}, optimizer has {buf.dtype}{buf.shape}"
                )
            np.copyto(buf, value)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients in-place.

    Returns the pre-clipping norm (useful for logging exploding grads).

    Non-finite gradients: when any gradient holds a NaN/Inf the global
    norm itself is non-finite, and scaling by ``max_norm / norm`` would
    multiply **every** parameter's gradient by NaN (or zero), silently
    poisoning the whole model in one step.  The gradients are therefore
    returned *unscaled* in that case and the non-finite norm is
    reported to the caller — the trainer's numeric-guard policy
    (:class:`repro.train.trainer.TrainConfig.guard_policy`) decides
    whether to raise, skip the step, or roll back to a checkpoint.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if not math.isfinite(total):
        return total
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            # getattr: duck-typed parameter stubs (tests) may not carry
            # the ownership slot; borrowed is the safe default.
            if getattr(p, "_grad_owned", False):
                # Owned buffers are per-parameter allocations (a copy or
                # the result of ``+``), so scaling in place is safe and —
                # crucially for the static-graph executor, which seeds
                # persistent per-parameter grad buffers before every
                # backward — keeps the buffer identity stable instead of
                # orphaning it with a fresh allocation each step.
                np.multiply(p.grad, scale, out=p.grad)
            else:
                # Borrowed references may be shared between parameters
                # (a backward closure can hand the same array to two
                # parents), so in-place scaling would double-apply; the
                # rebind allocates and the grad setter marks it borrowed.
                p.grad = p.grad * scale
    return total
