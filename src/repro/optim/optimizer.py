"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Optimizer", "clip_grad_norm"]


class Optimizer:
    """Base class: holds parameter references and clears gradients."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients in-place.

    Returns the pre-clipping norm (useful for logging exploding grads).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
