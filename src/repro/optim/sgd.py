"""Plain SGD with optional momentum (used in ablation/testing)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self._velocity is not None:
                vel = self._velocity[i]
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data = p.data - self.lr * grad
