"""Plain SGD with optional momentum (used in ablation/testing)."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.autograd.tensor import Tensor, bump_parameter_version
from repro.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD updating ``p.data`` (and the velocity buffers) fully in place.

    A preallocated per-parameter scratch buffer absorbs the weight-decay
    and learning-rate scalings, so a step allocates nothing.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum else None
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            s = self._scratch[i]
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=s)
                s += grad
                grad = s
            if self._velocity is not None:
                vel = self._velocity[i]
                vel *= self.momentum
                vel += grad
                grad = vel
            if grad is s:
                s *= self.lr
            else:
                np.multiply(grad, self.lr, out=s)
            p.data -= s
        bump_parameter_version()

    # ------------------------------------------------------------------
    # Resume state
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        state = super().state_dict()
        if self._velocity is not None:
            state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        if (self._velocity is not None) != ("velocity" in state):
            raise ValueError(
                "optimizer state mismatch: momentum buffers present on only "
                "one side of the restore"
            )
        if self._velocity is not None:
            self._restore_buffers(self._velocity, state["velocity"], "velocity")
