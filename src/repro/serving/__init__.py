"""Online serving subsystem: ``user history -> top-k`` at low latency.

The production-facing counterpart of the training stack (ROADMAP
"online inference service" item).  Five cooperating pieces:

- :class:`~repro.serving.session.UserSession` /
  :class:`~repro.serving.session.SessionCache` — ring-buffered
  per-user history windows with cached encoder state and LRU bounds;
- :class:`~repro.serving.table.ItemTable` — eval-only (float16 by
  default) snapshots of the item-score table with staleness detection
  and double-buffered replacement;
- :mod:`repro.evaluation.topk` — blocked ``argpartition`` top-k shared
  with the evaluation stack;
- :class:`~repro.serving.fallback.PopularityRanker` — the degraded-mode
  answer (popularity top-k, exact seen-item masking) used when the
  model path fails or the service sheds to it under overload;
- :class:`~repro.serving.service.RecommenderService` — the synchronous
  request API tying them together behind a micro-batching collector,
  with per-request deadlines, admission control and collector-failure
  containment (typed errors: :class:`~repro.serving.service.DeadlineExceeded`,
  :class:`~repro.serving.service.Overloaded`).

Entry points: ``python -m repro.serving.cli`` (the ``repro-serve``
command) for replay benchmarks and ad-hoc queries;
``benchmarks/bench_serving_latency.py`` for the committed p50/p99/QPS
A/B under Zipfian traffic; ``tests/test_serving_faults.py`` for the
chaos matrix pinning the failure semantics.
"""

from repro.serving.fallback import PopularityRanker
from repro.serving.session import SessionCache, UserSession
from repro.serving.table import ItemTable
from repro.serving.service import (
    DeadlineExceeded,
    Overloaded,
    RecommenderService,
    ServingConfig,
    ServingError,
)

__all__ = [
    "SessionCache",
    "UserSession",
    "ItemTable",
    "PopularityRanker",
    "RecommenderService",
    "ServingConfig",
    "ServingError",
    "DeadlineExceeded",
    "Overloaded",
]
