"""Command-line serving entry point (``repro-serve``).

Builds a model (optionally restoring a ``repro-train`` checkpoint),
stands up a :class:`~repro.serving.RecommenderService`, seeds it with
the dataset's user histories, and then either:

- answers one ad-hoc query (``--history "3 17 42"``), or
- replays a Zipfian request stream and reports per-request latency
  percentiles and QPS (the default).

Usage::

    python -m repro.serving.cli --model SLIME4Rec --dataset beauty \
        --checkpoint out/slime.npz --requests 2000 --concurrency 4

    python -m repro.serving.cli --history "3 17 42" --k 5

The replay loop models online traffic: each request picks a user from
a Zipf popularity law, appends one new interaction event to their
session (``observe``), then asks for top-k (``recommend``) — so the
cached-user-state path is exercised exactly as production would: every
request dirties one session and reuses the rest.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from repro.baselines import BASELINE_NAMES, build_baseline
from repro.data.synthetic import PRESETS, load_preset
from repro.serving.service import (
    DeadlineExceeded,
    Overloaded,
    RecommenderService,
    ServingConfig,
)
from repro.utils.io import load_checkpoint

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description="Serve top-k recommendations online."
    )
    parser.add_argument("--model", choices=BASELINE_NAMES, default="SLIME4Rec")
    parser.add_argument("--dataset", choices=sorted(PRESETS), default="beauty")
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--max-len", type=int, default=24)
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--dtype", choices=("float32", "float64"), default="float32",
        help="model compute precision (serving default float32)",
    )
    parser.add_argument(
        "--checkpoint", help="repro-train .npz checkpoint to restore weights from"
    )
    # serving knobs
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument(
        "--table-dtype", choices=("float16", "float32", "float64", "model"),
        default="float16", help="eval-only item-table precision (default float16)",
    )
    parser.add_argument(
        "--topk", choices=("blocked", "full_sort"), default="blocked",
        help="top-k strategy (full_sort is the naive reference)",
    )
    parser.add_argument("--block-size", type=int, default=8192)
    parser.add_argument("--micro-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--no-batching", action="store_true",
        help="serve inline in the caller's thread (no collector)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=None,
        help="LRU bound on resident user sessions (default unbounded)",
    )
    parser.add_argument(
        "--include-seen", action="store_true",
        help="do not mask the user's own window items from results",
    )
    # resilience knobs (all off by default, like ServingConfig)
    parser.add_argument(
        "--request-timeout-ms", type=float, default=None,
        help="end-to-end per-request deadline in ms (default: no deadline)",
    )
    parser.add_argument(
        "--queue-timeout-ms", type=float, default=None,
        help="max queue residency in ms before DeadlineExceeded "
        "(default: only the request deadline bounds it)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=None,
        help="bound on queued requests (default unbounded); admission "
        "control kicks in when full",
    )
    parser.add_argument(
        "--admission-policy", choices=("block", "shed", "degrade"),
        default="block",
        help="full-queue behavior: block (wait), shed (raise Overloaded) "
        "or degrade (popularity fallback)",
    )
    parser.add_argument(
        "--on-error", choices=("degrade", "raise"), default="degrade",
        help="model-path exception behavior: degrade (popularity "
        "fallback, default) or raise to the caller",
    )
    parser.add_argument(
        "--degrade-on-stale", action="store_true",
        help="serve degraded and refresh the item table in the "
        "background instead of rebuilding it on the request path",
    )
    # workload
    parser.add_argument(
        "--history", metavar="IDS",
        help='serve one ad-hoc request for this space-separated item-id '
        'history (e.g. "3 17 42") and exit',
    )
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument(
        "--zipf-a", type=float, default=1.2,
        help="Zipf exponent of the user-popularity replay (default 1.2)",
    )
    parser.add_argument("--quiet", action="store_true")
    return parser


def _build_service(args, model) -> RecommenderService:
    config = ServingConfig(
        k=args.k,
        table_dtype=args.table_dtype,
        block_size=args.block_size,
        topk=args.topk,
        micro_batch=args.micro_batch,
        max_wait_ms=args.max_wait_ms,
        batching=not args.no_batching,
        cache_capacity=args.cache_capacity,
        exclude_seen=not args.include_seen,
        request_timeout_ms=args.request_timeout_ms,
        queue_timeout_ms=args.queue_timeout_ms,
        queue_capacity=args.queue_capacity,
        admission_policy=args.admission_policy,
        on_error=args.on_error,
        degrade_on_stale=args.degrade_on_stale,
    )
    return RecommenderService(model, config)


def _zipf_users(num_users: int, count: int, a: float, rng) -> np.ndarray:
    """Zipf-popular user indices in ``[0, num_users)`` (rank-frequency)."""
    ranks = np.arange(1, num_users + 1, dtype=np.float64)
    probs = ranks ** (-a)
    probs /= probs.sum()
    order = rng.permutation(num_users)  # which user gets which popularity rank
    return order[rng.choice(num_users, size=count, p=probs)]


def _replay(args, service: RecommenderService, dataset, out) -> dict:
    rng = np.random.default_rng(args.seed + 77)
    num_users = dataset.num_users
    for user_id, seq in enumerate(dataset.sequences):
        service.observe_history(user_id, seq[-dataset.max_len :])
    users = _zipf_users(num_users, args.requests, args.zipf_a, rng)
    events = rng.integers(1, dataset.num_items + 1, size=args.requests)

    latencies = np.zeros(args.requests)
    shed = [0]
    expired = [0]
    degraded = [0]
    cursor = [0]
    cursor_lock = threading.Lock()

    def worker() -> None:
        while True:
            with cursor_lock:
                i = cursor[0]
                if i >= args.requests:
                    return
                cursor[0] += 1
            service.observe(int(users[i]), int(events[i]))
            start = time.perf_counter()
            try:
                result = service.recommend(int(users[i]))
            except Overloaded:
                latencies[i] = np.nan
                with cursor_lock:
                    shed[0] += 1
                continue
            except DeadlineExceeded:
                latencies[i] = np.nan
                with cursor_lock:
                    expired[0] += 1
                continue
            latencies[i] = (time.perf_counter() - start) * 1000.0
            if result.degraded:
                with cursor_lock:
                    degraded[0] += 1

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(max(args.concurrency, 1))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start

    answered = int(np.isfinite(latencies).sum())
    summary = {
        "requests": args.requests,
        "concurrency": args.concurrency,
        "p50_ms": float(np.nanpercentile(latencies, 50)) if answered else float("nan"),
        "p99_ms": float(np.nanpercentile(latencies, 99)) if answered else float("nan"),
        "qps": answered / wall if wall else 0.0,
        "shed": shed[0],
        "deadline_expired": expired[0],
        "degraded": degraded[0],
    }
    print(
        f"replay: {summary['requests']} requests, concurrency "
        f"{summary['concurrency']}, zipf a={args.zipf_a}",
        file=out,
    )
    print(
        f"latency p50 {summary['p50_ms']:.2f} ms  p99 {summary['p99_ms']:.2f} ms  "
        f"throughput {summary['qps']:.0f} QPS",
        file=out,
    )
    if summary["shed"] or summary["deadline_expired"] or summary["degraded"]:
        print(
            f"shed {summary['shed']}  deadline expired "
            f"{summary['deadline_expired']}  degraded {summary['degraded']}",
            file=out,
        )
    stats = service.stats()
    print(
        f"batches {stats['batches']} (mean size {stats['mean_batch_size']:.1f})  "
        f"encodes {stats['encodes']}  vec reuses {stats['user_vec_reuses']}  "
        f"table {stats['table_dtype']} ({stats['table_nbytes'] / 1e6:.1f} MB)",
        file=out,
    )
    return summary


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    dataset = load_preset(args.dataset, scale=args.scale, max_len=args.max_len)
    model = build_baseline(
        args.model,
        dataset,
        hidden_dim=args.hidden_dim,
        num_layers=args.num_layers,
        seed=args.seed,
        dtype=args.dtype,
    )
    if args.checkpoint:
        load_checkpoint(args.checkpoint, model=model)
        if not args.quiet:
            print(f"restored weights from {args.checkpoint}", file=out)
    if not args.quiet:
        print(dataset.stats().as_row(), file=out)
        print(f"{args.model}: {model.num_parameters():,} parameters", file=out)

    with _build_service(args, model) as service:
        if args.history:
            history = [int(tok) for tok in args.history.split()]
            service.observe_history("adhoc", history)
            result = service.recommend("adhoc", k=args.k)
            ids = [int(i) for i in result.ids[0] if i >= 0]
            scores = [float(s) for s in result.scores[0][: len(ids)]]
            print(f"history: {history}", file=out)
            for rank, (item, score) in enumerate(zip(ids, scores), start=1):
                print(f"  {rank:>2}. item {item:<8} score {score:+.4f}", file=out)
            return 0
        _replay(args, service, dataset, out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
