"""Degraded-mode ranking: popularity top-k with no model in the path.

When the model path fails — an exception mid-encode, a table stuck
mid-refresh, a collector past its restart budget — the serving layer
must still answer, and the industry-standard degraded answer is
**popularity ranking**: the globally most-interacted items the user has
not already seen.  It is not personalized, but it is never wrong in the
ways that matter operationally: the masking contract is exact, the
result shape is the model path's shape, and nothing in it can raise for
model-side reasons (no encode, no GEMM, no parameter state).

:class:`PopularityRanker` is that answer:

- **Counts come from the request stream itself.**  The owning
  :class:`~repro.serving.service.RecommenderService` feeds every
  ``observe`` / ``observe_history`` event into :meth:`observe` /
  :meth:`observe_many` (an O(1) int increment per event, always on —
  the ranker is warm *before* the incident that needs it).  Counts are
  cumulative traffic statistics: re-seeding a user via
  ``observe_history`` counts again, evicted sessions keep their
  contribution.  That coarseness is fine for a fallback.
- **Bounded ranking cost.**  The popularity order (count descending,
  ties by ascending item id — the same tie rule as
  :mod:`repro.evaluation.topk`) is a cached lexsort, rebuilt lazily
  only after ``refresh_every`` new events have accumulated, so a
  degraded request costs an O(V) masked walk of a precomputed order,
  not an O(V log V) sort per request.  Between rebuilds the *order* may
  lag the newest events by up to ``refresh_every`` observations
  (documented staleness; call :meth:`rebuild` to force freshness).
- **Exact masking, always.**  Exclusion (the caller's seen-item set)
  is applied at query time against the current order, so a masked id
  can never surface no matter how stale the cached order is; the
  padding id 0 never appears by construction (the order only contains
  ``1..num_items``).  Rows with fewer than ``k`` admissible items pad
  with id ``-1`` / score ``-inf``, exactly like the model path.

Results come back as :class:`~repro.evaluation.topk.TopKResult` with
``degraded=True`` and the item's popularity count (as float32) in the
score slot — same shape, honest provenance.

Thread safety: none here; the owning service serializes access under
its lock, like the session cache and item table.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.evaluation.topk import TopKResult

__all__ = ["PopularityRanker"]


class PopularityRanker:
    """Seen-item-masked popularity top-k over ``1..num_items``.

    Parameters
    ----------
    num_items:
        Catalog size; observed ids must lie in ``1..num_items``.
    refresh_every:
        Rebuild the cached popularity order once at least this many new
        events have accumulated since the last build (staleness bound;
        1 keeps the order always fresh at O(V log V) per dirtying
        event's next query).
    """

    def __init__(self, num_items: int, refresh_every: int = 64) -> None:
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        self.num_items = int(num_items)
        self.refresh_every = int(refresh_every)
        #: lifetime interaction count per item id (slot 0 unused)
        self.counts = np.zeros(self.num_items + 1, dtype=np.int64)
        self._order: Optional[np.ndarray] = None
        self._stale_events = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Event ingestion
    # ------------------------------------------------------------------
    def observe(self, item_id: int) -> None:
        """Count one interaction event; O(1)."""
        item_id = int(item_id)
        if not 1 <= item_id <= self.num_items:
            raise ValueError(
                f"item ids must be in 1..{self.num_items}, got {item_id}"
            )
        self.counts[item_id] += 1
        self._note_events(1)

    def observe_many(self, item_ids: Iterable[int]) -> None:
        """Count a batch of events (history seeding); vectorized."""
        ids = np.asarray(
            item_ids if isinstance(item_ids, np.ndarray) else list(item_ids),
            dtype=np.int64,
        )
        if ids.size == 0:
            return
        if ids.min() < 1 or ids.max() > self.num_items:
            raise ValueError(
                f"item ids must be in 1..{self.num_items}, "
                f"got range [{ids.min()}, {ids.max()}]"
            )
        self.counts += np.bincount(ids, minlength=self.counts.size)
        self._note_events(int(ids.size))

    def _note_events(self, n: int) -> None:
        self._stale_events += n
        if self._order is not None and self._stale_events >= self.refresh_every:
            self._order = None  # rebuilt lazily on the next query

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Recompute the popularity order (count desc, ties by id asc)."""
        ids = np.arange(1, self.num_items + 1, dtype=np.int64)
        self._order = ids[np.lexsort((ids, -self.counts[1:]))]
        self._stale_events = 0
        self.rebuilds += 1

    def topk(self, k: int, exclude: Optional[np.ndarray] = None) -> TopKResult:
        """Most popular ``k`` admissible items as a ``(1, k)`` result.

        ``exclude`` is a (sorted or not) array of item ids that must
        not surface — the service passes the session's ``seen()`` set.
        Masking is applied against the *current* order at query time,
        so it is exact even when the cached order is stale.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self._order is None:
            self.rebuild()
        order = self._order
        if exclude is not None and len(exclude):
            keep = np.isin(order, np.asarray(exclude, dtype=np.int64), invert=True)
            chosen = order[keep][:k]
        else:
            chosen = order[:k]
        ids = np.full(k, -1, dtype=np.int64)
        scores = np.full(k, -np.inf, dtype=np.float32)
        ids[: chosen.size] = chosen
        scores[: chosen.size] = self.counts[chosen].astype(np.float32)
        return TopKResult(ids=ids[None, :], scores=scores[None, :], degraded=True)

    def __repr__(self) -> str:
        return (
            f"PopularityRanker(num_items={self.num_items}, "
            f"events={int(self.counts.sum())}, rebuilds={self.rebuilds})"
        )
