"""Synchronous online recommender service: ``user history -> top-k``.

:class:`RecommenderService` composes the serving subsystem's four
pieces into one request path:

1. **Cached user state** (:mod:`repro.serving.session`): each user's
   recent-history window lives in a ring buffer; the encoded ``(d,)``
   user vector is cached on the session and reused until a new event
   or a parameter update invalidates it.
2. **Request micro-batching**: concurrent callers' dirty sessions are
   stacked into one ``(B, N)`` ``encode_users`` graph walk — the same
   batch-axis stacking the training-side ``encode_views`` uses — behind
   a max-batch / max-wait collector thread.  ``recommend`` stays a
   plain synchronous call; the batching is invisible to callers.
3. **Half-precision item table** (:mod:`repro.serving.table`): scoring
   runs against an eval-only float16 snapshot of the item embeddings,
   cast and GEMM'd block-by-block in float32.
4. **Blocked top-k** (:mod:`repro.evaluation.topk`): each score block
   folds straight into an ``argpartition`` candidate pool with
   seen-item masking; the full ``(B, V)`` score matrix and any full
   catalog sort never materialize.

Every piece degrades independently through :class:`ServingConfig` —
``batching=False`` serves inline in the caller's thread,
``reuse_user_state=False`` re-encodes every request,
``table_dtype="float32"`` / ``topk="full_sort"`` select the reference
arms — which is exactly how ``benchmarks/bench_serving_latency.py``
builds its naive baseline.

Consistency contract: one batch is scored under one parameter version.
The service checks :meth:`ItemTable.is_stale` per batch and refreshes
the table before scoring; cached user vectors carry the version they
were encoded under and are re-encoded when it no longer matches, so a
response never mixes user vectors and item tables from different
parameter states (pinned by ``tests/test_serving.py``).

The service owns one lock; session mutation, encoding and scoring all
run under it.  With batching enabled the collector thread is the only
scorer, so callers merely enqueue and wait.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.evaluation.topk import TopKAccumulator, TopKResult, full_sort_topk
from repro.serving.session import SessionCache
from repro.serving.table import ItemTable

__all__ = ["ServingConfig", "RecommenderService"]


@dataclass
class ServingConfig:
    """Knobs of the serving path; defaults are the production-fast arm."""

    #: recommendations per request (overridable per call)
    k: int = 10
    #: item-table snapshot dtype: "float16" | "float32" | "float64" | "model"
    table_dtype: str = "float16"
    #: catalog column-block width for blocked scoring / top-k
    block_size: int = 8192
    #: "blocked" (argpartition pool) or "full_sort" (naive reference)
    topk: str = "blocked"
    #: stack up to this many concurrent requests into one encode
    micro_batch: int = 32
    #: how long the collector waits for a fuller batch (milliseconds)
    max_wait_ms: float = 2.0
    #: False serves inline in the caller's thread (no collector thread)
    batching: bool = True
    #: LRU bound on resident sessions (None = unbounded)
    cache_capacity: Optional[int] = None
    #: False re-encodes the window on every request (naive reference)
    reuse_user_state: bool = True
    #: mask items present in the user's window out of the results
    exclude_seen: bool = True
    #: rebuild the item table when model parameters changed
    auto_refresh: bool = True
    #: chunk very large encode batches (None = single stacked walk)
    encode_batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.topk not in ("blocked", "full_sort"):
            raise ValueError(f"topk must be 'blocked' or 'full_sort', got {self.topk!r}")
        if self.micro_batch < 1:
            raise ValueError(f"micro_batch must be >= 1, got {self.micro_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")


class _Request:
    """One in-flight recommend call parked on the collector queue."""

    __slots__ = ("user_id", "k", "event", "result", "error")

    def __init__(self, user_id, k: int) -> None:
        self.user_id = user_id
        self.k = k
        self.event = threading.Event()
        self.result: Optional[TopKResult] = None
        self.error: Optional[BaseException] = None


class RecommenderService:
    """Serve top-k recommendations from a trained sequential model.

    The model is put in eval mode at construction (dropout off — the
    cached-state contract requires encoding to be deterministic) and
    must stay there; train it elsewhere and the next batch picks up the
    new parameters via the staleness check.

    ``num_items`` defaults to ``model.num_items``; recommendations are
    item ids in ``1..num_items`` (the padding column 0 is always
    excluded).
    """

    def __init__(self, model, config: Optional[ServingConfig] = None) -> None:
        self.model = model
        self.config = config or ServingConfig()
        model.eval()
        self.num_items = int(model.num_items)
        self._lock = threading.Lock()
        self._table = ItemTable(
            model, dtype=self.config.table_dtype, block_size=self.config.block_size
        )
        self.sessions = SessionCache(
            model.max_len, capacity=self.config.cache_capacity
        )
        # collector state (started lazily on the first batched request)
        self._queue: List[_Request] = []
        self._cond = threading.Condition()
        self._collector: Optional[threading.Thread] = None
        self._closed = False
        # counters (read via stats())
        self._requests = 0
        self._batches = 0
        self._batched_requests = 0
        self._encoded = 0
        self._vec_reuses = 0

    # ------------------------------------------------------------------
    # Event ingestion
    # ------------------------------------------------------------------
    def observe(self, user_id, item_id: int) -> None:
        """Record one interaction event (O(1); no encode happens here)."""
        with self._lock:
            self.sessions.get_or_create(user_id).append(item_id)

    def observe_history(self, user_id, item_ids: Iterable[int]) -> None:
        """Reset a user's session to a known history (cold start)."""
        with self._lock:
            self.sessions.get_or_create(user_id).replace_history(item_ids)

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def recommend(self, user_id, k: Optional[int] = None) -> TopKResult:
        """Top-k items for one user; synchronous, thread-safe.

        With batching enabled the request parks on the collector queue
        and is served together with whatever concurrent requests arrive
        within the max-batch / max-wait window; otherwise it is served
        inline.  Returns a :class:`TopKResult` with ``(1, k')`` rows.
        """
        request = _Request(user_id, int(k) if k is not None else self.config.k)
        if request.k < 1:
            raise ValueError(f"k must be >= 1, got {request.k}")
        self._requests += 1
        if not self.config.batching:
            self._serve_batch([request])
        else:
            with self._cond:
                if self._closed:
                    raise RuntimeError("RecommenderService is closed")
                self._ensure_collector()
                self._queue.append(request)
                self._cond.notify_all()
            if not request.event.wait(timeout=120.0):
                raise RuntimeError("serving request timed out (collector stuck?)")
        if request.error is not None:
            raise request.error
        return request.result

    def recommend_many(
        self, user_ids: Sequence, k: Optional[int] = None
    ) -> List[TopKResult]:
        """Serve several users as one explicit batch (no collector).

        The offline counterpart of the micro-batcher: one stacked
        encode and one blocked scoring pass for the whole list.
        """
        k = int(k) if k is not None else self.config.k
        requests = [_Request(user_id, k) for user_id in user_ids]
        self._requests += len(requests)
        self._serve_batch(requests)
        for request in requests:
            if request.error is not None:
                raise request.error
        return [request.result for request in requests]

    # ------------------------------------------------------------------
    # Collector thread
    # ------------------------------------------------------------------
    def _ensure_collector(self) -> None:
        if self._collector is None or not self._collector.is_alive():
            self._collector = threading.Thread(
                target=self._collector_loop, name="repro-serve-collector", daemon=True
            )
            self._collector.start()

    def _collector_loop(self) -> None:
        max_batch = self.config.micro_batch
        max_wait = self.config.max_wait_ms / 1000.0
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                deadline = time.monotonic() + max_wait
                while len(self._queue) < max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = self._queue[:max_batch]
                del self._queue[:max_batch]
            try:
                self._serve_batch(batch)
            except BaseException as exc:  # propagate to the waiters, keep serving
                for request in batch:
                    if request.error is None and request.result is None:
                        request.error = exc
                        request.event.set()

    # ------------------------------------------------------------------
    # The batch pipeline
    # ------------------------------------------------------------------
    def _serve_batch(self, requests: List[_Request]) -> None:
        """Encode (only) dirty sessions, score blocked, rank, fulfill."""
        if not requests:
            return
        try:
            with self._lock:
                table = self._table
                if self.config.auto_refresh and table.is_stale(self.model):
                    table.refresh(self.model)
                version = table.version
                sessions = [
                    self.sessions.get_or_create(r.user_id) for r in requests
                ]
                reuse = self.config.reuse_user_state
                dirty = [
                    i
                    for i, s in enumerate(sessions)
                    if not (reuse and s.is_fresh(version))
                ]
                self._vec_reuses += len(sessions) - len(dirty)
                if dirty:
                    windows = np.stack([sessions[i].window() for i in dirty])
                    vecs = self.model.encode_users(
                        windows, batch_size=self.config.encode_batch_size
                    )
                    self._encoded += len(dirty)
                    for row, i in enumerate(dirty):
                        sessions[i].store_vec(vecs[row], version)
                users = table.prepare_users(
                    np.stack([s.user_vec for s in sessions])
                )
                exclude = (
                    [s.seen() for s in sessions] if self.config.exclude_seen else None
                )
                k = max(r.k for r in requests)
                result = self._rank(users, k, exclude)
                self._batches += 1
                self._batched_requests += len(requests)
            for row, request in enumerate(requests):
                request.result = TopKResult(
                    ids=result.ids[row : row + 1, : request.k],
                    scores=result.scores[row : row + 1, : request.k],
                )
                request.event.set()
        except BaseException as exc:
            for request in requests:
                if request.result is None and request.error is None:
                    request.error = exc
                    request.event.set()
            raise

    def _rank(
        self,
        users: np.ndarray,
        k: int,
        exclude: Optional[List[np.ndarray]],
    ) -> TopKResult:
        table = self._table
        if self.config.topk == "full_sort":
            scores = table.score_all(users)
            return full_sort_topk(scores, k, exclude=exclude, exclude_padding=True)
        acc = TopKAccumulator(users.shape[0], k)
        for start in range(0, table.num_columns, self.config.block_size):
            stop = min(start + self.config.block_size, table.num_columns)
            block = table.score_block(users, start, stop)
            acc.update(
                start, block, exclude=exclude, exclude_padding=True, writable=True
            )
        return acc.result()

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def refresh_table(self) -> None:
        """Force a table re-snapshot (normally automatic per batch)."""
        with self._lock:
            self._table.refresh(self.model)

    @property
    def table(self) -> ItemTable:
        return self._table

    def stats(self) -> dict:
        """Serving counters: request/batch/encode/cache-hit accounting."""
        with self._lock:
            batches = max(self._batches, 1)
            return {
                "requests": self._requests,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
                "mean_batch_size": self._batched_requests / batches,
                "encodes": self._encoded,
                "user_vec_reuses": self._vec_reuses,
                "sessions": len(self.sessions),
                "session_evictions": self.sessions.evictions,
                "table_refreshes": self._table.refreshes,
                "table_dtype": str(self._table.table.dtype),
                "table_nbytes": self._table.nbytes(),
            }

    def close(self) -> None:
        """Stop the collector thread; pending requests are still served."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._collector is not None:
            self._collector.join(timeout=10.0)

    def __enter__(self) -> "RecommenderService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
