"""Synchronous online recommender service: ``user history -> top-k``.

:class:`RecommenderService` composes the serving subsystem's pieces
into one request path:

1. **Cached user state** (:mod:`repro.serving.session`): each user's
   recent-history window lives in a ring buffer; the encoded ``(d,)``
   user vector is cached on the session and reused until a new event
   or a parameter update invalidates it.
2. **Request micro-batching**: concurrent callers' dirty sessions are
   stacked into one ``(B, N)`` ``encode_users`` graph walk — the same
   batch-axis stacking the training-side ``encode_views`` uses — behind
   a max-batch / max-wait collector thread.  ``recommend`` stays a
   plain synchronous call; the batching is invisible to callers.
3. **Half-precision item table** (:mod:`repro.serving.table`): scoring
   runs against an eval-only float16 snapshot of the item embeddings,
   cast and GEMM'd block-by-block in float32.
4. **Blocked top-k** (:mod:`repro.evaluation.topk`): each score block
   folds straight into an ``argpartition`` candidate pool with
   seen-item masking; the full ``(B, V)`` score matrix and any full
   catalog sort never materialize.
5. **Fault tolerance** (:mod:`repro.serving.fallback`,
   :mod:`repro.utils.faults`): per-request deadlines, bounded-queue
   admission control (``block | shed | degrade``), degraded-mode
   popularity ranking when the model path fails, and collector-thread
   exception containment with a bounded restart budget.  Deterministic
   chaos trip points (``serve.encode`` / ``serve.score`` /
   ``serve.collect`` / ``serve.refresh``) live in these production
   paths so the failure story is testable, not aspirational.

Every piece degrades independently through :class:`ServingConfig` —
``batching=False`` serves inline in the caller's thread,
``reuse_user_state=False`` re-encodes every request,
``table_dtype="float32"`` / ``topk="full_sort"`` select the reference
arms — which is exactly how ``benchmarks/bench_serving_latency.py``
builds its naive baseline.  All robustness knobs default **off** (no
deadlines, unbounded queue, blocking admission), and with them off the
request path is byte-for-byte the classic fast arm.

Consistency contract: one batch is scored under one parameter version.
The service checks :meth:`ItemTable.is_stale` per batch and refreshes
the table before scoring; cached user vectors carry the version they
were encoded under and are re-encoded when it no longer matches, so a
response never mixes user vectors and item tables from different
parameter states (pinned by ``tests/test_serving.py``).  The batch
pipeline reads ``self._table`` exactly once under the lock and passes
that reference through scoring, so a concurrent double-buffered swap
(:meth:`refresh_table`) can never split a batch across two snapshots.

**Failure semantics** (pinned by ``tests/test_serving_faults.py``):

- A request with ``request_timeout_ms`` set *never* blocks past its
  deadline while queued on the collector: the caller's own wait is
  bounded by the deadline, and the collector drains expired requests
  with :class:`DeadlineExceeded` instead of encoding them.  (With
  ``batching=False`` the caller executes the pipeline synchronously in
  its own thread; deadlines are then enforced at batch entry only — a
  synchronous caller cannot abandon its own encode.)
- A model-path exception (encode, score, refresh) fails only its own
  batch: with ``on_error="degrade"`` (default) the batch is answered
  by the popularity fallback (results flagged ``degraded=True``); with
  ``"raise"`` the exception propagates to each waiter.
- A collector-loop exception — anything escaping the drain/serve
  cycle, the ``serve.collect`` kill point — is caught, propagated to
  that batch's waiters, counted, and the loop continues (a logical
  restart).  After ``max_collector_restarts`` such failures the
  service enters **permanent fallback**: every request from then on is
  served degraded without touching the model, until
  :meth:`exit_fallback` (e.g. after an operator swaps the model).
- A full queue is an explicit decision, not silent latency growth:
  ``admission_policy="shed"`` raises :class:`Overloaded` immediately,
  ``"degrade"`` answers from the fallback ranker, ``"block"`` (the
  default) waits — bounded by the request deadline when one is set.

The service owns one lock; session mutation, encoding and scoring all
run under it.  With batching enabled the collector thread is the only
model-path scorer, so callers merely enqueue and wait.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.evaluation.topk import TopKAccumulator, TopKResult, full_sort_topk
from repro.serving.fallback import PopularityRanker
from repro.serving.session import SessionCache
from repro.serving.table import ItemTable
from repro.utils import faults

__all__ = [
    "ServingConfig",
    "RecommenderService",
    "ServingError",
    "DeadlineExceeded",
    "Overloaded",
]

#: accepted admission policies for a full request queue
_ADMISSION_POLICIES = ("block", "shed", "degrade")

#: accepted model-path error policies
_ERROR_POLICIES = ("degrade", "raise")

#: caller-side wait bound when no deadline is configured — a watchdog
#: against a wedged collector, not a latency contract
_NO_DEADLINE_WAIT_S = 120.0


class ServingError(RuntimeError):
    """Base of the serving layer's typed request failures."""


class DeadlineExceeded(ServingError):
    """The request's deadline passed before a result was produced."""


class Overloaded(ServingError):
    """The request was shed by admission control (queue at capacity)."""


@dataclass
class ServingConfig:
    """Knobs of the serving path; defaults are the production-fast arm."""

    #: recommendations per request (overridable per call)
    k: int = 10
    #: item-table snapshot dtype: "float16" | "float32" | "float64" | "model"
    table_dtype: str = "float16"
    #: catalog column-block width for blocked scoring / top-k
    block_size: int = 8192
    #: "blocked" (argpartition pool) or "full_sort" (naive reference)
    topk: str = "blocked"
    #: stack up to this many concurrent requests into one encode
    micro_batch: int = 32
    #: how long the collector waits for a fuller batch (milliseconds)
    max_wait_ms: float = 2.0
    #: False serves inline in the caller's thread (no collector thread)
    batching: bool = True
    #: LRU bound on resident sessions (None = unbounded)
    cache_capacity: Optional[int] = None
    #: False re-encodes the window on every request (naive reference)
    reuse_user_state: bool = True
    #: mask items present in the user's window out of the results
    exclude_seen: bool = True
    #: rebuild the item table when model parameters changed
    auto_refresh: bool = True
    #: chunk very large encode batches (None = single stacked walk)
    encode_batch_size: Optional[int] = None
    # --- resilience knobs (all off by default) ------------------------
    #: end-to-end per-request deadline in ms (None = no deadline)
    request_timeout_ms: Optional[float] = None
    #: max time a request may sit on the collector queue in ms; expired
    #: requests are drained with DeadlineExceeded instead of encoded
    #: (None = only request_timeout_ms bounds queue time)
    queue_timeout_ms: Optional[float] = None
    #: bound on queued requests (None = unbounded); must be able to
    #: hold at least one full micro-batch
    queue_capacity: Optional[int] = None
    #: what a full queue does to a new request: "block" | "shed" | "degrade"
    admission_policy: str = "block"
    #: what a model-path exception does to its batch: "degrade" | "raise"
    on_error: str = "degrade"
    #: serve degraded (and refresh in the background) instead of
    #: rebuilding the item table synchronously on the request path
    degrade_on_stale: bool = False
    #: collector-loop failures tolerated before permanent fallback
    max_collector_restarts: int = 3

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.topk not in ("blocked", "full_sort"):
            raise ValueError(f"topk must be 'blocked' or 'full_sort', got {self.topk!r}")
        if self.micro_batch < 1:
            raise ValueError(f"micro_batch must be >= 1, got {self.micro_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        for name in ("request_timeout_ms", "queue_timeout_ms"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0 or None, got {value}")
        if self.queue_capacity is not None and self.queue_capacity < self.micro_batch:
            raise ValueError(
                f"queue_capacity must be >= micro_batch "
                f"({self.micro_batch}) so a full batch can form, "
                f"got {self.queue_capacity}"
            )
        if self.admission_policy not in _ADMISSION_POLICIES:
            raise ValueError(
                f"admission_policy must be one of {_ADMISSION_POLICIES}, "
                f"got {self.admission_policy!r}"
            )
        if self.on_error not in _ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {_ERROR_POLICIES}, got {self.on_error!r}"
            )
        if self.max_collector_restarts < 0:
            raise ValueError(
                f"max_collector_restarts must be >= 0, "
                f"got {self.max_collector_restarts}"
            )


class _Request:
    """One in-flight recommend call parked on the collector queue.

    Completion is first-writer-wins (:meth:`complete`): the collector
    fulfilling a batch and a caller abandoning its wait at the deadline
    can race, and exactly one of them must own the outcome.
    """

    __slots__ = (
        "user_id", "k", "event", "result", "error",
        "deadline", "queue_deadline", "_mutex",
    )

    def __init__(
        self,
        user_id,
        k: int,
        deadline: Optional[float] = None,
        queue_deadline: Optional[float] = None,
    ) -> None:
        self.user_id = user_id
        self.k = k
        self.event = threading.Event()
        self.result: Optional[TopKResult] = None
        self.error: Optional[BaseException] = None
        #: absolute monotonic end-to-end deadline (None = unbounded)
        self.deadline = deadline
        #: absolute monotonic queue-residency deadline (None = unbounded)
        self.queue_deadline = queue_deadline
        self._mutex = threading.Lock()

    def expiry(self) -> Optional[float]:
        """The earliest of the two deadlines, or None."""
        if self.deadline is None:
            return self.queue_deadline
        if self.queue_deadline is None:
            return self.deadline
        return min(self.deadline, self.queue_deadline)

    def expired(self, now: float) -> bool:
        expiry = self.expiry()
        return expiry is not None and now >= expiry

    def complete(
        self,
        result: Optional[TopKResult] = None,
        error: Optional[BaseException] = None,
    ) -> bool:
        """Deliver the outcome; False if another writer already did."""
        with self._mutex:
            if self.result is not None or self.error is not None:
                return False
            self.result = result
            self.error = error
        self.event.set()
        return True


class RecommenderService:
    """Serve top-k recommendations from a trained sequential model.

    The model is put in eval mode at construction (dropout off — the
    cached-state contract requires encoding to be deterministic) and
    must stay there; train it elsewhere and the next batch picks up the
    new parameters via the staleness check.

    ``num_items`` defaults to ``model.num_items``; recommendations are
    item ids in ``1..num_items`` (the padding column 0 is always
    excluded).
    """

    def __init__(self, model, config: Optional[ServingConfig] = None) -> None:
        self.model = model
        self.config = config or ServingConfig()
        model.eval()
        self.num_items = int(model.num_items)
        self._lock = threading.Lock()
        self._table = ItemTable(
            model, dtype=self.config.table_dtype, block_size=self.config.block_size
        )
        self.sessions = SessionCache(
            model.max_len, capacity=self.config.cache_capacity
        )
        #: always-warm popularity counts for degraded-mode answers
        self._fallback_ranker = PopularityRanker(self.num_items)
        # collector state (started lazily on the first batched request)
        self._queue: List[_Request] = []
        self._cond = threading.Condition()
        self._collector: Optional[threading.Thread] = None
        self._closed = False
        # double-buffered table refresh state
        self._refresh_mutex = threading.Lock()
        self._refresh_pending = False
        # degraded-mode state
        self._fallback_active = False
        self._fallback_reason: Optional[str] = None
        # counters (read via stats())
        self._requests = 0
        self._batches = 0
        self._batched_requests = 0
        self._encoded = 0
        self._vec_reuses = 0
        self._sheds = 0
        self._deadline_expired = 0
        self._degraded = 0
        self._model_errors = 0
        self._collector_failures = 0
        self._refresh_errors = 0

    # ------------------------------------------------------------------
    # Event ingestion
    # ------------------------------------------------------------------
    def observe(self, user_id, item_id: int) -> None:
        """Record one interaction event (O(1); no encode happens here)."""
        with self._lock:
            self.sessions.get_or_create(user_id).append(item_id)
            if 1 <= int(item_id) <= self.num_items:
                self._fallback_ranker.observe(item_id)

    def observe_history(self, user_id, item_ids: Iterable[int]) -> None:
        """Reset a user's session to a known history (cold start)."""
        items = np.asarray(
            item_ids if isinstance(item_ids, np.ndarray) else list(item_ids),
            dtype=np.int64,
        )
        with self._lock:
            self.sessions.get_or_create(user_id).replace_history(items)
            in_range = items[(items >= 1) & (items <= self.num_items)]
            self._fallback_ranker.observe_many(in_range)

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def _new_request(self, user_id, k: Optional[int]) -> _Request:
        k = int(k) if k is not None else self.config.k
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        now = time.monotonic()
        deadline = queue_deadline = None
        if self.config.request_timeout_ms is not None:
            deadline = now + self.config.request_timeout_ms / 1000.0
        if self.config.queue_timeout_ms is not None:
            queue_deadline = now + self.config.queue_timeout_ms / 1000.0
        return _Request(user_id, k, deadline=deadline, queue_deadline=queue_deadline)

    def recommend(self, user_id, k: Optional[int] = None) -> TopKResult:
        """Top-k items for one user; synchronous, thread-safe.

        With batching enabled the request parks on the collector queue
        and is served together with whatever concurrent requests arrive
        within the max-batch / max-wait window; otherwise it is served
        inline.  Returns a :class:`TopKResult` with ``(1, k')`` rows.

        Raises :class:`Overloaded` when admission control sheds the
        request, :class:`DeadlineExceeded` when ``request_timeout_ms``
        or ``queue_timeout_ms`` expires first, and whatever the model
        raised when ``on_error="raise"``.
        """
        request = self._new_request(user_id, k)
        self._requests += 1
        if not self.config.batching:
            self._serve_batch([request])
        else:
            enqueued = self._admit(request)
            if not enqueued:
                # admission answered without the collector (degrade
                # policy on a full queue, or permanent fallback)
                self._serve_fallback([request])
            else:
                self._await(request)
        if request.error is not None:
            raise request.error
        return request.result

    def recommend_many(
        self, user_ids: Sequence, k: Optional[int] = None
    ) -> List[TopKResult]:
        """Serve several users as one explicit batch (no collector).

        The offline counterpart of the micro-batcher: one stacked
        encode and one blocked scoring pass for the whole list.  Under
        ``on_error="degrade"`` a model-path fault yields degraded
        results instead of raising.
        """
        requests = [self._new_request(user_id, k) for user_id in user_ids]
        self._requests += len(requests)
        self._serve_batch(requests)
        for request in requests:
            if request.error is not None:
                raise request.error
        return [request.result for request in requests]

    # ------------------------------------------------------------------
    # Admission control and the caller-side wait
    # ------------------------------------------------------------------
    def _admit(self, request: _Request) -> bool:
        """Enqueue ``request`` for the collector, subject to capacity.

        Returns False when the request must be served degraded inline
        instead (full queue under the ``degrade`` policy, or the
        service is in permanent fallback).  Raises :class:`Overloaded`
        (``shed`` policy) or :class:`DeadlineExceeded` (``block``
        policy past the deadline).
        """
        config = self.config
        with self._cond:
            if self._closed:
                raise RuntimeError("RecommenderService is closed")
            if self._fallback_active:
                return False
            self._ensure_collector()
            capacity = config.queue_capacity
            while capacity is not None and len(self._queue) >= capacity:
                if config.admission_policy == "shed":
                    self._sheds += 1
                    raise Overloaded(
                        f"request queue at capacity ({capacity}); shed"
                    )
                if config.admission_policy == "degrade":
                    self._sheds += 1
                    return False
                # "block": wait for the collector to drain, bounded by
                # the request deadline when one is set
                now = time.monotonic()
                if request.expired(now):
                    self._deadline_expired += 1
                    raise DeadlineExceeded(
                        "deadline expired while blocked on admission"
                    )
                expiry = request.expiry()
                self._cond.wait(None if expiry is None else expiry - now)
                if self._closed:
                    raise RuntimeError("RecommenderService is closed")
                if self._fallback_active:
                    return False
            self._queue.append(request)
            self._cond.notify_all()
        return True

    def _await(self, request: _Request) -> None:
        """Block until the request completes, never past its deadline."""
        if request.deadline is None:
            timeout = _NO_DEADLINE_WAIT_S
        else:
            timeout = max(request.deadline - time.monotonic(), 0.0)
        if request.event.wait(timeout):
            return
        # The wait expired.  Pull the request off the queue if the
        # collector has not picked it up, then race it for completion —
        # if the collector finished in the meantime, use its outcome.
        with self._cond:
            try:
                self._queue.remove(request)
            except ValueError:
                pass
        if request.deadline is None:
            # no deadline configured: this is the watchdog path
            raise RuntimeError("serving request timed out (collector stuck?)")
        if request.complete(
            error=DeadlineExceeded(
                f"no result within {self.config.request_timeout_ms:.0f} ms"
            )
        ):
            with self._cond:
                self._deadline_expired += 1

    # ------------------------------------------------------------------
    # Collector thread
    # ------------------------------------------------------------------
    def _ensure_collector(self) -> None:  # lint: unlocked-ok(caller holds _cond)
        """Start (or restart) the collector thread; caller holds _cond."""
        if self._collector is not None and self._collector.is_alive():
            return
        if self._collector is not None and not self._closed:
            # The previous thread died without going through the
            # loop-level handler — catastrophic, but still recoverable:
            # count it against the restart budget and start a new one.
            self._collector_failures += 1
            if self._collector_failures > self.config.max_collector_restarts:
                self._enter_fallback_locked(
                    f"collector thread died {self._collector_failures} times"
                )
                return
        self._collector = threading.Thread(
            target=self._collector_loop, name="repro-serve-collector", daemon=True
        )
        self._collector.start()

    def _drain(self) -> Optional[List[_Request]]:
        """Wait for work and pull up to one micro-batch off the queue.

        Returns None when the service is closed and the queue empty
        (the collector's exit signal).
        """
        max_batch = self.config.micro_batch
        max_wait = self.config.max_wait_ms / 1000.0
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if self._closed and not self._queue:
                return None
            deadline = time.monotonic() + max_wait
            while len(self._queue) < max_batch and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = self._queue[:max_batch]
            del self._queue[:max_batch]
            # wake admission blockers: queue space just freed up
            self._cond.notify_all()
        return batch

    def _collector_loop(self) -> None:
        """Drain/serve until closed; exceptions never kill the loop.

        Anything escaping a drain/serve cycle — including the
        ``serve.collect`` chaos kill point — is caught here, propagated
        to that batch's waiters, and counted; the loop then continues
        (a logical restart).  Past ``max_collector_restarts`` failures
        the service flips to permanent fallback and this loop keeps
        draining, answering everything from the popularity ranker.
        """
        while True:
            batch: List[_Request] = []
            try:
                drained = self._drain()
                if drained is None:
                    return
                batch = drained
                faults.trip("serve.collect")
                self._serve_batch(batch)
            except BaseException as exc:
                with self._cond:
                    self._collector_failures += 1
                    failures = self._collector_failures
                for request in batch:
                    request.complete(error=exc)
                if failures > self.config.max_collector_restarts:
                    self._enter_fallback(
                        f"collector failed {failures} times (last: {exc!r})"
                    )

    # ------------------------------------------------------------------
    # The batch pipeline
    # ------------------------------------------------------------------
    def _expire_requests(self, requests: List[_Request]) -> List[_Request]:
        """Fail already-expired requests; return the ones still live."""
        now = time.monotonic()
        live = []
        for request in requests:
            if request.expired(now):
                if request.complete(
                    error=DeadlineExceeded("deadline expired before serving")
                ):
                    with self._cond:
                        self._deadline_expired += 1
            else:
                live.append(request)
        return live

    def _serve_batch(self, requests: List[_Request]) -> None:
        """Encode (only) dirty sessions, score blocked, rank, fulfill.

        Never raises: outcomes land on each request (the inline and
        ``recommend_many`` entry points re-raise per-request errors).
        """
        live = self._expire_requests(requests)
        if not live:
            return
        with self._cond:
            fallback_active = self._fallback_active
        if fallback_active:
            self._serve_fallback(live)
            return
        try:
            table: Optional[ItemTable] = None
            with self._lock:
                table = self._table
                if self.config.auto_refresh and table.is_stale(self.model):
                    if self.config.degrade_on_stale:
                        # never rebuild on the request path: answer this
                        # batch degraded, refresh in the background
                        self._maybe_refresh_async()
                        table = None
                    else:
                        faults.trip("serve.refresh")
                        table.refresh(self.model)
                if table is not None:
                    version = table.version
                    sessions = [
                        self.sessions.get_or_create(r.user_id) for r in live
                    ]
                    reuse = self.config.reuse_user_state
                    dirty = [
                        i
                        for i, s in enumerate(sessions)
                        if not (reuse and s.is_fresh(version))
                    ]
                    self._vec_reuses += len(sessions) - len(dirty)
                    if dirty:
                        windows = np.stack([sessions[i].window() for i in dirty])
                        faults.trip("serve.encode")
                        vecs = self.model.encode_users(
                            windows, batch_size=self.config.encode_batch_size
                        )
                        self._encoded += len(dirty)
                        for row, i in enumerate(dirty):
                            sessions[i].store_vec(vecs[row], version)
                    users = table.prepare_users(
                        np.stack([s.user_vec for s in sessions])
                    )
                    exclude = (
                        [s.seen() for s in sessions]
                        if self.config.exclude_seen
                        else None
                    )
                    k = max(r.k for r in live)
                    faults.trip("serve.score")
                    result = self._rank(table, users, k, exclude)
                    self._batches += 1
                    self._batched_requests += len(live)
            if table is None:  # degraded-on-stale path
                self._serve_fallback(live)
                return
            for row, request in enumerate(live):
                request.complete(
                    result=TopKResult(
                        ids=result.ids[row : row + 1, : request.k],
                        scores=result.scores[row : row + 1, : request.k],
                    )
                )
        except BaseException as exc:
            self._model_errors += 1
            if self.config.on_error == "degrade":
                try:
                    self._serve_fallback(live)
                    return
                except BaseException as fallback_exc:  # pragma: no cover
                    exc = fallback_exc
            for request in live:
                request.complete(error=exc)

    def _serve_fallback(self, requests: List[_Request]) -> None:
        """Answer from the popularity ranker; no model in the path."""
        live = self._expire_requests(requests)
        if not live:
            return
        with self._lock:
            for request in live:
                session = self.sessions.get_or_create(request.user_id)
                exclude = session.seen() if self.config.exclude_seen else None
                result = self._fallback_ranker.topk(request.k, exclude=exclude)
                if request.complete(result=result):
                    self._degraded += 1

    def _rank(
        self,
        table: ItemTable,
        users: np.ndarray,
        k: int,
        exclude: Optional[List[np.ndarray]],
    ) -> TopKResult:
        if self.config.topk == "full_sort":
            scores = table.score_all(users)
            return full_sort_topk(scores, k, exclude=exclude, exclude_padding=True)
        acc = TopKAccumulator(users.shape[0], k)
        for start in range(0, table.num_columns, self.config.block_size):
            stop = min(start + self.config.block_size, table.num_columns)
            block = table.score_block(users, start, stop)
            acc.update(
                start, block, exclude=exclude, exclude_padding=True, writable=True
            )
        return acc.result()

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def _enter_fallback_locked(  # lint: unlocked-ok(caller holds _cond)
        self, reason: str
    ) -> List[_Request]:
        """Flip to permanent fallback; caller holds _cond.  Returns the
        stranded queue for the caller to serve degraded off-lock."""
        if self._fallback_active:
            return []
        self._fallback_active = True
        self._fallback_reason = str(reason)
        stranded = self._queue[:]
        self._queue.clear()
        self._cond.notify_all()
        return stranded

    def _enter_fallback(self, reason: str) -> None:
        with self._cond:
            stranded = self._enter_fallback_locked(reason)
        if stranded:
            self._serve_fallback(stranded)

    def enter_fallback(self, reason: str = "manual") -> None:
        """Force permanent degraded mode (ops switch / benchmarks).

        Every subsequent request is answered by the popularity ranker
        without touching the model; queued requests are served degraded
        immediately.  Reversible via :meth:`exit_fallback`.
        """
        self._enter_fallback(reason)

    def exit_fallback(self) -> None:
        """Leave permanent fallback and reset the restart budget.

        For operators: call after the underlying fault is fixed (e.g.
        a fresh checkpoint was loaded); the next request goes back
        through the model path.
        """
        with self._cond:
            self._fallback_active = False
            self._fallback_reason = None
            self._collector_failures = 0

    @property
    def fallback_active(self) -> bool:
        with self._cond:
            return self._fallback_active

    @property
    def fallback_ranker(self) -> PopularityRanker:
        return self._fallback_ranker

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def refresh_table(self) -> None:
        """Re-snapshot the item table, double-buffered.

        The expensive part — re-reading ``score_context()`` and casting
        the ``(d, V+1)`` table — happens **off the serving lock** into a
        fresh :class:`ItemTable`; only the O(1) reference swap takes the
        lock, so concurrent ``recommend`` traffic keeps being served
        from the old snapshot for the whole build.  A failed build
        (``serve.refresh`` faults, OOM, ...) is counted and re-raised;
        the old snapshot stays live either way.
        """
        with self._refresh_mutex:
            try:
                faults.trip("serve.refresh")
                new = self._table.rebuilt(self.model)
            except BaseException:
                self._refresh_errors += 1
                raise
            with self._lock:
                self._table = new

    def _maybe_refresh_async(self) -> None:  # lint: unlocked-ok(caller holds _lock)
        """Kick one background refresh; caller holds ``self._lock``."""
        if self._refresh_pending:
            return
        self._refresh_pending = True

        def worker() -> None:
            try:
                self.refresh_table()
            except BaseException:
                pass  # counted in refresh_errors; old snapshot stays live
            finally:
                with self._lock:
                    self._refresh_pending = False

        threading.Thread(
            target=worker, name="repro-serve-refresh", daemon=True
        ).start()

    @property
    def table(self) -> ItemTable:
        with self._lock:
            return self._table

    def stats(self) -> dict:
        """Serving counters: request/batch/cache plus failure accounting."""
        with self._lock:
            batches = max(self._batches, 1)
            return {
                "requests": self._requests,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
                "mean_batch_size": self._batched_requests / batches,
                "encodes": self._encoded,
                "user_vec_reuses": self._vec_reuses,
                "sessions": len(self.sessions),
                "session_evictions": self.sessions.evictions,
                "table_refreshes": self._table.refreshes,
                "table_dtype": str(self._table.table.dtype),
                "table_nbytes": self._table.nbytes(),
                # resilience counters
                "sheds": self._sheds,
                "deadline_expired": self._deadline_expired,
                "degraded": self._degraded,
                "model_errors": self._model_errors,
                "collector_failures": self._collector_failures,
                "refresh_errors": self._refresh_errors,
                "fallback_active": self._fallback_active,
                "fallback_reason": self._fallback_reason,
            }

    def close(self) -> None:
        """Stop the collector thread; pending requests are still served."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._collector is not None:
            self._collector.join(timeout=10.0)

    def __enter__(self) -> "RecommenderService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
