"""Per-user session state for online serving.

A serving session holds the part of a user's interaction history the
model can actually see — the most recent ``max_len`` item ids (Eq. 1's
window) — plus the cached encoder output for that window.  The design
goals, in order:

1. **O(1) appends.**  A new interaction event must not touch the rest
   of the history: :meth:`UserSession.append` writes one slot of a ring
   buffer and invalidates the cached user vector.  The naive
   alternative (keep the full history list, re-run
   ``pad_or_truncate`` over it per request) is ``O(history)`` per
   event and unbounded in memory.
2. **Encode only when the architecture requires it.**  Every model in
   this repo adds *absolute* positional embeddings to a left-padded
   window, so appending an event shifts every surviving item to a new
   position — the window's last hidden state genuinely depends on all
   ``N`` (shifted) inputs, and an exact event-level incremental encode
   is architecturally impossible (for the spectral and attention models
   doubly so: their mixing layers are global over the sequence axis).
   What *is* avoidable is re-encoding on every request: the encoded
   ``(d,)`` user vector is cached on the session and reused verbatim
   until either a new event arrives or the parameters change
   (:meth:`UserSession.is_fresh`), so read-heavy traffic pays zero
   encodes.  The fallback full re-encode from the raw history is
   pinned equal to this incremental path by ``tests/test_serving.py``.
3. **Bounded memory.**  A session is ~``max_len`` int64 slots plus one
   ``(d,)`` vector; :class:`SessionCache` bounds the number of resident
   sessions with LRU eviction, so the cache never outgrows its budget
   no matter how many distinct users traffic touches.

Thread safety: neither class locks.  The owning
:class:`~repro.serving.service.RecommenderService` serializes all
access under its own lock; standalone users must do the same.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

import numpy as np

__all__ = ["UserSession", "SessionCache"]


class UserSession:
    """Ring-buffered recent-history window + cached encoder state.

    The ring holds the latest ``min(events, max_len)`` item ids;
    :meth:`window` materializes them as the left-padded ``(max_len,)``
    array the model consumes — byte-identical to
    ``repro.data.preprocess.pad_or_truncate(full_history, max_len)``.
    """

    __slots__ = ("user_id", "_buf", "_head", "length", "user_vec", "version", "events")

    def __init__(self, user_id, max_len: int) -> None:
        if max_len < 1:
            raise ValueError(f"max_len must be >= 1, got {max_len}")
        self.user_id = user_id
        self._buf = np.zeros(max_len, dtype=np.int64)
        self._head = 0  # next write slot
        self.length = 0  # filled slots, <= max_len
        #: cached ``(d,)`` user vector for the current window, or None
        self.user_vec: Optional[np.ndarray] = None
        #: parameter-version token ``user_vec`` was encoded under
        self.version: int = -1
        #: lifetime event count (monitoring only; the ring forgets)
        self.events: int = 0

    @property
    def max_len(self) -> int:
        return self._buf.shape[0]

    def append(self, item_id: int) -> None:
        """Record one new interaction event; O(1), invalidates the vector."""
        item_id = int(item_id)
        if item_id < 1:
            raise ValueError(
                f"item ids must be >= 1 (0 is the padding id), got {item_id}"
            )
        self._buf[self._head] = item_id
        self._head = (self._head + 1) % self.max_len
        self.length = min(self.length + 1, self.max_len)
        self.events += 1
        self.user_vec = None

    def extend(self, item_ids: Iterable[int]) -> None:
        for item in item_ids:
            self.append(item)

    def replace_history(self, item_ids: Iterable[int]) -> None:
        """Reset the session to a known history (cold start / backfill)."""
        self._buf[:] = 0
        self._head = 0
        self.length = 0
        self.user_vec = None
        self.extend(item_ids)

    def window(self) -> np.ndarray:
        """The left-padded ``(max_len,)`` model input for this session.

        A fresh array (callers may stack and keep it); O(max_len).
        """
        out = np.zeros(self.max_len, dtype=np.int64)
        if self.length:
            idx = np.arange(self._head - self.length, self._head) % self.max_len
            out[self.max_len - self.length :] = self._buf[idx]
        return out

    def seen(self) -> np.ndarray:
        """Sorted unique item ids currently in the window.

        This is the seen-item mask the service excludes from
        recommendations.  It covers the *window*, not the full lifetime
        history — the ring forgets older events by design (bounded
        memory); callers needing lifetime masking must keep their own
        seen sets.
        """
        if not self.length:
            return np.empty(0, dtype=np.int64)
        idx = np.arange(self._head - self.length, self._head) % self.max_len
        return np.unique(self._buf[idx])

    def is_fresh(self, version: int) -> bool:
        """Whether the cached vector is valid under parameter ``version``."""
        return self.user_vec is not None and self.version == version

    def store_vec(self, vec: np.ndarray, version: int) -> None:
        self.user_vec = vec
        self.version = version

    def __repr__(self) -> str:
        return (
            f"UserSession(user={self.user_id!r}, length={self.length}/"
            f"{self.max_len}, events={self.events}, "
            f"cached={self.user_vec is not None})"
        )


class SessionCache:
    """LRU-bounded mapping of ``user_id -> UserSession``.

    ``capacity=None`` means unbounded (a fixed user population, e.g.
    benchmarks); with a capacity, the least-recently-*used* session is
    dropped on overflow — its ring and cached vector are simply
    rebuilt from upstream history if that user returns
    (:meth:`get_or_create` + ``replace_history``).
    """

    def __init__(self, max_len: int, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.max_len = int(max_len)
        self.capacity = capacity
        self._sessions: "OrderedDict[object, UserSession]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, user_id) -> bool:
        return user_id in self._sessions

    def get(self, user_id) -> Optional[UserSession]:
        session = self._sessions.get(user_id)
        if session is not None:
            self._sessions.move_to_end(user_id)
        return session

    def get_or_create(self, user_id) -> UserSession:
        session = self.get(user_id)
        if session is None:
            session = UserSession(user_id, self.max_len)
            self._sessions[user_id] = session
            if self.capacity is not None:
                while len(self._sessions) > self.capacity:
                    self._sessions.popitem(last=False)
                    self.evictions += 1
        return session

    def pop(self, user_id) -> Optional[UserSession]:
        return self._sessions.pop(user_id, None)

    def invalidate_vectors(self) -> None:
        """Drop every cached user vector (after a parameter update)."""
        for session in self._sessions.values():
            session.user_vec = None

    def __repr__(self) -> str:
        return (
            f"SessionCache(sessions={len(self)}, capacity={self.capacity}, "
            f"evictions={self.evictions})"
        )
