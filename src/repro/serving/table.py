"""Eval-only item-score table snapshots, optionally half precision.

The prediction layer scores a user vector against every item embedding
(Eq. 31).  At serving time that GEMM is DRAM-bound on streaming the
``(d, V+1)`` table, and at ``V = 10^6`` the float32 table alone is
hundreds of MB — so the serving path keeps a **float16 snapshot** of
:meth:`~repro.core.encoder.SequentialEncoderBase.score_context`:

- half the resident memory and half the bytes streamed per scoring
  pass at ranking-irrelevant precision loss (ranking tolerates far
  lower precision than training; the acceptance bench pins HR@10 /
  NDCG@10 within 0.01 of the float32 full-sort reference);
- **training dtype untouched** — the snapshot is a cast *copy*; the
  model's parameters, optimizer state and training math never see
  float16.

numpy has no BLAS kernel for float16, so scoring casts one
``(d, block)`` column block at a time into a reused float32 scratch
buffer and runs the GEMM in float32 (accumulation therefore happens in
float32, not half).  The block cast pairs with the blocked top-k
(:mod:`repro.evaluation.topk`): one block is cast, scored, folded into
the candidate pool, then its scratch is reused — the full ``(B, V)``
score matrix never exists.

**Staleness contract**: a snapshot is valid only while
``model.inference_version()`` is unchanged.  :meth:`ItemTable.is_stale`
detects any parameter mutation that went through the optimizer /
``load_state_dict`` / ``Module.to`` (they bump the global parameter
version); the serving service checks it per batch and calls
:meth:`refresh`.  Hand-edited parameter buffers bypass the version
counter — see ``SequentialEncoderBase.inference_version``.

Thread safety: none here (the scratch buffer is shared state); the
owning service serializes scoring under its lock.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ItemTable"]

#: accepted ``dtype`` spellings -> numpy dtypes (``"model"`` keeps the
#: model's own compute dtype, i.e. a plain snapshot with no cast)
_DTYPES = {
    "float16": np.float16,
    "float32": np.float32,
    "float64": np.float64,
}


class ItemTable:
    """A scoring snapshot of the model's item-embedding table.

    Parameters
    ----------
    model:
        Any model exposing ``score_context()`` and
        ``inference_version()`` (every
        :class:`~repro.core.encoder.SequentialEncoderBase` subclass).
    dtype:
        ``"float16"`` (the serving default), ``"float32"``,
        ``"float64"``, or ``"model"`` to keep the model dtype.
    block_size:
        Column-block width for :meth:`score_block`'s cast scratch.
    """

    def __init__(self, model, dtype: str = "float16", block_size: int = 8192) -> None:
        if dtype != "model" and dtype not in _DTYPES:
            raise ValueError(
                f"unknown table dtype {dtype!r}; expected one of "
                f"{sorted(_DTYPES)} or 'model'"
            )
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.dtype_name = dtype
        self.block_size = int(block_size)
        self._scratch: Optional[np.ndarray] = None
        self.table: Optional[np.ndarray] = None
        self.version = -1
        self.refreshes = 0
        self.refresh(model)

    # ------------------------------------------------------------------
    @property
    def num_columns(self) -> int:
        """Catalog columns scored (``V + 1``; column 0 is padding)."""
        return self.table.shape[1]

    @property
    def compute_dtype(self) -> np.dtype:
        """Dtype scores come out in (float32 when the table is float16)."""
        if self.table.dtype == np.float16:
            return np.dtype(np.float32)
        return self.table.dtype

    def refresh(self, model) -> None:
        """Re-snapshot the table from the model's current parameters."""
        context = model.score_context()  # (d, V+1), contiguous, model dtype
        if self.dtype_name == "model":
            self.table = context
        else:
            self.table = np.ascontiguousarray(context.astype(_DTYPES[self.dtype_name]))
        self.version = model.inference_version()
        self.refreshes += 1

    def rebuilt(self, model) -> "ItemTable":
        """A fresh snapshot as a **new** table (double-buffered refresh).

        :meth:`refresh` mutates this table in place, which is fine when
        the caller owns the serving lock for the duration — but a full
        re-snapshot of a 10^6-item catalog is exactly the work the
        serving lock must *not* be held across.  ``rebuilt`` builds a
        complete replacement off to the side (same dtype/blocking
        config, cumulative ``refreshes`` counter carried forward) so
        the owner can do the expensive build lock-free and swap the
        reference in O(1) under the lock.  The old table stays fully
        serviceable until the swap — a failed build leaves it live.
        """
        new = ItemTable(model, dtype=self.dtype_name, block_size=self.block_size)
        new.refreshes += self.refreshes
        return new

    def is_stale(self, model) -> bool:
        """Whether parameters changed since this snapshot was taken."""
        return model.inference_version() != self.version

    # ------------------------------------------------------------------
    def prepare_users(self, users: np.ndarray) -> np.ndarray:
        """Cast a ``(B, d)`` user-vector stack to the scoring dtype."""
        return np.ascontiguousarray(users, dtype=self.compute_dtype)

    def score_block(self, users: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Scores of ``users`` against table columns ``[start, stop)``.

        ``users`` must come from :meth:`prepare_users`.  Returns a
        freshly written ``(B, stop-start)`` array the caller owns (the
        blocked top-k masks seen items into it in place).  For a
        float16 table the column block is cast into a reused float32
        scratch first, so the GEMM runs on BLAS and accumulates in
        float32.
        """
        stop = min(stop, self.num_columns)
        block = self.table[:, start:stop]
        if self.table.dtype == np.float16:
            width = stop - start
            if self._scratch is None or self._scratch.shape[1] < width:
                self._scratch = np.empty(
                    (self.table.shape[0], max(width, self.block_size)), np.float32
                )
            cast = self._scratch[:, :width]
            np.copyto(cast, block, casting="safe")
            block = cast
        return users @ block

    def score_all(self, users: np.ndarray) -> np.ndarray:
        """Full ``(B, V+1)`` scores in one GEMM (the naive baseline path).

        For a float16 table this materializes a full float32 copy of
        the table per call — deliberately so: it is the "no blocking"
        reference arm of the serving A/B benchmark.
        """
        if self.table.dtype == np.float16:
            return users @ self.table.astype(np.float32)
        return users @ self.table

    def nbytes(self) -> int:
        return int(self.table.nbytes)

    def __repr__(self) -> str:
        return (
            f"ItemTable(shape={self.table.shape}, dtype={self.table.dtype}, "
            f"version={self.version}, refreshes={self.refreshes})"
        )
