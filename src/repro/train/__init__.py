"""Training loop, early stopping, tuning, and robustness utilities."""

from repro.train.trainer import Trainer, TrainConfig, TrainHistory
from repro.train.tuning import GridSearchResult, grid_search

__all__ = ["Trainer", "TrainConfig", "TrainHistory", "GridSearchResult", "grid_search"]
