"""Command-line training entry point.

Usage::

    python -m repro.train.cli --model SLIME4Rec --dataset beauty \
        --scale 0.3 --epochs 10 --max-len 24 --hidden-dim 32 \
        --checkpoint out/slime.npz

Trains one model on one synthetic preset (or a real interaction file
via ``--data-file``) and prints validation history plus test metrics.

Crash-safe runs keep a rotated full-run-state store and can continue a
killed run bitwise-identically::

    python -m repro.train.cli --model SLIME4Rec --checkpoint-dir out/run1
    # ... process dies ...
    python -m repro.train.cli --model SLIME4Rec --checkpoint-dir out/run1 --resume
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import BASELINE_NAMES, build_baseline
from repro.baselines.registry import BESPOKE_LOSS_MODELS
from repro.data.dataset import SequenceDataset
from repro.data.loaders import load_interactions_file
from repro.data.synthetic import PRESETS, load_preset
from repro.train.trainer import TrainConfig, Trainer
from repro.utils.io import save_checkpoint

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-train", description="Train a sequential recommender."
    )
    parser.add_argument("--model", choices=BASELINE_NAMES, default="SLIME4Rec")
    parser.add_argument("--dataset", choices=sorted(PRESETS), default="beauty")
    parser.add_argument("--data-file", help="real 'user item ts' file (overrides --dataset)")
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--max-len", type=int, default=24)
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--lr", type=float, default=1e-3)
    parser.add_argument("--patience", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default=None,
        help="compute precision; float32 halves memory bandwidth (default float64)",
    )
    parser.add_argument("--alpha", type=float, default=0.4, help="SLIME4Rec filter size ratio")
    parser.add_argument(
        "--train-num-negatives",
        type=int,
        default=None,
        metavar="K",
        help="train with sampled softmax over K negatives instead of the "
        "full-catalog cross-entropy (evaluation still ranks the full catalog)",
    )
    parser.add_argument(
        "--negative-sampling",
        choices=("uniform", "log_uniform"),
        default=None,
        help="proposal distribution for --train-num-negatives "
        "(default uniform; requires --train-num-negatives)",
    )
    parser.add_argument(
        "--ce-chunk-size",
        type=int,
        default=None,
        metavar="C",
        help="stream the full-catalog cross-entropy over item-table chunks of "
        "C rows (memory-bounded path; ignored when --train-num-negatives is set)",
    )
    parser.add_argument("--checkpoint", help="where to save the trained weights (.npz)")
    parser.add_argument(
        "--checkpoint-dir",
        help="directory for rotated full-run-state checkpoints (model + "
        "optimizer + RNG streams + history); written at every epoch "
        "boundary, enabling --resume after a crash",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="STEPS",
        help="additionally checkpoint every STEPS optimizer steps "
        "(0 = epoch boundaries only; requires --checkpoint-dir)",
    )
    parser.add_argument(
        "--keep-last",
        type=int,
        default=3,
        metavar="K",
        help="checkpoints retained by rotation in --checkpoint-dir (default 3)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest verifiable checkpoint in --checkpoint-dir; "
        "the continued run is bitwise-identical to one that never stopped",
    )
    parser.add_argument(
        "--static-graph",
        action="store_true",
        help="capture one training step into a static tape and replay it on "
        "subsequent same-shape batches (bitwise-identical to the dynamic "
        "engine; falls back to dynamic per step on geometry mismatch and "
        "permanently on replay-unsafe models)",
    )
    parser.add_argument(
        "--guard-policy",
        choices=("raise", "skip", "rollback"),
        default="raise",
        help="what to do when a step produces a non-finite loss/gradient: "
        "fail fast (default), skip the update, or roll back to the last "
        "checkpoint (requires --checkpoint-dir)",
    )
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    # Flag-consistency checks up front — fail in milliseconds, before
    # the (potentially long) dataset build.
    if args.negative_sampling is not None and args.train_num_negatives is None:
        parser.error(
            "--negative-sampling requires --train-num-negatives "
            "(it only configures the sampled-softmax proposal)"
        )
    if args.model in BESPOKE_LOSS_MODELS and (
        args.train_num_negatives is not None or args.ce_chunk_size is not None
    ):
        parser.error(
            f"{args.model} trains with a bespoke objective that bypasses "
            f"prediction_loss; --train-num-negatives / --ce-chunk-size do not apply"
        )
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir (the store to resume from)")
    if args.checkpoint_every and not args.checkpoint_dir:
        parser.error("--checkpoint-every requires --checkpoint-dir")
    if args.guard_policy == "rollback" and not args.checkpoint_dir:
        parser.error("--guard-policy rollback requires --checkpoint-dir")

    if args.data_file:
        interactions = load_interactions_file(args.data_file)
        dataset = SequenceDataset(interactions, name="custom", max_len=args.max_len)
    else:
        dataset = load_preset(args.dataset, scale=args.scale, max_len=args.max_len)
    print(dataset.stats().as_row())

    overrides = {"alpha": args.alpha} if args.model == "SLIME4Rec" else {}
    if args.train_num_negatives is not None:
        overrides["train_num_negatives"] = args.train_num_negatives
        overrides["negative_sampling"] = args.negative_sampling or "uniform"
    if args.ce_chunk_size is not None:
        overrides["ce_chunk_size"] = args.ce_chunk_size
    if args.static_graph:
        overrides["static_graph"] = True
    model = build_baseline(
        args.model,
        dataset,
        hidden_dim=args.hidden_dim,
        num_layers=args.num_layers,
        seed=args.seed,
        dtype=args.dtype,
        **overrides,
    )
    print(f"{args.model}: {model.num_parameters():,} parameters")

    config = TrainConfig(
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        patience=args.patience,
        seed=args.seed,
        verbose=not args.quiet,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        keep_last=args.keep_last,
        guard_policy=args.guard_policy,
    )
    trainer = Trainer(
        model, dataset, config,
        with_same_target=args.model in ("DuoRec", "SLIME4Rec"),
    )
    history = trainer.fit(resume_from=args.checkpoint_dir if args.resume else None)
    result = trainer.test()
    print(f"\n{history.summary()}")
    print(f"test: {result.as_row()}")

    if args.checkpoint:
        path = save_checkpoint(
            model,
            args.checkpoint,
            metadata={
                "model": args.model,
                "dataset": dataset.name,
                "test_metrics": dict(result.metrics),
                "best_epoch": history.best_epoch,
            },
        )
        print(f"checkpoint written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
