"""Mini-batch trainer with validation-based early stopping.

Mirrors the paper's protocol (Section IV-D): Adam with lr=1e-3, batch
training on all prefix instances, hyper-parameters tuned on the
validation split, final metrics reported on the test split with the
best-validation checkpoint restored.

On top of the paper's protocol the trainer is a **fault-tolerant
runtime** (see ``docs/ARCHITECTURE.md``, "Fault tolerance & checkpoint
format"):

- **Full-state checkpointing** — model parameters, Adam moments and
  step count, the best-validation snapshot, the complete
  :class:`TrainHistory`, the LR-scheduler state, and the bit state of
  *every* random stream (dropout/augmentation/noise generators via
  ``Module.rng_state_dict``, the batch iterator's shuffle stream and
  epoch position, the negative sampler) are archived together in a
  rotated, checksummed :class:`~repro.utils.io.CheckpointStore`.
- **Bitwise-identical resume** — ``fit(resume_from=...)`` restores all
  of the above and continues mid-epoch from the exact batch after the
  checkpoint; the resumed trajectory (losses, parameters, metrics) is
  bitwise-equal to the uninterrupted run in both dtypes
  (``tests/test_fault_tolerance.py`` pins this the same way
  ``batched_views`` equality was pinned).
- **Numeric guards** — non-finite loss/gradient detection with a
  configurable policy (``raise`` / ``skip`` / ``rollback``), loss-spike
  counting, and guard counters surfaced on :class:`TrainHistory`.
- **Fault trip points** (``repro.utils.faults``) at step, epoch, and
  save boundaries, so crash/resume tests kill the real code paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.autograd.graph import TapeExecutor
from repro.data.batching import BatchIterator
from repro.data.dataset import SequenceDataset
from repro.evaluation.evaluator import EvalResult, Evaluator
from repro.optim import Adam, clip_grad_norm
from repro.utils import faults
from repro.utils.io import CheckpointStore

__all__ = ["TrainConfig", "TrainHistory", "Trainer"]

#: Valid values of :attr:`TrainConfig.guard_policy`.
GUARD_POLICIES = ("raise", "skip", "rollback")


@dataclass
class TrainConfig:
    """Knobs of the training loop."""

    epochs: int = 30
    batch_size: int = 256
    lr: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    #: early stopping patience in epochs on the monitor metric; 0 disables
    patience: int = 5
    monitor: str = "NDCG@10"
    #: evaluate the validation split every this many epochs
    eval_every: int = 1
    seed: int = 0
    verbose: bool = False

    # -- fault tolerance ------------------------------------------------
    #: directory for the rotated run-state checkpoint store; None disables
    checkpoint_dir: Optional[str] = None
    #: additionally checkpoint every this many optimizer steps (0 = only
    #: at epoch boundaries); requires ``checkpoint_dir``
    checkpoint_every: int = 0
    #: checkpoints retained by the store's rotation
    keep_last: int = 3
    #: what to do on a non-finite loss or gradient norm: ``"raise"``
    #: fails fast, ``"skip"`` drops the update and continues, and
    #: ``"rollback"`` reloads the latest checkpoint and continues from
    #: there (requires ``checkpoint_dir``; bounded by ``max_rollbacks``
    #: since a *deterministic* divergence would recur forever)
    guard_policy: str = "raise"
    max_rollbacks: int = 3
    #: loss-spike counter: a step loss above ``spike_factor`` times the
    #: mean of the last ``spike_window`` step losses of the epoch is
    #: counted in ``TrainHistory.loss_spikes`` (0 disables)
    spike_factor: float = 0.0
    spike_window: int = 16


@dataclass
class TrainHistory:
    """Per-epoch record of losses and validation metrics.

    The guard counters record numeric-guard events across the whole run
    (cumulative over resumes and rollbacks): steps whose loss or
    gradient norm came back non-finite, steps skipped or rolled back by
    the guard policy, and losses flagged by the spike detector.
    """

    losses: List[float] = field(default_factory=list)
    valid_metrics: List[Dict[str, float]] = field(default_factory=list)
    best_epoch: int = -1
    best_value: float = -np.inf
    nonfinite_losses: int = 0
    nonfinite_grads: int = 0
    skipped_steps: int = 0
    rollbacks: int = 0
    loss_spikes: int = 0

    def summary(self) -> str:
        text = (
            f"epochs={len(self.losses)} best_epoch={self.best_epoch} "
            f"best={self.best_value:.4f} final_loss={self.losses[-1]:.4f}"
        )
        guards = self.guard_counters()
        if any(guards.values()):
            text += " guards[" + " ".join(f"{k}={v}" for k, v in guards.items() if v) + "]"
        return text

    def guard_counters(self) -> Dict[str, int]:
        return {
            "nonfinite_losses": self.nonfinite_losses,
            "nonfinite_grads": self.nonfinite_grads,
            "skipped_steps": self.skipped_steps,
            "rollbacks": self.rollbacks,
            "loss_spikes": self.loss_spikes,
        }


class _RollbackRequested(Exception):
    """Internal signal: a guard fired under the ``rollback`` policy."""

    def __init__(self, what: str, step: int) -> None:
        super().__init__(f"non-finite {what} at step {step}")
        self.what = what
        self.step = step


class Trainer:
    """Train a sequential recommender on a :class:`SequenceDataset`.

    Any model exposing ``loss(batch)``, ``parameters()``,
    ``predict_scores(...)``, ``train()/eval()``, ``state_dict()``,
    ``load_state_dict()`` and ``rng_state_dict()`` can be trained —
    SLIME4Rec and all baselines share that interface.
    """

    def __init__(
        self,
        model,
        dataset: SequenceDataset,
        config: Optional[TrainConfig] = None,
        with_same_target: Optional[bool] = None,
        scheduler_factory=None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config or TrainConfig()
        if self.config.guard_policy not in GUARD_POLICIES:
            raise ValueError(
                f"guard_policy must be one of {GUARD_POLICIES}, "
                f"got {self.config.guard_policy!r}"
            )
        if self.config.guard_policy == "rollback" and not self.config.checkpoint_dir:
            raise ValueError("guard_policy='rollback' requires checkpoint_dir")
        if self.config.checkpoint_every and not self.config.checkpoint_dir:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if with_same_target is None:
            with_same_target = getattr(getattr(model, "config", None), "cl_weight", 0.0) > 0.0
        self.iterator = BatchIterator(
            dataset,
            batch_size=self.config.batch_size,
            with_same_target=with_same_target,
            seed=self.config.seed,
        )
        self.evaluator = Evaluator(dataset)
        self.optimizer = Adam(
            model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        # Optional per-step LR schedule, e.g.
        # ``lambda opt: WarmupCosineLR(opt, 100, 1000)``.
        self.scheduler = scheduler_factory(self.optimizer) if scheduler_factory else None
        self.store = (
            CheckpointStore(self.config.checkpoint_dir, keep_last=self.config.keep_last)
            if self.config.checkpoint_dir
            else None
        )
        # Static-graph tape executor, built lazily at the first training
        # step when the model opts in via ``model.static_graph`` (a
        # SlimeConfig field / SequentialEncoderBase attribute).  The
        # dynamic engine stays the reference; the executor falls back to
        # it per step on geometry mismatch and permanently on
        # replay-unsafe graphs (see repro.autograd.graph).
        self._executor: Optional[TapeExecutor] = None
        # Run-state fields, (re)initialized by fit()/restores.
        self.history = TrainHistory()
        self._best_state: Optional[Dict[str, np.ndarray]] = None
        self._stale = 0
        self._epoch = 0
        self._global_step = 0
        self._epoch_losses: List[float] = []

    # ------------------------------------------------------------------
    def fit(self, resume_from: Optional[str | Path] = None) -> TrainHistory:
        """Run (or continue) training; returns the :class:`TrainHistory`.

        ``resume_from`` is a :class:`~repro.utils.io.CheckpointStore`
        directory (typically ``config.checkpoint_dir``) or a single
        run-state ``.npz`` file.  The model/trainer must be *built* the
        same way as the killed run (same constructor seeds, dtype,
        geometry); everything trained or drawn since construction is
        restored from the archive, and the continued trajectory is
        bitwise-identical to one that never stopped.
        """
        cfg = self.config
        self.history = TrainHistory()
        self._best_state = None
        self._stale = 0
        self._epoch = 0
        self._global_step = 0
        self._epoch_losses = []
        if resume_from is not None:
            self._restore_run_state(self._load_run_state(resume_from))
            if cfg.verbose:
                print(
                    f"resumed at epoch {self._epoch + 1}, step {self._global_step} "
                    f"(position {self.iterator.state_dict()['position']})"
                )
        rollbacks = 0
        while True:
            try:
                self._run_epochs()
                break
            except _RollbackRequested as request:
                rollbacks += 1
                live = self.history.guard_counters()
                if rollbacks > cfg.max_rollbacks or self.store is None:
                    raise FloatingPointError(
                        f"{request} — giving up after {rollbacks - 1} rollback(s); "
                        f"a deterministic divergence cannot be outrun by restoring "
                        f"checkpoints (inspect lr/grad_clip instead)"
                    ) from request
                try:
                    snapshot = self.store.load_latest()
                except FileNotFoundError as exc:
                    raise FloatingPointError(
                        f"{request} — rollback requested but no checkpoint exists yet"
                    ) from exc
                self._restore_run_state(snapshot)
                # Guard counters are cumulative over the whole run; the
                # checkpoint predates the event that triggered this
                # rollback, so carry the live (larger) counts forward.
                for name, value in live.items():
                    setattr(self.history, name, value)
                self.history.rollbacks += 1
                if cfg.verbose:
                    print(
                        f"{request}: rolled back to step {self._global_step} "
                        f"({rollbacks}/{cfg.max_rollbacks})"
                    )
        if self._best_state is not None:
            self.model.load_state_dict(self._best_state)
        return self.history

    # ------------------------------------------------------------------
    def _run_epochs(self) -> None:
        cfg = self.config
        history = self.history
        for epoch in range(self._epoch, cfg.epochs):
            self._epoch = epoch
            self.model.train()
            for batch in self.iterator.epoch():
                self._train_step(batch)
            history.losses.append(float(np.mean(self._epoch_losses)))
            self._epoch_losses = []

            stop = False
            if (epoch + 1) % cfg.eval_every == 0:
                result = self.evaluator.evaluate(self.model, split="valid")
                history.valid_metrics.append(dict(result.metrics))
                value = result[cfg.monitor]
                if cfg.verbose:
                    print(
                        f"epoch {epoch + 1:>3} loss={history.losses[-1]:.4f} {result.as_row()}"
                    )
                if value > history.best_value:
                    history.best_value = value
                    history.best_epoch = epoch
                    self._best_state = self.model.state_dict()
                    self._stale = 0
                else:
                    self._stale += 1
                    if cfg.patience and self._stale >= cfg.patience:
                        stop = True
            # The epoch is complete: subsequent restores resume at the
            # next one (the iterator is already re-anchored to position 0).
            self._epoch = epoch + 1
            if self.store is not None:
                self._save_run_state()
            faults.trip("trainer.epoch", epoch)
            if stop:
                break

    def _train_step(self, batch) -> None:
        cfg = self.config
        history = self.history
        step_index = self._global_step
        self.optimizer.zero_grad()
        if getattr(self.model, "static_graph", False):
            if self._executor is None or self._executor.model is not self.model:
                self._executor = TapeExecutor(self.model)
            result = self._executor.step(batch)
            loss_value = result.loss
            run_backward = result.backward
        else:
            loss = self.model.loss(batch)
            loss_value = float(loss.data)
            run_backward = loss.backward
        bad: Optional[str] = None
        if not math.isfinite(loss_value):
            bad = "loss"
            history.nonfinite_losses += 1
        else:
            run_backward()
            if cfg.grad_clip > 0:
                # The pre-clip global norm doubles as the gradient
                # guard: any NaN/Inf gradient makes it non-finite, and
                # clip_grad_norm leaves the gradients unscaled in that
                # case so the policy below decides what happens.
                grad_norm = clip_grad_norm(self.optimizer.params, cfg.grad_clip)
                if not math.isfinite(grad_norm):
                    bad = "grad norm"
                    history.nonfinite_grads += 1
        if bad is not None:
            if cfg.guard_policy == "raise":
                raise FloatingPointError(
                    f"non-finite {bad} at step {step_index} "
                    f"(loss={loss_value!r}); set TrainConfig.guard_policy to "
                    f"'skip' or 'rollback' to continue past numeric faults"
                )
            if cfg.guard_policy == "rollback":
                raise _RollbackRequested(bad, step_index)
            # "skip": drop this update entirely; parameters, moments and
            # the epoch-loss mean stay untouched.
            history.skipped_steps += 1
            self.optimizer.zero_grad()
        else:
            self.optimizer.step()
            if self.scheduler is not None:
                self.scheduler.step()
            self._zero_padding_rows()
            if cfg.spike_factor > 0:
                window = self._epoch_losses[-cfg.spike_window:]
                if len(window) >= 5 and loss_value > cfg.spike_factor * float(
                    np.mean(window)
                ):
                    history.loss_spikes += 1
            self._epoch_losses.append(loss_value)
        self._global_step += 1
        faults.trip("trainer.step", step_index)
        if (
            self.store is not None
            and cfg.checkpoint_every > 0
            and self._global_step % cfg.checkpoint_every == 0
        ):
            self._save_run_state()

    def _zero_padding_rows(self) -> None:
        """Keep padding embeddings pinned at zero after every update."""
        for module in self.model.modules():
            zero = getattr(module, "zero_padding_row", None)
            if callable(zero):
                zero()

    # ------------------------------------------------------------------
    # Run-state archive composition
    # ------------------------------------------------------------------
    def _save_run_state(self) -> Path:
        """Archive the complete run state into the checkpoint store."""
        payload: Dict[str, np.ndarray] = {}
        for name, array in self.model.state_dict().items():
            payload[f"model/{name}"] = array
        optim_scalars: Dict = {}
        for key, value in self.optimizer.state_dict().items():
            if isinstance(value, list):
                for i, array in enumerate(value):
                    payload[f"optim/{key}/{i:05d}"] = array
                optim_scalars[key] = {"__arrays__": len(value)}
            else:
                optim_scalars[key] = value
        if self._best_state is not None:
            for name, array in self._best_state.items():
                payload[f"best/{name}"] = array
        history = self.history
        metadata = {
            "format": "repro-run-state-v1",
            "epoch": self._epoch,
            "global_step": self._global_step,
            "epoch_losses": list(self._epoch_losses),
            "stale": self._stale,
            "has_best": self._best_state is not None,
            "history": {
                "losses": list(history.losses),
                "valid_metrics": [dict(m) for m in history.valid_metrics],
                "best_epoch": history.best_epoch,
                "best_value": None if np.isneginf(history.best_value) else history.best_value,
                **history.guard_counters(),
            },
            "optim": optim_scalars,
            "scheduler": self.scheduler.state_dict() if self.scheduler else None,
            "rng": {
                "model": self.model.rng_state_dict(),
                "iterator": self.iterator.state_dict(),
            },
            "config": {
                "epochs": self.config.epochs,
                "batch_size": self.config.batch_size,
                "seed": self.config.seed,
                "monitor": self.config.monitor,
            },
        }
        return self.store.save(payload, metadata, step=self._global_step)

    def _load_run_state(self, resume_from: str | Path) -> Dict:
        """Read a run-state archive from a store directory or one file."""
        path = Path(resume_from)
        if path.is_dir():
            return CheckpointStore(path, keep_last=self.config.keep_last).load_latest()
        from repro.utils.io import load_checkpoint

        result = load_checkpoint(path)
        result["path"] = path
        return result

    def _restore_run_state(self, snapshot: Dict) -> None:
        """Restore model/optimizer/rng/history state from an archive."""
        state = snapshot["state"]
        meta = snapshot["metadata"]
        if meta.get("format") != "repro-run-state-v1":
            raise ValueError(
                f"{snapshot.get('path')} is not a run-state checkpoint "
                f"(format={meta.get('format')!r}); pass a CheckpointStore "
                f"directory written by Trainer.fit"
            )
        model_state: Dict[str, np.ndarray] = {}
        best_state: Dict[str, np.ndarray] = {}
        optim_arrays: Dict[str, List[np.ndarray]] = {}
        for key, array in state.items():
            if key.startswith("model/"):
                model_state[key[len("model/"):]] = array
            elif key.startswith("best/"):
                best_state[key[len("best/"):]] = array
            elif key.startswith("optim/"):
                group, index = key[len("optim/"):].rsplit("/", 1)
                optim_arrays.setdefault(group, []).append((int(index), array))
        self.model.load_state_dict(model_state)
        optim_state: Dict = {}
        for key, value in meta["optim"].items():
            if isinstance(value, dict) and "__arrays__" in value:
                arrays = sorted(optim_arrays.get(key, []))
                if len(arrays) != value["__arrays__"]:
                    raise ValueError(
                        f"run-state archive is missing optimizer arrays for {key!r}"
                    )
                optim_state[key] = [array for _, array in arrays]
            else:
                optim_state[key] = value
        self.optimizer.load_state_dict(optim_state)
        if (self.scheduler is not None) != (meta.get("scheduler") is not None):
            raise ValueError(
                "scheduler mismatch: the checkpointed run and this trainer "
                "disagree on whether an LR scheduler is attached"
            )
        if self.scheduler is not None:
            self.scheduler.load_state_dict(meta["scheduler"])
        # Lazily built streams must exist before their state can load.
        model_rng = meta["rng"]["model"]
        if hasattr(self.model, "negative_sampler") and any(
            path.rsplit(".", 1)[-1] == "_train_sampler" for path in model_rng
        ):
            self.model.negative_sampler()
        self.model.load_rng_state_dict(model_rng)
        self.iterator.load_state_dict(meta["rng"]["iterator"])
        self._best_state = best_state if meta.get("has_best") else None
        hist_meta = meta["history"]
        self.history = TrainHistory(
            losses=list(hist_meta["losses"]),
            valid_metrics=[dict(m) for m in hist_meta["valid_metrics"]],
            best_epoch=int(hist_meta["best_epoch"]),
            best_value=(
                -np.inf if hist_meta["best_value"] is None else float(hist_meta["best_value"])
            ),
            nonfinite_losses=int(hist_meta.get("nonfinite_losses", 0)),
            nonfinite_grads=int(hist_meta.get("nonfinite_grads", 0)),
            skipped_steps=int(hist_meta.get("skipped_steps", 0)),
            rollbacks=int(hist_meta.get("rollbacks", 0)),
            loss_spikes=int(hist_meta.get("loss_spikes", 0)),
        )
        self._stale = int(meta["stale"])
        self._epoch = int(meta["epoch"])
        self._global_step = int(meta["global_step"])
        self._epoch_losses = [float(v) for v in meta["epoch_losses"]]

    # ------------------------------------------------------------------
    def test(self) -> EvalResult:
        return self.evaluator.evaluate(self.model, split="test")
