"""Mini-batch trainer with validation-based early stopping.

Mirrors the paper's protocol (Section IV-D): Adam with lr=1e-3, batch
training on all prefix instances, hyper-parameters tuned on the
validation split, final metrics reported on the test split with the
best-validation checkpoint restored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.batching import BatchIterator
from repro.data.dataset import SequenceDataset
from repro.evaluation.evaluator import EvalResult, Evaluator
from repro.optim import Adam, clip_grad_norm

__all__ = ["TrainConfig", "TrainHistory", "Trainer"]


@dataclass
class TrainConfig:
    """Knobs of the training loop."""

    epochs: int = 30
    batch_size: int = 256
    lr: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    #: early stopping patience in epochs on the monitor metric; 0 disables
    patience: int = 5
    monitor: str = "NDCG@10"
    #: evaluate the validation split every this many epochs
    eval_every: int = 1
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainHistory:
    """Per-epoch record of losses and validation metrics."""

    losses: List[float] = field(default_factory=list)
    valid_metrics: List[Dict[str, float]] = field(default_factory=list)
    best_epoch: int = -1
    best_value: float = -np.inf

    def summary(self) -> str:
        return (
            f"epochs={len(self.losses)} best_epoch={self.best_epoch} "
            f"best={self.best_value:.4f} final_loss={self.losses[-1]:.4f}"
        )


class Trainer:
    """Train a sequential recommender on a :class:`SequenceDataset`.

    Any model exposing ``loss(batch)``, ``parameters()``,
    ``predict_scores(...)``, ``train()/eval()``, ``state_dict()`` and
    ``load_state_dict()`` can be trained — SLIME4Rec and all baselines
    share that interface.
    """

    def __init__(
        self,
        model,
        dataset: SequenceDataset,
        config: Optional[TrainConfig] = None,
        with_same_target: Optional[bool] = None,
        scheduler_factory=None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config or TrainConfig()
        if with_same_target is None:
            with_same_target = getattr(getattr(model, "config", None), "cl_weight", 0.0) > 0.0
        self.iterator = BatchIterator(
            dataset,
            batch_size=self.config.batch_size,
            with_same_target=with_same_target,
            seed=self.config.seed,
        )
        self.evaluator = Evaluator(dataset)
        self.optimizer = Adam(
            model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        # Optional per-step LR schedule, e.g.
        # ``lambda opt: WarmupCosineLR(opt, 100, 1000)``.
        self.scheduler = scheduler_factory(self.optimizer) if scheduler_factory else None

    # ------------------------------------------------------------------
    def fit(self) -> TrainHistory:
        cfg = self.config
        history = TrainHistory()
        best_state = None
        stale = 0
        for epoch in range(cfg.epochs):
            self.model.train()
            epoch_losses = []
            for batch in self.iterator.epoch():
                self.optimizer.zero_grad()
                loss = self.model.loss(batch)
                loss.backward()
                if cfg.grad_clip > 0:
                    clip_grad_norm(self.optimizer.params, cfg.grad_clip)
                self.optimizer.step()
                if self.scheduler is not None:
                    self.scheduler.step()
                self._zero_padding_rows()
                epoch_losses.append(float(loss.data))
            history.losses.append(float(np.mean(epoch_losses)))

            if (epoch + 1) % cfg.eval_every == 0:
                result = self.evaluator.evaluate(self.model, split="valid")
                history.valid_metrics.append(dict(result.metrics))
                value = result[cfg.monitor]
                if cfg.verbose:
                    print(
                        f"epoch {epoch + 1:>3} loss={history.losses[-1]:.4f} {result.as_row()}"
                    )
                if value > history.best_value:
                    history.best_value = value
                    history.best_epoch = epoch
                    best_state = self.model.state_dict()
                    stale = 0
                else:
                    stale += 1
                    if cfg.patience and stale >= cfg.patience:
                        break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history

    def _zero_padding_rows(self) -> None:
        """Keep padding embeddings pinned at zero after every update."""
        for module in self.model.modules():
            zero = getattr(module, "zero_padding_row", None)
            if callable(zero):
                zero()

    # ------------------------------------------------------------------
    def test(self) -> EvalResult:
        return self.evaluator.evaluate(self.model, split="test")
