"""Hyper-parameter grid search on the validation split.

The paper tunes alpha in [0, 1], dropout in {0.1..0.5}, L in {2,4,8}
and N in {25..100} on validation; :func:`grid_search` automates that
protocol for any model the :class:`~repro.train.trainer.Trainer`
accepts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro.data.dataset import SequenceDataset
from repro.train.trainer import TrainConfig, Trainer

__all__ = ["GridSearchResult", "grid_search"]


@dataclass
class GridSearchResult:
    """All trials of a grid search, sorted by validation score."""

    monitor: str
    trials: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def best(self) -> Dict[str, Any]:
        if not self.trials:
            raise ValueError("grid search produced no trials")
        return self.trials[0]

    def summary(self, top: int = 5) -> str:
        lines = [f"grid search over {len(self.trials)} trials (monitor={self.monitor})"]
        for trial in self.trials[:top]:
            params = ", ".join(f"{k}={v}" for k, v in trial["params"].items())
            lines.append(f"  {trial['score']:.4f}  {params}")
        return "\n".join(lines)


def grid_search(
    model_factory: Callable[..., Any],
    dataset: SequenceDataset,
    param_grid: Mapping[str, Sequence[Any]],
    train_config: TrainConfig | None = None,
    monitor: str = "NDCG@10",
    with_same_target: bool | None = None,
) -> GridSearchResult:
    """Exhaustive search over the cartesian product of ``param_grid``.

    Parameters
    ----------
    model_factory:
        Callable receiving one keyword per grid axis and returning a
        fresh model (e.g. ``lambda **p: Slime4Rec(SlimeConfig(..., **p))``).
    dataset:
        Dataset providing train/valid splits.
    param_grid:
        ``{param_name: [candidate values]}``.
    train_config:
        Budget per trial (paper: full epochs; tests: a couple).
    monitor:
        Validation metric to maximize.

    Returns
    -------
    GridSearchResult
        ``result.best["params"]`` is the winning combination;
        ``result.best["test_metrics"]`` its test-split metrics.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    train_config = train_config or TrainConfig()
    if train_config.monitor != monitor:
        train_config = TrainConfig(**{**train_config.__dict__, "monitor": monitor})

    names = sorted(param_grid)
    result = GridSearchResult(monitor=monitor)
    for combo in itertools.product(*(param_grid[n] for n in names)):
        params = dict(zip(names, combo))
        model = model_factory(**params)
        trainer = Trainer(model, dataset, train_config, with_same_target=with_same_target)
        history = trainer.fit()
        result.trials.append(
            {
                "params": params,
                "score": history.best_value,
                "best_epoch": history.best_epoch,
                "test_metrics": dict(trainer.test().metrics),
            }
        )
    result.trials.sort(key=lambda t: -t["score"])
    return result
