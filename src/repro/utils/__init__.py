"""Cross-cutting utilities: checkpoint I/O, fault injection, reporting helpers."""

from repro.utils.io import (
    CheckpointCorruptError,
    CheckpointStore,
    atomic_savez,
    atomic_write_text,
    load_checkpoint,
    load_results,
    save_checkpoint,
    save_results,
)
from repro.utils.reporting import format_metric_table, format_run_header

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_results",
    "load_results",
    "atomic_savez",
    "atomic_write_text",
    "CheckpointStore",
    "CheckpointCorruptError",
    "format_metric_table",
    "format_run_header",
]
