"""Cross-cutting utilities: checkpoint I/O, reporting helpers."""

from repro.utils.io import save_checkpoint, load_checkpoint, save_results, load_results
from repro.utils.reporting import format_metric_table, format_run_header

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_results",
    "load_results",
    "format_metric_table",
    "format_run_header",
]
