"""Deterministic fault injection for crash/resume testing.

A fault-tolerant trainer is only trustworthy if its failure paths are
exercised, and real crashes are neither deterministic nor CI-friendly.
This module gives the training runtime named **trip points** — places
where a process can realistically die or an I/O call can realistically
fail — and lets tests schedule exactly one deterministic fault at one
of them:

- ``trainer.step`` — tripped after each completed optimizer step, with
  the global step index;
- ``trainer.epoch`` — tripped at each epoch boundary (after validation
  and checkpointing), with the epoch index;
- ``checkpoint.pre_save`` — before any checkpoint bytes are written;
- ``checkpoint.write`` — inside the temp-file write, before the
  durable publish (the torn-write window);
- ``checkpoint.post_save`` — after the atomic publish and manifest
  update but *before* rotation pruning;
- ``checkpoint.end`` — after rotation completes.

The serving runtime (:mod:`repro.serving`) embeds its own trip points
in the online request path, so its chaos tests kill/delay the exact
code a production incident would hit:

- ``serve.encode`` — before the stacked ``encode_users`` walk of a
  micro-batch (the model forward);
- ``serve.score`` — before the blocked scoring/top-k pass of a batch;
- ``serve.collect`` — in the collector thread, after a batch is
  drained from the queue but before it is served (an exception here is
  the "collector thread dies" scenario);
- ``serve.refresh`` — before an item-table re-snapshot (both the
  in-batch auto-refresh and the double-buffered ``refresh_table``).

Production code calls :func:`trip` unconditionally; with no injector
installed it is a few-nanosecond no-op, so the hooks stay in the real
code paths rather than in test-only shims — what the tests kill is the
exact code a production crash would interrupt.

Three fault actions are supported.  A **crash** raises
:class:`InjectedCrash`, which derives from ``BaseException`` so no
``except Exception`` recovery path in the runtime can accidentally
swallow the "process died here" signal.  An **I/O error** raises
:class:`InjectedIOError` (an ``OSError``), which exercises the
runtime's real error handling — e.g. a failed write must leave the
previous checkpoints intact.  A **delay** (:meth:`FaultInjector.delay_at`)
sleeps at the trip point instead of raising — the latency-injection
arm of the serving chaos harness: a stalled encode must surface as
deadline timeouts and shed load, never as unbounded caller waits.

Trip points may be hit from several serving threads concurrently, so
the injector's matching/bookkeeping is lock-protected; a delay sleeps
*outside* the lock so it stalls only the tripping thread.

Typical test::

    injector = FaultInjector().crash_at("trainer.step", at=17)
    with inject(injector):
        with pytest.raises(InjectedCrash):
            trainer.fit()
    # ... rebuild model/trainer, fit(resume_from=...), compare.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "InjectedCrash",
    "InjectedIOError",
    "FaultInjector",
    "inject",
    "trip",
    "active_injector",
]


class InjectedCrash(BaseException):
    """A scheduled process-death stand-in.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that
    recovery code catching ``Exception`` cannot swallow it — a real
    ``kill -9`` would not be catchable at all.
    """

    def __init__(self, point: str, index: int) -> None:
        super().__init__(f"injected crash at {point}[{index}]")
        self.point = point
        self.index = index


class InjectedIOError(OSError):
    """A scheduled I/O failure (disk full, yanked volume, EIO)."""


@dataclass
class _FaultSpec:
    point: str
    at: Optional[int]
    action: str  # "crash" | "io_error" | "delay"
    remaining: int = 1
    seconds: float = 0.0


@dataclass
class FaultInjector:
    """A schedule of deterministic faults, matched at trip points.

    Each scheduled fault fires ``times`` times (default once, so a test
    can resume past the fault it injected without re-arming it).  ``at``
    matches the index the runtime passes to :func:`trip` — the global
    step for ``trainer.step``, the epoch for ``trainer.epoch``, the
    checkpoint step for ``checkpoint.*`` points; ``at=None`` fires on
    the first ``times`` trips of that point.  ``counts`` and ``fired``
    record what actually happened, for assertions.  Matching and
    bookkeeping are lock-protected (serving trips arrive from several
    threads); a delay sleeps outside the lock.
    """

    _specs: List[_FaultSpec] = field(default_factory=list)
    counts: Counter = field(default_factory=Counter)
    fired: List[Tuple[str, int]] = field(default_factory=list)
    _mutex: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def crash_at(
        self, point: str, at: Optional[int] = None, times: int = 1
    ) -> "FaultInjector":
        """Schedule an :class:`InjectedCrash` at ``point`` (chainable)."""
        self._specs.append(_FaultSpec(point, at, "crash", remaining=times))
        return self

    def io_error_at(
        self, point: str, at: Optional[int] = None, times: int = 1
    ) -> "FaultInjector":
        """Schedule an :class:`InjectedIOError` at ``point`` (chainable)."""
        self._specs.append(_FaultSpec(point, at, "io_error", remaining=times))
        return self

    def delay_at(
        self, point: str, seconds: float, at: Optional[int] = None, times: int = 1
    ) -> "FaultInjector":
        """Schedule a ``seconds``-long stall at ``point`` (chainable).

        Unlike the raising actions, a delay lets execution continue —
        it models a slow disk, a GC pause or a contended core, the
        latency half of the serving chaos matrix.
        """
        if seconds < 0:
            raise ValueError(f"delay seconds must be >= 0, got {seconds}")
        self._specs.append(
            _FaultSpec(point, at, "delay", remaining=times, seconds=float(seconds))
        )
        return self

    def trip(self, point: str, index: Optional[int] = None) -> None:
        """Record a trip and act if a scheduled fault matches it."""
        matched: Optional[_FaultSpec] = None
        with self._mutex:
            self.counts[point] += 1
            effective = self.counts[point] - 1 if index is None else int(index)
            for spec in self._specs:
                if spec.point != point or spec.remaining <= 0:
                    continue
                if spec.at is not None and spec.at != effective:
                    continue
                spec.remaining -= 1
                self.fired.append((point, effective))
                matched = spec
                break
        if matched is None:
            return
        if matched.action == "crash":
            raise InjectedCrash(point, effective)
        if matched.action == "io_error":
            raise InjectedIOError(f"injected I/O error at {point}[{effective}]")
        time.sleep(matched.seconds)


#: The installed injector; ``None`` (the default) makes every
#: :func:`trip` a no-op.  Installed/removed by :func:`inject`.
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The currently installed :class:`FaultInjector`, if any."""
    return _ACTIVE


def trip(point: str, index: Optional[int] = None) -> None:
    """Trip point hook for runtime code; no-op unless an injector is installed."""
    if _ACTIVE is not None:
        _ACTIVE.trip(point, index)


@contextlib.contextmanager
def inject(injector: FaultInjector):
    """Install ``injector`` for the duration of the ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
