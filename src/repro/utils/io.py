"""Checkpoint and experiment-result persistence.

Checkpoints are ``.npz`` archives of numpy arrays plus a JSON metadata
side-channel stored under a reserved key, so a checkpoint is
self-describing.  Experiment results are plain JSON, making them
diffable in review.

Durability contract (the crash-safe half of the fault-tolerant training
runtime; see ``docs/ARCHITECTURE.md``):

- **Every archive write is atomic**: bytes go to a temp file in the
  target directory, are flushed and ``fsync``-ed, and the temp file is
  ``os.replace``-d over the destination (followed by a directory
  fsync).  A crash mid-write leaves either the old file or the new one,
  never a truncated hybrid — this covers the legacy single-file
  :func:`save_checkpoint` path too.
- **Run checkpoints live in a** :class:`CheckpointStore` **directory**:
  ``ckpt-<step>.npz`` files plus a ``manifest.json`` recording each
  file's step and SHA-256.  The manifest gains the new entry *before*
  old checkpoints are pruned, so a crash between publish and rotation
  loses nothing.
- **Loads verify before they trust**: :meth:`CheckpointStore.load_latest`
  checks the newest entry's checksum and archive integrity and, when it
  is truncated/corrupt/missing, warns and falls back to the previous
  entry instead of crashing the resume.

Fault-injection trip points (``repro.utils.faults``) are embedded in
the real save path — ``checkpoint.pre_save`` / ``checkpoint.write`` /
``checkpoint.post_save`` / ``checkpoint.end`` — so crash/resume tests
kill exactly the code a production crash would interrupt.
"""

from __future__ import annotations

import contextlib
import hashlib
import io as _io
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.utils import faults

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_results",
    "load_results",
    "atomic_savez",
    "atomic_write_text",
    "CheckpointStore",
    "CheckpointCorruptError",
]

_META_KEY = "__repro_meta__"


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file failed checksum or archive verification."""


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------

def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename is still atomic
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_publish(path: Path, write_body) -> Path:
    """Write via ``write_body(fh)`` to a temp file, fsync, and replace ``path``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            write_body(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise
    _fsync_dir(path.parent)
    return path


def atomic_savez(path: str | Path, payload: Dict[str, np.ndarray]) -> Path:
    """``np.savez`` with the temp-file + fsync + ``os.replace`` protocol."""

    def body(fh):
        faults.trip("checkpoint.write")
        np.savez(fh, **payload)

    return _atomic_publish(Path(path), body)


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    return _atomic_publish(Path(path), lambda fh: fh.write(text.encode("utf-8")))


# ----------------------------------------------------------------------
# Single-file model checkpoints (the legacy public API)
# ----------------------------------------------------------------------

def _pack_metadata(payload: Dict[str, np.ndarray], meta: Dict[str, Any]) -> None:
    if _META_KEY in payload:
        raise ValueError(f"state dict may not use the reserved key {_META_KEY!r}")
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )


def save_checkpoint(model, path: str | Path, metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Write ``model.state_dict()`` (and optional metadata) to ``path``.

    The write is atomic (temp file + fsync + ``os.replace``): a crash
    mid-save can no longer leave a truncated archive over a good one.

    Parameters
    ----------
    model:
        Any object with a ``state_dict() -> Dict[str, ndarray]`` method.
    path:
        Target file; the ``.npz`` suffix is added when missing.
    metadata:
        JSON-serializable extras (epoch, metrics, config dict, ...).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = dict(model.state_dict())
    meta = dict(metadata or {})
    meta.setdefault("model_class", type(model).__name__)
    _pack_metadata(payload, meta)
    return atomic_savez(path, payload)


def _unpack_archive(archive) -> Dict[str, Any]:
    state = {k: archive[k] for k in archive.files if k != _META_KEY}
    metadata: Dict[str, Any] = {}
    if _META_KEY in archive.files:
        metadata = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
    return {"state": state, "metadata": metadata}


def load_checkpoint(path: str | Path, model=None) -> Dict[str, Any]:
    """Load a checkpoint; optionally restore it into ``model``.

    Returns ``{"state": {...}, "metadata": {...}}``.  When ``model`` is
    given, ``model.load_state_dict(state)`` is called (raising on any
    key/shape/dtype mismatch, so silent partial or precision-losing
    restores cannot happen).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        result = _unpack_archive(archive)
    if model is not None:
        model.load_state_dict(result["state"])
    return result


# ----------------------------------------------------------------------
# Rotated, checksummed run-state checkpoints
# ----------------------------------------------------------------------

class CheckpointStore:
    """A directory of rotated, checksummed ``.npz`` run-state checkpoints.

    Layout::

        <directory>/
            manifest.json          # [{"file", "step", "sha256", "bytes"}, ...]
            ckpt-0000000042.npz    # payload arrays + JSON metadata side-channel
            ckpt-0000000084.npz

    ``save`` publishes atomically, records the new entry in the
    manifest *before* pruning to ``keep_last`` files, and embeds the
    fault trip points documented in :mod:`repro.utils.faults`.
    ``load_latest`` walks entries newest-first, verifying the SHA-256
    and the archive's readability, and falls back (with a warning) past
    any truncated or corrupt file — the recovery behavior a crash
    during ``save`` relies on.  A missing or unparseable manifest is
    rebuilt from the ``ckpt-*.npz`` files on disk (without checksums).
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory: str | Path, keep_last: int = 3, prefix: str = "ckpt") -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.keep_last = int(keep_last)
        self.prefix = prefix

    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    def entries(self) -> List[Dict[str, Any]]:
        """Manifest entries sorted by step (oldest first), self-healing.

        A corrupt or missing manifest degrades to a directory scan:
        every ``<prefix>-*.npz`` present becomes an entry without a
        checksum (so loads still verify archive integrity, just not the
        digest).
        """
        manifest = self._manifest_path()
        entries: List[Dict[str, Any]] = []
        if manifest.exists():
            try:
                raw = json.loads(manifest.read_text(encoding="utf-8"))
                entries = [e for e in raw.get("checkpoints", []) if isinstance(e, dict)]
            except (json.JSONDecodeError, OSError, AttributeError):
                warnings.warn(
                    f"checkpoint manifest {manifest} is unreadable; "
                    f"rebuilding the entry list from the directory",
                    RuntimeWarning,
                    stacklevel=2,
                )
                entries = []
        if not entries:
            for path in sorted(self.directory.glob(f"{self.prefix}-*.npz")):
                try:
                    step = int(path.stem.rsplit("-", 1)[1])
                except (IndexError, ValueError):
                    continue
                entries.append({"file": path.name, "step": step, "sha256": None})
        return sorted(entries, key=lambda e: (e.get("step", -1), e.get("file", "")))

    def _write_manifest(self, entries: List[Dict[str, Any]]) -> None:
        atomic_write_text(
            self._manifest_path(),
            json.dumps({"version": 1, "checkpoints": entries}, indent=2) + "\n",
        )

    # ------------------------------------------------------------------
    def save(
        self,
        payload: Dict[str, np.ndarray],
        metadata: Dict[str, Any],
        step: int,
    ) -> Path:
        """Durably publish one checkpoint and rotate old ones.

        Order of operations (each boundary is a fault trip point):
        atomic archive write → manifest gains the new entry → rotation
        prunes beyond ``keep_last`` (manifest first, then files).  A
        crash at any point leaves a loadable store: at worst an orphan
        temp file or an already-pruned manifest entry whose file
        deletion didn't land (both are cleaned/skipped on later runs).
        """
        step = int(step)
        faults.trip("checkpoint.pre_save", step)
        payload = dict(payload)
        _pack_metadata(payload, dict(metadata))
        name = f"{self.prefix}-{step:010d}.npz"
        path = atomic_savez(self.directory / name, payload)
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        entries = [e for e in self.entries() if e.get("file") != name]
        entries.append(
            {"file": name, "step": step, "sha256": digest, "bytes": path.stat().st_size}
        )
        entries.sort(key=lambda e: (e.get("step", -1), e.get("file", "")))
        self._write_manifest(entries)
        faults.trip("checkpoint.post_save", step)
        if len(entries) > self.keep_last:
            keep, drop = entries[-self.keep_last:], entries[: -self.keep_last]
            self._write_manifest(keep)
            for entry in drop:
                with contextlib.suppress(OSError):
                    (self.directory / entry["file"]).unlink()
        faults.trip("checkpoint.end", step)
        return path

    # ------------------------------------------------------------------
    def _verify_and_load(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        path = self.directory / entry["file"]
        data = path.read_bytes()
        digest = entry.get("sha256")
        if digest and hashlib.sha256(data).hexdigest() != digest:
            raise CheckpointCorruptError(
                f"checksum mismatch for {path.name} (expected {digest[:12]}…)"
            )
        try:
            with np.load(_io.BytesIO(data), allow_pickle=False) as archive:
                result = _unpack_archive(archive)
        except Exception as exc:  # zipfile/numpy raise a zoo of types on truncation
            raise CheckpointCorruptError(f"unreadable archive {path.name}: {exc}") from exc
        result["path"] = path
        result["step"] = int(entry.get("step", -1))
        return result

    def load_latest(self) -> Dict[str, Any]:
        """Load the newest verifiable checkpoint.

        Returns ``{"state", "metadata", "path", "step"}``.  A newest
        entry that is missing, truncated, or checksum-corrupt is skipped
        with an explicit :class:`RuntimeWarning`, and the previous entry
        is tried — the load only raises (``FileNotFoundError``) when no
        entry in the store can be verified.
        """
        entries = self.entries()
        if not entries:
            raise FileNotFoundError(f"no checkpoints found in {self.directory}")
        failures = []
        for entry in reversed(entries):
            try:
                return self._verify_and_load(entry)
            except (OSError, CheckpointCorruptError) as exc:
                failures.append((entry.get("file"), exc))
                warnings.warn(
                    f"checkpoint {entry.get('file')} failed verification ({exc}); "
                    f"falling back to the previous checkpoint",
                    RuntimeWarning,
                    stacklevel=2,
                )
        raise FileNotFoundError(
            f"no loadable checkpoint in {self.directory}: "
            + "; ".join(f"{name}: {exc}" for name, exc in failures)
        )

    def latest_step(self) -> Optional[int]:
        """Step of the newest manifest entry (no verification), or ``None``."""
        entries = self.entries()
        return int(entries[-1]["step"]) if entries else None

    def __repr__(self) -> str:
        return (
            f"CheckpointStore({str(self.directory)!r}, keep_last={self.keep_last}, "
            f"entries={len(self.entries())})"
        )


# ----------------------------------------------------------------------
# Experiment results (plain JSON)
# ----------------------------------------------------------------------

def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def save_results(results: Dict[str, Any], path: str | Path) -> Path:
    """Persist an experiment-result dict as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(results), indent=2, sort_keys=True))
    return path


def load_results(path: str | Path) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())
