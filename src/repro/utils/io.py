"""Checkpoint and experiment-result persistence.

Checkpoints are ``.npz`` archives of a module's ``state_dict`` plus a
JSON metadata side-channel (model class, config, metrics at save time)
stored under a reserved key, so a checkpoint is self-describing.
Experiment results are plain JSON, making them diffable in review.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "save_results", "load_results"]

_META_KEY = "__repro_meta__"


def save_checkpoint(model, path: str | Path, metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Write ``model.state_dict()`` (and optional metadata) to ``path``.

    Parameters
    ----------
    model:
        Any object with a ``state_dict() -> Dict[str, ndarray]`` method.
    path:
        Target file; the ``.npz`` suffix is added when missing.
    metadata:
        JSON-serializable extras (epoch, metrics, config dict, ...).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(model.state_dict())
    if _META_KEY in payload:
        raise ValueError(f"state dict may not use the reserved key {_META_KEY!r}")
    meta = dict(metadata or {})
    meta.setdefault("model_class", type(model).__name__)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path


def load_checkpoint(path: str | Path, model=None) -> Dict[str, Any]:
    """Load a checkpoint; optionally restore it into ``model``.

    Returns ``{"state": {...}, "metadata": {...}}``.  When ``model`` is
    given, ``model.load_state_dict(state)`` is called (raising on any
    key/shape mismatch, so silent partial restores cannot happen).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
        metadata: Dict[str, Any] = {}
        if _META_KEY in archive.files:
            metadata = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
    if model is not None:
        model.load_state_dict(state)
    return {"state": state, "metadata": metadata}


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def save_results(results: Dict[str, Any], path: str | Path) -> Path:
    """Persist an experiment-result dict as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(results), indent=2, sort_keys=True))
    return path


def load_results(path: str | Path) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())
