"""Markdown/terminal table formatting for experiment output."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

__all__ = ["format_metric_table", "format_run_header"]


def format_metric_table(
    rows: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str] | None = None,
    highlight_best: bool = True,
    precision: int = 4,
) -> str:
    """Render ``{row_name: {metric: value}}`` as a markdown table.

    When ``highlight_best`` is set, the best value in each metric
    column is wrapped in ``**bold**`` (the paper's Table II convention).
    """
    if not rows:
        return "(empty)"
    if metrics is None:
        first = next(iter(rows.values()))
        metrics = sorted(first)
    best: Dict[str, float] = {}
    if highlight_best:
        for metric in metrics:
            values = [r[metric] for r in rows.values() if metric in r]
            if values:
                best[metric] = max(values)

    name_width = max(len(str(k)) for k in rows)
    header = f"| {'model':<{name_width}} | " + " | ".join(metrics) + " |"
    divider = f"|{'-' * (name_width + 2)}|" + "|".join("-" * (len(m) + 2) for m in metrics) + "|"
    lines = [header, divider]
    for name, metric_map in rows.items():
        cells = []
        for metric in metrics:
            if metric not in metric_map:
                cells.append("-")
                continue
            value = metric_map[metric]
            text = f"{value:.{precision}f}"
            if highlight_best and metric in best and value == best[metric]:
                text = f"**{text}**"
            cells.append(text)
        lines.append(f"| {str(name):<{name_width}} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_run_header(title: str, **context) -> str:
    """One-line experiment banner: ``=== title (k=v, ...) ===``."""
    extras = ", ".join(f"{k}={v}" for k, v in context.items())
    suffix = f" ({extras})" if extras else ""
    return f"=== {title}{suffix} ==="
