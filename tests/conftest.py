"""Shared fixtures: float64 default dtype for tight gradient tolerances."""

import numpy as np
import pytest

from repro.autograd.tensor import set_default_dtype

# The lint fixture corpus contains deliberate rule violations (and fake
# test files for the trip-point rule); it is analyzer input, not tests.
collect_ignore = ["lint_fixtures"]


@pytest.fixture(autouse=True)
def _float64_default():
    """Run every test in float64 so gradchecks are numerically tight."""
    set_default_dtype(np.float64)
    yield
    set_default_dtype(np.float32)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
