"""R6 cross-module fixture: the providing side."""

__all__ = ["provided"]


def provided():
    return 1
