"""R6 cross-module fixture: the importing side."""

from mod_a import provided  # FP pin: resolves
from mod_a import absent  # TP: mod_a binds no such name

__all__ = ["use"]


def use():
    return provided() and absent()
