"""R1 false-positive pins: capture-safe construction must stay silent."""

import numpy as np

from repro.autograd.functional import _make
from repro.autograd.graph import record_host, record_node
from repro.autograd.tensor import Tensor


def add(a, b):
    def forward():
        return a.data + b.data

    def backward(grad):
        return grad, grad

    # FP pin: the canonical chokepoint call with a replay closure.
    return _make(forward(), (a, b), backward, forward)


def dropout(a, rng):
    def forward():
        mask = rng.random(a.shape) > 0.5  # passed-in stream, not ambient
        return a.data * mask

    def backward(grad):
        return (grad,)

    return _make(forward(), (a,), backward, forward)


def fused_pair(a):
    def backward(grad):
        return (grad,)

    def forward():
        return a.data * 2.0

    # FP pin: direct Tensor construction is fine when the function
    # registers the node itself (the multi-output fused-op pattern).
    out = Tensor(forward(), _parents=(a,), _backward=backward)
    record_node(out, forward, "fused_pair")
    return out


def host_side_mask(a, state):
    def rebuild():
        np.copyto(state["mask"], a.data > 0)

    # FP pin: record_host closures recompute host buffers in place and
    # are exempt from the replay-purity scan by design.
    rebuild()
    record_host(rebuild, "fixture.mask")
    return state["mask"]
