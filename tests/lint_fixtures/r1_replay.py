"""R1 true-positive corpus: capture-unsafe autograd node construction.

Parsed by the analyzer tests, never imported or executed.
"""

import numpy as np

from repro.autograd.functional import _make
from repro.autograd.graph import record_node
from repro.autograd.tensor import Tensor


def add_no_replay(a, b):
    def forward():
        return a.data + b.data

    def backward(grad):
        return grad, grad

    # TP: three positional args, no replay closure.
    return _make(forward(), (a, b), backward)


def add_explicit_none(a, b):
    def forward():
        return a.data + b.data

    def backward(grad):
        return grad, grad

    # TP: replay=None is the same hole spelled out.
    return _make(forward(), (a, b), backward, replay=None)


def fused_without_record(a):
    def backward(grad):
        return (grad,)

    # TP: node built outside _make, and this function never calls
    # record_node — invisible to capture.
    return Tensor(a.data * 2.0, _parents=(a,), _backward=backward)


def ambient_rng_replay(a):
    def forward():
        noise = np.random.default_rng(0).random(a.shape)
        return a.data + noise

    def backward(grad):
        return (grad,)

    # TP (on the np.random line): the replay closure draws from ambient
    # RNG, so a replayed tape would diverge from the dynamic step.
    return _make(forward(), (a,), backward, forward)


def ambient_clock_replay(a):
    import time

    def forward():
        return a.data * time.time()

    def backward(grad):
        return (grad,)

    # TP: wall-clock reads are ambient state too.
    return _make(forward(), (a,), backward, forward)


def pragma_accepted(a, b):
    def forward():
        return a.data - b.data

    def backward(grad):
        return grad, grad

    # Suppressed: the pragma documents a sanctioned exception.
    return _make(forward(), (a, b), backward)  # lint: replay-ok(capture-exempt op)
