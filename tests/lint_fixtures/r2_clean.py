"""R2 false-positive pins: dtype-stable op code must stay silent."""

import numpy as np

from repro.autograd.functional import _make


def mean_op(a):
    def forward():
        # FP pin: re-wrapped reduction, the contract's fix.
        return np.asarray(a.data.mean(), dtype=a.dtype)

    def backward(grad):
        # FP pin: int() wrapper keeps the count a Python int.
        count = int(np.prod(a.shape))
        return (np.broadcast_to(grad / count, a.shape),)

    return _make(forward(), (a,), backward, forward)


def bias_grad_op(x, w, b):
    def forward():
        out = x.data @ w.data
        out += b.data
        return out

    def backward(grad):
        # FP pins: assigned matmuls (src idiom) and a constant non-None
        # axis, which cannot produce a scalar here.
        gx = grad @ w.data.T
        gw = x.data.T @ grad
        return gx, gw, grad.sum(axis=0)

    return _make(forward(), (x, w, b), backward, forward)


def alloc_op(a):
    def forward():
        # FP pins: explicit dtype, dtype-preserving array copy.
        out = np.zeros(a.shape, dtype=a.dtype)
        out += np.array(a.data, copy=True)
        return out

    def backward(grad):
        return (grad.astype(a.dtype, copy=False),)

    return _make(forward(), (a,), backward, forward)
