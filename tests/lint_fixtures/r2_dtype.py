"""R2 true-positive corpus: the float64-promotion shapes PR 2 fixed."""

import numpy as np

from repro.autograd.functional import _make


def mean_op(a):
    def forward():
        # TP: axis-less reduction returns a numpy scalar.
        return a.data.mean()

    def backward(grad):
        # TP: np.prod yields np.int64; dividing a float32 grad by it
        # promotes to float64.
        count = np.prod(a.shape)
        return (np.broadcast_to(grad / count, a.shape),)

    return _make(forward(), (a,), backward, forward)


def dot_op(a, b):
    def forward():
        # TP: 1-D @ 1-D decays to a scalar.
        return a.data @ b.data

    def backward(grad):
        return grad * b.data, grad * a.data

    return _make(forward(), (a, b), backward, forward)


def pad_op(a):
    def forward():
        # TP x2: dtype-less allocations default to float64.
        out = np.zeros(a.shape)
        out += np.array([1.0, 2.0])
        return out

    def backward(grad):
        return (grad,)

    return _make(forward(), (a,), backward, forward)


def pragma_accepted(a):
    def forward():
        return a.data.sum()  # lint: dtype-ok(loss scalars are float64 on purpose)

    def backward(grad):
        return (np.broadcast_to(grad, a.shape),)

    return _make(forward(), (a,), backward, forward)
