"""R2 scope pin: modules without op closures or Module-descendant
classes are analysis/tooling code, where float64 defaults are fine."""

import numpy as np


def histogram(values, bins):
    counts = np.zeros(bins)  # FP pin: out of R2 scope, no finding
    for v in values:
        counts[int(v)] += 1
    return counts
