"""R3 false-positive pins: sanctioned or rebinding gradient code."""

import numpy as np


class Tensor:
    def _accumulate_grad(self, grad):
        # FP pin: the sanctioned accumulation site may mutate in place.
        if self._grad is None:
            self._grad = grad
        else:
            self._grad += grad


def clip_grad_norm(params, scale):
    # FP pin: the sanctioned clipping site.
    for p in params:
        np.multiply(p.grad, scale, out=p.grad)


def guarded_scale(params, scale):
    for p in params:
        if getattr(p, "_grad_owned", False):
            # FP pin: explicit ownership guard sanctions the mutation.
            p.grad *= scale
        else:
            p._grad = p.grad * scale  # FP pin: rebinding is always safe


def seed_buffers(params, bufs):
    for p, buf in zip(params, bufs):
        p._grad = buf  # FP pin: plain rebind, not a mutation
        p._grad_owned = True
