"""R3 true-positive corpus: unsanctioned in-place gradient mutation."""

import numpy as np


def scale_grads(params, factor):
    for p in params:
        # TP: in-place scale with no ownership guard — if the buffer is
        # borrowed this corrupts a sibling node's accumulator.
        p.grad *= factor


def zero_first_row(p):
    # TP: slice assignment into the buffer.
    p.grad[0] = 0.0


def overwrite(p, values):
    # TP: np.copyto mutates the destination buffer.
    np.copyto(p.grad, values)


def scale_out(p, factor):
    # TP: out= aliases the gradient buffer as the destination.
    np.multiply(p.grad, factor, out=p.grad)


def clear(p):
    # TP: .fill() is an in-place write too.
    p._grad.fill(0.0)


def pragma_accepted(p):
    p.grad += 1.0  # lint: grad-ok(fixture-sanctioned accumulation)
