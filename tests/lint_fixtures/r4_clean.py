"""R4 false-positive pins: disciplined or lock-free classes."""

import threading


class DisciplinedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def increment(self):
        with self._lock:
            self._count += 1

    def peek(self):
        # FP pin: read under the protecting lock.
        with self._lock:
            return self._count

    def wait_nonzero(self):
        cond = threading.Condition(self._lock)
        with self._lock:
            # FP pin: wait_for predicates run inline under the lock, so
            # lambdas keep the held set.
            cond.wait_for(lambda: self._count > 0)
            return self._count


class LockFreeBag:
    """No locks owned: nothing is protected, nothing is flagged."""

    def __init__(self):
        self.items = []

    def add(self, item):
        self.items.append(item)  # FP pin

    def snapshot(self):
        return list(self.items)  # FP pin
