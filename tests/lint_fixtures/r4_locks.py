"""R4 true-positive corpus: bare access to lock-protected attributes."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # __init__ writes are exempt (pre-sharing)

    def increment(self):
        with self._lock:
            self._count += 1

    def peek(self):
        # TP: _count is written under _lock in increment() but read bare.
        return self._count

    def reset(self):
        # TP: bare write.
        self._count = 0

    def drain_async(self):
        def worker():
            # TP: the closure runs on another thread later; the lock
            # held at definition time is NOT held at execution time.
            self._count = 0

        with self._lock:
            return worker

    def audited_peek(self):  # lint: unlocked-ok(caller holds _lock)
        # Suppressed: the pragma documents the caller-holds protocol.
        return self._count


class CondQueue:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = []

    def put(self, item):
        with self._cond:
            self._items.append(item)
            self._items[0] = item  # subscript write under the lock
            self._cond.notify_all()

    def stale_len(self):
        # TP: Condition counts as a lock for the discipline.
        return len(self._items)
