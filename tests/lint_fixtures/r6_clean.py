"""R6 false-positive pins: an honest export surface."""

try:
    from json import dumps  # conditional import still binds the name
except ImportError:  # pragma: no cover
    dumps = repr

__all__ = ["Widget", "render", "dumps"]

DEFAULT_SIZE = 4  # FP pin: module constants are not forced into __all__


class Widget:
    pass


def render(widget):
    return dumps({"widget": repr(widget)})


def _internal(widget):  # FP pin
    return widget
