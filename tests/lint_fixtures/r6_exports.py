"""R6 true-positive corpus: a drifted export surface."""

__all__ = [
    "build",
    "vanished",  # TP: no such binding in this module
]


def build(config):
    return config


def helper(config):  # TP: public but not exported and not underscored
    return dict(config)


def _private(config):  # FP pin: underscore names need no export
    return config


def pragma_accepted(config):  # lint: export-ok(legacy shim kept importable)
    return config
