"""R5 fixture production side: two trip points, one never tested."""

from repro.utils import faults

__all__ = ["run", "flush"]


def run(batches):
    for i, batch in enumerate(batches):
        faults.trip("stage.run", i)  # covered by the fixture tests
        yield batch


def flush(sink):
    # TP: no fixture test ever references 'stage.flush'.
    faults.trip("stage.flush")
    sink.flush()
