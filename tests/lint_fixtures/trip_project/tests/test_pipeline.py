"""R5 fixture test side.  Never collected by pytest (see
tests/conftest.py collect_ignore); only parsed by the analyzer."""

from repro.utils.faults import FaultInjector

# Parametrized-matrix coverage: a bare string literal anywhere in a
# test file counts as exercising the point.
POINTS = ("stage.run",)


def test_run_crashes():
    injector = FaultInjector().crash_at("stage.run", at=1)
    # TP: 'stage.missing' exists in no production trip() call — this
    # schedule can never fire.
    injector.io_error_at("stage.missing")
