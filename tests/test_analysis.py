"""Tests for the frequency-analysis toolkit."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    band_energy,
    dataset_spectral_profile,
    periodicity_score,
    sequence_spectrum,
)


class TestSequenceSpectrum:
    def test_pure_sinusoid_peaks_at_its_bin(self):
        n = 32
        t = np.arange(n)
        signal = np.cos(2 * np.pi * 4 * t / n)  # frequency bin 4
        spec = sequence_spectrum(signal)
        assert spec.argmax() == 4

    def test_constant_signal_all_zero(self):
        spec = sequence_spectrum(np.ones(16))
        assert np.allclose(spec, 0.0)  # mean removal kills DC

    def test_truncates_to_recent_window(self):
        old = np.zeros(16)
        recent = np.cos(2 * np.pi * 2 * np.arange(16) / 16)
        spec = sequence_spectrum(np.concatenate([old, recent]), n=16)
        assert spec.argmax() == 2

    def test_zero_padding_shorter_signals(self):
        spec = sequence_spectrum([1.0, -1.0], n=8)
        assert spec.shape == (5,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            sequence_spectrum(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sequence_spectrum([])


class TestBandEnergy:
    def test_partitions_total_energy(self):
        spec = np.random.default_rng(0).random(17)
        bands = band_energy(spec, 4)
        assert np.isclose(bands.sum(), (spec ** 2).sum())

    def test_band_count(self):
        assert band_energy(np.ones(10), 3).shape == (3,)

    @given(m=st.integers(4, 40), bands=st.integers(1, 8), seed=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_energy_conservation_property(self, m, bands, seed):
        spec = np.random.default_rng(seed).random(m)
        assert np.isclose(band_energy(spec, bands).sum(), (spec ** 2).sum())


class TestPeriodicityScore:
    def test_sinusoid_scores_high(self):
        t = np.arange(64)
        assert periodicity_score(np.cos(2 * np.pi * 8 * t / 64)) > 0.9

    def test_noise_scores_low(self):
        noise = np.random.default_rng(0).normal(size=256)
        assert periodicity_score(noise) < 0.3

    def test_constant_scores_zero(self):
        assert periodicity_score(np.ones(32)) == 0.0

    def test_bounded(self):
        for seed in range(5):
            sig = np.random.default_rng(seed).normal(size=64)
            assert 0.0 <= periodicity_score(sig) <= 1.0


class TestDatasetProfile:
    def test_synthetic_more_periodic_than_shuffled(self):
        """The planted workload must be measurably more periodic than a
        shuffled version of itself — validating both the generator and
        the analysis toolkit in one move."""
        from repro.data.synthetic import SyntheticConfig, generate_interactions
        from repro.data.preprocess import build_user_sequences

        # Few items per category with a steep Zipf law, so users repeat
        # the category's top item within a dwell and the novelty signal
        # inherits the planted category period.
        cfg = SyntheticConfig(
            num_users=60, num_items=8, num_categories=2, user_categories=2,
            min_period=4.0, max_period=8.0, mean_length=40.0,
            temperature=0.1, noise_prob=0.0, zipf_exponent=3.0, seed=5,
        )
        sequences, _, _ = build_user_sequences(generate_interactions(cfg))
        profile = dataset_spectral_profile(sequences, n=32)

        rng = np.random.default_rng(0)
        shuffled = [rng.permutation(s).tolist() for s in sequences]
        null_profile = dataset_spectral_profile(shuffled, n=32)
        assert profile["periodicity"] > null_profile["periodicity"]

    def test_empty_dataset(self):
        profile = dataset_spectral_profile([], n=16)
        assert profile["num_sequences"] == 0
        assert np.allclose(profile["mean_spectrum"], 0.0)

    def test_short_sequences_skipped(self):
        profile = dataset_spectral_profile([[1, 2]], n=16)
        assert profile["num_sequences"] == 0

    def test_output_shapes(self):
        seqs = [list(range(20)) for _ in range(5)]
        profile = dataset_spectral_profile(seqs, n=16, num_bands=4)
        assert profile["mean_spectrum"].shape == (9,)
        assert profile["band_energy"].shape == (4,)
        assert profile["num_sequences"] == 5
