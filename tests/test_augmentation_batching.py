"""Tests for sequence augmentations and the batch iterator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.augmentation import (
    ItemCorrelation,
    crop_sequence,
    insert_sequence,
    mask_sequence,
    reorder_sequence,
    substitute_sequence,
)
from repro.data.batching import BatchIterator
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions

seq_strategy = st.lists(st.integers(1, 30), min_size=1, max_size=25)


class TestCrop:
    @given(seq=seq_strategy, ratio=st.floats(0.1, 1.0), seed=st.integers(0, 999))
    @settings(max_examples=50, deadline=None)
    def test_is_contiguous_subsequence(self, seq, ratio, seed):
        out = crop_sequence(seq, ratio, np.random.default_rng(seed))
        joined = ",".join(map(str, seq))
        assert ",".join(map(str, out)) in joined

    def test_single_item_unchanged(self):
        assert crop_sequence([5], 0.5, np.random.default_rng(0)) == [5]


class TestMask:
    @given(seq=seq_strategy, ratio=st.floats(0.0, 1.0), seed=st.integers(0, 999))
    @settings(max_examples=50, deadline=None)
    def test_length_preserved(self, seq, ratio, seed):
        out = mask_sequence(seq, ratio, 0, np.random.default_rng(seed))
        assert len(out) == len(seq)

    def test_masked_positions_get_mask_id(self):
        out = mask_sequence([1, 2, 3, 4], 1.0, 99, np.random.default_rng(0))
        assert out.count(99) >= 1
        assert all(x == 99 or x in [1, 2, 3, 4] for x in out)


class TestReorder:
    @given(seq=seq_strategy, ratio=st.floats(0.1, 1.0), seed=st.integers(0, 999))
    @settings(max_examples=50, deadline=None)
    def test_multiset_preserved(self, seq, ratio, seed):
        out = reorder_sequence(seq, ratio, np.random.default_rng(seed))
        assert sorted(out) == sorted(seq)


class TestCorrelationAugmentations:
    @pytest.fixture
    def corr(self):
        seqs = [[1, 2, 3, 1, 2], [2, 3, 4, 2, 3], [1, 4, 1, 4, 2]]
        return ItemCorrelation(seqs, window=2)

    def test_most_correlated_returns_neighbour(self, corr):
        rng = np.random.default_rng(0)
        assert corr.most_correlated(1, rng) in {1, 2, 3, 4}

    def test_unknown_item_maps_to_itself(self, corr):
        assert corr.most_correlated(999, np.random.default_rng(0)) == 999

    def test_substitute_preserves_length(self, corr):
        seq = [1, 2, 3, 4]
        out = substitute_sequence(seq, 0.5, corr, np.random.default_rng(0))
        assert len(out) == len(seq)

    def test_insert_grows_sequence(self, corr):
        seq = [1, 2, 3, 4]
        out = insert_sequence(seq, 0.5, corr, np.random.default_rng(0))
        assert len(out) > len(seq)

    def test_insert_keeps_original_items_in_order(self, corr):
        seq = [1, 2, 3, 4]
        out = insert_sequence(seq, 0.5, corr, np.random.default_rng(0))
        it = iter(out)
        assert all(x in it for x in seq)  # subsequence check


@pytest.fixture
def dataset():
    cfg = SyntheticConfig(num_users=50, num_items=40, seed=3)
    return SequenceDataset(generate_interactions(cfg), max_len=10)


class TestBatchIterator:
    def test_covers_all_instances_once(self, dataset):
        it = BatchIterator(dataset, batch_size=32, seed=0)
        seen = []
        for batch in it.epoch():
            seen.extend(batch.instance_indices.tolist())
        assert sorted(seen) == list(range(len(dataset.train_instances)))

    def test_len_counts_batches(self, dataset):
        it = BatchIterator(dataset, batch_size=32, seed=0)
        assert len(it) == len(list(it.epoch()))

    def test_epochs_reshuffle(self, dataset):
        it = BatchIterator(dataset, batch_size=1000, seed=0)
        first = next(iter(it.epoch())).instance_indices.tolist()
        second = next(iter(it.epoch())).instance_indices.tolist()
        assert first != second

    def test_same_target_positive_alignment(self, dataset):
        it = BatchIterator(dataset, batch_size=16, with_same_target=True, seed=0)
        batch = next(iter(it.epoch()))
        assert batch.positive_ids is not None
        assert batch.positive_ids.shape == batch.input_ids.shape

    def test_without_same_target_positive_is_none(self, dataset):
        it = BatchIterator(dataset, batch_size=16, seed=0)
        batch = next(iter(it.epoch()))
        assert batch.positive_ids is None

    def test_batch_shapes(self, dataset):
        it = BatchIterator(dataset, batch_size=16, seed=0)
        batch = next(iter(it.epoch()))
        assert batch.input_ids.shape == (16, 10)
        assert batch.targets.shape == (16,)
        assert len(batch) == 16
