"""Gradient checks and behaviour tests for every functional op."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import functional as F
from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import Tensor


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


def rand(rng, *shape):
    return t(rng.normal(size=shape))


class TestElementwiseGradients:
    def test_add(self, rng):
        gradcheck(F.add, [rand(rng, 3, 4), rand(rng, 3, 4)])

    def test_add_broadcast(self, rng):
        gradcheck(F.add, [rand(rng, 3, 4), rand(rng, 4)])

    def test_sub_broadcast_scalar(self, rng):
        gradcheck(F.sub, [rand(rng, 2, 3), t(1.5)])

    def test_mul(self, rng):
        gradcheck(F.mul, [rand(rng, 3, 4), rand(rng, 3, 4)])

    def test_mul_broadcast_column(self, rng):
        gradcheck(F.mul, [rand(rng, 3, 4), rand(rng, 3, 1)])

    def test_div(self, rng):
        a = rand(rng, 3, 3)
        b = t(rng.uniform(0.5, 2.0, size=(3, 3)))
        gradcheck(F.div, [a, b])

    def test_neg(self, rng):
        gradcheck(F.neg, [rand(rng, 5)])

    def test_pow(self, rng):
        a = t(rng.uniform(0.5, 2.0, size=(4,)))
        gradcheck(lambda x: F.pow(x, 3.0), [a])

    def test_exp(self, rng):
        gradcheck(F.exp, [rand(rng, 3, 3)])

    def test_log(self, rng):
        gradcheck(F.log, [t(rng.uniform(0.5, 3.0, size=(4,)))])

    def test_sqrt(self, rng):
        gradcheck(F.sqrt, [t(rng.uniform(0.5, 3.0, size=(4,)))])

    def test_tanh(self, rng):
        gradcheck(F.tanh, [rand(rng, 3, 3)])

    def test_sigmoid(self, rng):
        gradcheck(F.sigmoid, [rand(rng, 3, 3)])

    def test_logsigmoid(self, rng):
        gradcheck(F.logsigmoid, [rand(rng, 10)])

    def test_logsigmoid_extreme_values_finite(self):
        out = F.logsigmoid(t([-100.0, 0.0, 100.0]))
        assert np.all(np.isfinite(out.data))

    def test_relu(self, rng):
        # Shift away from 0 to avoid the kink in finite differences.
        a = t(rng.normal(size=(4, 4)) + np.sign(rng.normal(size=(4, 4))) * 0.5)
        gradcheck(F.relu, [a])

    def test_gelu(self, rng):
        gradcheck(F.gelu, [rand(rng, 3, 3)])

    def test_maximum(self, rng):
        a = rand(rng, 5)
        b = t(a.data + np.where(rng.normal(size=5) > 0, 0.5, -0.5))
        gradcheck(F.maximum, [a, b])

    def test_clip_gradient_zero_outside(self):
        a = t([-2.0, 0.0, 2.0])
        out = F.clip(a, -1.0, 1.0)
        out.backward(np.ones(3))
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_where(self, rng):
        cond = rng.normal(size=(3, 3)) > 0
        gradcheck(lambda a, b: F.where(cond, a, b), [rand(rng, 3, 3), rand(rng, 3, 3)])

    def test_masked_fill_blocks_gradient(self):
        a = t([1.0, 2.0, 3.0])
        mask = np.array([True, False, True])
        out = F.masked_fill(a, mask, -99.0)
        assert np.allclose(out.data, [-99.0, 2.0, -99.0])
        out.backward(np.ones(3))
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestShapeOps:
    def test_reshape(self, rng):
        gradcheck(lambda a: F.reshape(a, (6,)), [rand(rng, 2, 3)])

    def test_transpose_default(self, rng):
        gradcheck(lambda a: F.transpose(a, None), [rand(rng, 2, 3)])

    def test_transpose_axes(self, rng):
        gradcheck(lambda a: F.transpose(a, (2, 0, 1)), [rand(rng, 2, 3, 4)])

    def test_getitem_int_row(self, rng):
        gradcheck(lambda a: F.getitem(a, 1), [rand(rng, 3, 4)])

    def test_getitem_slice(self, rng):
        gradcheck(lambda a: F.getitem(a, (slice(None), slice(1, 3))), [rand(rng, 3, 4)])

    def test_getitem_fancy_repeated_indices_accumulate(self):
        a = t([[1.0, 2.0], [3.0, 4.0]])
        out = F.getitem(a, np.array([0, 0, 1]))
        out.backward(np.ones((3, 2)))
        assert np.allclose(a.grad, [[2.0, 2.0], [1.0, 1.0]])

    def test_concat(self, rng):
        gradcheck(lambda a, b: F.concat([a, b], axis=1), [rand(rng, 2, 3), rand(rng, 2, 2)])

    def test_stack(self, rng):
        gradcheck(lambda a, b: F.stack([a, b], axis=0), [rand(rng, 2, 3), rand(rng, 2, 3)])

    def test_pad_axis(self, rng):
        gradcheck(lambda a: F.pad_axis(a, 1, 2, 1), [rand(rng, 2, 3)])

    def test_pad_axis_value(self):
        out = F.pad_axis(t([[1.0]]), 1, 1, 1, value=7.0)
        assert np.allclose(out.data, [[7.0, 1.0, 7.0]])


class TestReductions:
    def test_sum_all(self, rng):
        gradcheck(lambda a: F.sum(a), [rand(rng, 3, 4)])

    def test_sum_axis_keepdims(self, rng):
        gradcheck(lambda a: F.sum(a, axis=1, keepdims=True), [rand(rng, 3, 4)])

    def test_sum_axis_no_keepdims(self, rng):
        gradcheck(lambda a: F.sum(a, axis=0), [rand(rng, 3, 4)])

    def test_mean_all(self, rng):
        gradcheck(lambda a: F.mean(a), [rand(rng, 3, 4)])

    def test_mean_axis(self, rng):
        gradcheck(lambda a: F.mean(a, axis=1), [rand(rng, 3, 4)])

    def test_var_matches_numpy(self, rng):
        a = rand(rng, 5, 6)
        assert np.allclose(F.var(a, axis=1).data, a.data.var(axis=1))

    def test_var_gradcheck(self, rng):
        gradcheck(lambda a: F.var(a, axis=1), [rand(rng, 3, 4)])

    def test_sum_to(self, rng):
        gradcheck(lambda a: F.sum_to(a, (1, 4)), [rand(rng, 3, 4)])


class TestMatmul:
    def test_2d(self, rng):
        gradcheck(F.matmul, [rand(rng, 3, 4), rand(rng, 4, 5)])

    def test_batched_3d(self, rng):
        gradcheck(F.matmul, [rand(rng, 2, 3, 4), rand(rng, 2, 4, 5)])

    def test_broadcast_batch(self, rng):
        gradcheck(F.matmul, [rand(rng, 2, 3, 4), rand(rng, 4, 5)])

    def test_2d_times_3d(self, rng):
        gradcheck(F.matmul, [rand(rng, 3, 4), rand(rng, 2, 4, 5)])

    def test_vector_vector(self, rng):
        gradcheck(F.matmul, [rand(rng, 4), rand(rng, 4)])

    def test_matrix_vector(self, rng):
        gradcheck(F.matmul, [rand(rng, 3, 4), rand(rng, 4)])

    def test_batched_matrix_vector(self, rng):
        gradcheck(F.matmul, [rand(rng, 2, 3, 4), rand(rng, 4)])

    @given(
        m=st.integers(1, 4), k=st.integers(1, 4), n=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_matmul_shapes_property(self, m, k, n, seed):
        r = np.random.default_rng(seed)
        a, b = rand(r, m, k), rand(r, k, n)
        out = F.matmul(a, b)
        assert out.shape == (m, n)
        gradcheck(F.matmul, [a, b])


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        out = F.softmax(rand(rng, 4, 7), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_shift_invariance(self, rng):
        a = rand(rng, 3, 5)
        shifted = Tensor(a.data + 100.0)
        assert np.allclose(F.softmax(a).data, F.softmax(shifted).data)

    def test_softmax_gradcheck(self, rng):
        gradcheck(lambda a: F.softmax(a, axis=-1), [rand(rng, 3, 5)])

    def test_log_softmax_consistent_with_softmax(self, rng):
        a = rand(rng, 3, 5)
        assert np.allclose(F.log_softmax(a).data, np.log(F.softmax(a).data))

    def test_log_softmax_gradcheck(self, rng):
        gradcheck(lambda a: F.log_softmax(a, axis=-1), [rand(rng, 3, 5)])

    def test_cross_entropy_matches_manual(self, rng):
        logits = rand(rng, 4, 6)
        targets = np.array([0, 2, 5, 1])
        loss = F.cross_entropy(logits, targets)
        lp = F.log_softmax(Tensor(logits.data)).data
        manual = -lp[np.arange(4), targets].mean()
        assert np.isclose(float(loss.data), manual)

    def test_cross_entropy_gradcheck(self, rng):
        targets = np.array([1, 0, 3])
        gradcheck(lambda a: F.cross_entropy(a, targets), [rand(rng, 3, 4)])

    def test_cross_entropy_ignore_index(self, rng):
        logits = rand(rng, 4, 5)
        targets = np.array([1, -100, 2, -100])
        loss = F.cross_entropy(logits, targets, ignore_index=-100)
        dense = F.cross_entropy(
            Tensor(logits.data[[0, 2]]), np.array([1, 2])
        )
        assert np.isclose(float(loss.data), float(dense.data))

    def test_cross_entropy_ignore_index_gradcheck(self, rng):
        targets = np.array([1, -100, 2])
        gradcheck(
            lambda a: F.cross_entropy(a, targets, ignore_index=-100), [rand(rng, 3, 4)]
        )

    def test_cross_entropy_3d_logits(self, rng):
        logits = rand(rng, 2, 3, 5)
        targets = np.array([[0, 1, 2], [3, 4, 0]])
        gradcheck(lambda a: F.cross_entropy(a, targets), [logits])

    def test_bce_with_logits_matches_manual(self, rng):
        logits = rand(rng, 8)
        targets = (rng.random(8) > 0.5).astype(float)
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        p = 1.0 / (1.0 + np.exp(-logits.data))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert np.isclose(float(loss.data), manual)

    def test_bce_with_logits_gradcheck(self, rng):
        targets = (rng.random(6) > 0.5).astype(float)
        gradcheck(
            lambda a: F.binary_cross_entropy_with_logits(a, targets), [rand(rng, 6)]
        )


class TestEmbeddingDropoutNorm:
    def test_embedding_gather(self, rng):
        w = rand(rng, 6, 3)
        idx = np.array([[0, 2], [5, 5]])
        out = F.embedding(w, idx)
        assert out.shape == (2, 2, 3)
        assert np.allclose(out.data[1, 0], w.data[5])

    def test_embedding_scatter_add_backward(self, rng):
        w = rand(rng, 6, 3)
        idx = np.array([1, 1, 4])
        out = F.embedding(w, idx)
        out.backward(np.ones((3, 3)))
        assert np.allclose(w.grad[1], 2.0)
        assert np.allclose(w.grad[4], 1.0)
        assert np.allclose(w.grad[0], 0.0)

    def test_embedding_gradcheck(self, rng):
        idx = np.array([[0, 3], [2, 0]])
        gradcheck(lambda w: F.embedding(w, idx), [rand(rng, 5, 2)])

    def test_dropout_eval_is_identity(self, rng):
        a = rand(rng, 4, 4)
        out = F.dropout(a, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is a

    def test_dropout_scales_kept_values(self, rng):
        a = t(np.ones((2000,)))
        out = F.dropout(a, 0.25, training=True, rng=np.random.default_rng(0))
        kept = out.data[out.data != 0]
        assert np.allclose(kept, 1.0 / 0.75)
        # expected fraction kept ~ 0.75
        assert abs((out.data != 0).mean() - 0.75) < 0.05

    def test_dropout_p1_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(rand(rng, 3), 1.0, training=True, rng=np.random.default_rng(0))

    def test_layer_norm_output_standardized(self, rng):
        a = rand(rng, 4, 8)
        out = F.layer_norm(a, t(np.ones(8)), t(np.zeros(8)))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-8)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-5)

    def test_layer_norm_gradcheck(self, rng):
        gradcheck(
            lambda a, g, b: F.layer_norm(a, g, b),
            [rand(rng, 3, 6), t(rng.uniform(0.5, 1.5, 6)), rand(rng, 6)],
        )

    def test_layer_norm_gradcheck_1d_input(self, rng):
        # Regression: with no batch axes, grad and gamma share a shape
        # and the in-place backward must not alias its scratch buffer
        # into the returned gamma gradient.
        gradcheck(
            lambda a, g, b: F.layer_norm(a, g, b),
            [rand(rng, 6), t(rng.uniform(0.5, 1.5, 6)), rand(rng, 6)],
        )

    def test_l2_normalize_unit_norm(self, rng):
        out = F.l2_normalize(rand(rng, 5, 7), axis=-1)
        assert np.allclose(np.linalg.norm(out.data, axis=-1), 1.0)

    def test_l2_normalize_gradcheck(self, rng):
        gradcheck(lambda a: F.l2_normalize(a, axis=-1), [rand(rng, 3, 4)])


class TestHypothesisBroadcasting:
    @given(
        shape_a=st.sampled_from([(3, 4), (1, 4), (3, 1), (4,), (1,)]),
        shape_b=st.sampled_from([(3, 4), (1, 4), (3, 1), (4,), (1,)]),
        op_name=st.sampled_from(["add", "sub", "mul"]),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_binary_ops_broadcast_gradients(self, shape_a, shape_b, op_name, seed):
        r = np.random.default_rng(seed)
        op = getattr(F, op_name)
        a = t(r.normal(size=shape_a))
        b = t(r.normal(size=shape_b))
        gradcheck(op, [a, b])
