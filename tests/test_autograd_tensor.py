"""Tests for the Tensor core: graph recording, backward, grad modes."""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled, set_default_dtype, unbroadcast


class TestTensorBasics:
    def test_scalar_creation_uses_default_dtype(self):
        assert Tensor(1.5).dtype == np.float64

    def test_integer_data_stays_integer(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.int64

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor([1, 2, 3], requires_grad=True)

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b._backward is None

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestBackward:
    def test_simple_chain(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x  # y = x^2, dy/dx = 2x
        y.backward()
        assert np.isclose(x.grad, 6.0)

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor(2.0, requires_grad=True)
        (x * x).backward()
        (x * x).backward()
        assert np.isclose(x.grad, 8.0)

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor(2.0, requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        out = a + b
        out.backward()
        assert np.isclose(x.grad, 8.0)

    def test_reused_node_gradient(self):
        # y = (x + x) * x = 2x^2, dy/dx = 4x
        x = Tensor(3.0, requires_grad=True)
        y = (x + x) * x
        y.backward()
        assert np.isclose(x.grad, 12.0)

    def test_non_scalar_backward_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.ones(2))
        assert np.allclose(x.grad, [2.0, 2.0])

    def test_backward_on_graphless_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward(np.ones(1))

    def test_grad_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 1.0
        with pytest.raises(ValueError):
            y.backward(np.ones(3))

    def test_deep_chain_does_not_recurse(self):
        # 3000-op chain would blow the python recursion limit if
        # backward were recursive.
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert np.isclose(x.grad, 1.0)


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert y._backward is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_prepended_axes(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.all(unbroadcast(g, (2, 3)) == 4.0)

    def test_sums_stretched_axes(self):
        g = np.ones((2, 5))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.all(out == 5.0)

    def test_mixed(self):
        g = np.ones((7, 2, 5))
        out = unbroadcast(g, (1, 5))
        assert out.shape == (1, 5)
        assert np.all(out == 14.0)


class TestDtypeControl:
    def test_set_default_dtype_rejects_non_float(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)


class TestItem:
    def test_scalar_tensor(self):
        assert Tensor(3.5).item() == 3.5

    def test_single_element_array(self):
        assert Tensor(np.array([[2.0]])).item() == 2.0

    def test_non_scalar_raises_clear_valueerror(self):
        with pytest.raises(ValueError, match=r"1-element tensor.*\(2, 3\)"):
            Tensor(np.zeros((2, 3))).item()

    def test_empty_tensor_raises(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((0,))).item()


class TestInPlaceAccumulationSafety:
    """Regressions for the buffer-ownership rewrite of backward()."""

    def test_sibling_grads_do_not_share_buffers_after_accumulation(self):
        # add's backward hands the *same* grad array to both parents;
        # accumulating into one leaf must never corrupt the other.
        x = Tensor(np.ones(3), requires_grad=True)
        y = Tensor(np.ones(3), requires_grad=True)
        z = F.add(x, y)
        F.sum(F.add(z, x)).backward()  # x gets two contributions, y one
        assert np.allclose(x.grad, 2.0)
        assert np.allclose(y.grad, 1.0)

    def test_repeated_backward_does_not_mutate_sibling(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = Tensor(np.ones(3), requires_grad=True)
        out = F.sum(F.add(x, y))
        out.backward()
        first_y = y.grad.copy()
        out.backward()  # accumulate a second pass
        assert np.allclose(y.grad, 2.0 * first_y)
        assert np.allclose(x.grad, y.grad)

    def test_scalar_graph_accumulation(self):
        # 0-d arithmetic yields immutable numpy scalars; the in-place
        # fast path must fall back to allocation for them.
        x = Tensor(3.0, requires_grad=True)
        y = (x + x) * x  # dy/dx = 4x = 12, three contributions to x
        y.backward()
        assert np.isclose(x.grad, 12.0)

    def test_many_contributions_accumulate_in_place(self):
        x = Tensor(np.ones(4), requires_grad=True)
        total = F.add(F.add(x, x), F.add(x, x))
        F.sum(total).backward()
        assert np.allclose(x.grad, 4.0)

    def test_externally_assigned_grad_buffer_never_mutated(self):
        # Assigning .grad resets ownership: a later backward pass must
        # accumulate into a fresh array, not the caller's buffer.
        x = Tensor(np.ones(3), requires_grad=True)
        out = F.sum(F.mul(x, 2.0))
        out.backward()
        out.backward()  # makes x's grad buffer owned
        external = np.zeros(3)
        x.grad = external
        out.backward()
        assert np.allclose(external, 0.0)  # untouched
        assert np.allclose(x.grad, 2.0)

    def test_zero_grad_resets_ownership(self):
        x = Tensor(np.ones(2), requires_grad=True)
        F.sum(F.mul(x, 2.0)).backward()
        x.zero_grad()
        assert x.grad is None
        F.sum(F.mul(x, 3.0)).backward()
        assert np.allclose(x.grad, 3.0)
