"""Behavioural tests for every Table II baseline."""

import numpy as np
import pytest

from repro.baselines import BASELINE_NAMES, build_baseline
from repro.data.batching import Batch, BatchIterator
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.optim import Adam


@pytest.fixture(scope="module")
def dataset():
    cfg = SyntheticConfig(num_users=60, num_items=40, seed=6)
    return SequenceDataset(generate_interactions(cfg), max_len=10)


def make_batch(dataset, with_positive):
    it = BatchIterator(dataset, batch_size=12, with_same_target=with_positive, seed=0)
    return next(iter(it.epoch()))


@pytest.mark.parametrize("name", BASELINE_NAMES)
class TestAllModelsShareTheInterface:
    def test_predict_scores_shape_and_finite(self, name, dataset):
        model = build_baseline(name, dataset, hidden_dim=16, seed=0)
        model.eval()
        inputs, _ = dataset.eval_arrays("test")
        scores = model.predict_scores(inputs[:5])
        assert scores.shape == (5, dataset.vocab_size)
        assert np.all(np.isfinite(scores))

    def test_loss_backward_populates_gradients(self, name, dataset):
        model = build_baseline(name, dataset, hidden_dim=16, seed=0)
        batch = make_batch(dataset, with_positive=True)
        loss = model.loss(batch)
        assert np.isfinite(loss.data)
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, f"{name}: no gradients at all"

    def test_one_optimizer_step_changes_predictions(self, name, dataset):
        model = build_baseline(name, dataset, hidden_dim=16, seed=0)
        inputs, _ = dataset.eval_arrays("test")
        model.eval()
        before = model.predict_scores(inputs[:4]).copy()
        model.train()
        opt = Adam(model.parameters(), lr=1e-2)
        batch = make_batch(dataset, with_positive=True)
        opt.zero_grad()
        model.loss(batch).backward()
        opt.step()
        model.eval()
        after = model.predict_scores(inputs[:4])
        assert not np.allclose(before, after)

    def test_state_dict_round_trip(self, name, dataset):
        a = build_baseline(name, dataset, hidden_dim=16, seed=0)
        b = build_baseline(name, dataset, hidden_dim=16, seed=1)
        b.load_state_dict(a.state_dict())
        sa, sb = a.state_dict(), b.state_dict()
        assert all(np.allclose(sa[k], sb[k]) for k in sa)


class TestModelSpecificBehaviour:
    def test_registry_rejects_unknown(self, dataset):
        with pytest.raises(KeyError):
            build_baseline("NotAModel", dataset)

    def test_bprmf_is_order_invariant(self, dataset):
        """BPR-MF must ignore sequence order (the paper's point)."""
        model = build_baseline("BPR-MF", dataset, hidden_dim=16, seed=0)
        model.eval()
        inputs, _ = dataset.eval_arrays("test")
        row = inputs[:1].copy()
        items = row[row != 0]
        shuffled = row.copy()
        shuffled[0, -len(items):] = np.random.default_rng(0).permutation(items)
        assert np.allclose(
            model.predict_scores(row), model.predict_scores(shuffled), atol=1e-8
        )

    def test_sasrec_is_order_sensitive(self, dataset):
        model = build_baseline("SASRec", dataset, hidden_dim=16, seed=0)
        model.eval()
        inputs, _ = dataset.eval_arrays("test")
        row = inputs[:1].copy()
        items = row[row != 0]
        if len(items) < 3:
            pytest.skip("sequence too short to permute")
        shuffled = row.copy()
        shuffled[0, -len(items):] = items[::-1]
        assert not np.allclose(model.predict_scores(row), model.predict_scores(shuffled))

    def test_bert4rec_mask_token_is_last_row(self, dataset):
        model = build_baseline("BERT4Rec", dataset, hidden_dim=16, seed=0)
        assert model.mask_token == dataset.num_items + 1
        assert model.item_embedding.num_embeddings == dataset.num_items + 2

    def test_bert4rec_scores_exclude_mask_token(self, dataset):
        model = build_baseline("BERT4Rec", dataset, hidden_dim=16, seed=0)
        inputs, _ = dataset.eval_arrays("test")
        scores = model.predict_scores(inputs[:3])
        assert scores.shape[1] == dataset.vocab_size  # no mask column

    def test_fmlprec_uses_full_band_filters(self, dataset):
        model = build_baseline("FMLP-Rec", dataset, hidden_dim=16, seed=0)
        for layer in model.layers:
            assert np.all(layer.dfs_mask == 1.0)
            assert layer.sfs_mask is None

    def test_coserec_requires_prepare_for_augmentation(self, dataset):
        from repro.baselines.coserec import CoSeRec

        model = CoSeRec(num_items=dataset.num_items, max_len=dataset.max_len, hidden_dim=16)
        row = np.array([0, 0, 1, 2, 3, 4, 5, 6, 7, 8])
        # Without prepare(), augmentation is the identity.
        assert np.array_equal(model._augment_row(row), row)

    def test_duorec_cl_weight_zero_reduces_to_sasrec_loss(self, dataset):
        duo = build_baseline("DuoRec", dataset, hidden_dim=16, seed=0, cl_weight=0.0)
        duo.eval()
        batch = make_batch(dataset, with_positive=True)
        rec = duo.recommendation_loss(batch.input_ids, batch.targets)
        assert np.isclose(float(duo.loss(batch).data), float(rec.data))

    def test_contrastvae_kl_positive(self, dataset):
        model = build_baseline("ContrastVAE", dataset, hidden_dim=16, seed=0)
        batch = make_batch(dataset, with_positive=False)
        mu, logvar = model._posterior(batch.input_ids)
        kl = 0.5 * (mu.data**2 + np.exp(logvar.data) - logvar.data - 1).sum(axis=1)
        assert np.all(kl >= 0)

    def test_gru4rec_hidden_depends_on_history(self, dataset):
        model = build_baseline("GRU4Rec", dataset, hidden_dim=16, seed=0)
        model.eval()
        a = np.zeros((1, dataset.max_len), dtype=np.int64)
        a[0, -1] = 1
        b = a.copy()
        b[0, -2] = 2  # extra history item
        assert not np.allclose(model.predict_scores(a), model.predict_scores(b))
