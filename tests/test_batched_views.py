"""Batched multi-view contrastive encode: equivalence and semantics.

Covers the PR-4 fast path:

- batched (one stacked ``(3B, N, d)`` walk) vs unbatched (three
  sequential encodes) **loss and training-trajectory equivalence** for
  SLIME4Rec and DuoRec, in both dtypes, with ``cl_weight`` zero and
  positive;
- the **per-view dropout stream** contract
  (:func:`repro.nn.workspace.dropout_views` /
  ``F.dropout(views=...)``): a stacked draw consumes each generator
  exactly like V separate per-view draws, in both mask modes;
- **chunked cross-entropy** (``F.cross_entropy(chunk_size=...)``,
  :func:`repro.autograd.functional.linear_cross_entropy`, and the
  model-level ``ce_chunk_size`` knob) against the dense path.
"""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.baselines.duorec import DuoRec
from repro.core import Slime4Rec, SlimeConfig
from repro.data.batching import Batch
from repro.nn.workspace import dropout_view_count, dropout_views, fast_dropout_masks
from repro.optim import Adam


def t(a):
    return Tensor(np.asarray(a, dtype=np.float64))


def random_batch(num_items=30, max_len=12, batch=6, seed=0, with_positive=True):
    rng = np.random.default_rng(seed)
    inputs = rng.integers(1, num_items + 1, size=(batch, max_len))
    inputs[:, : max_len // 3] = 0  # left padding
    targets = rng.integers(1, num_items + 1, size=batch)
    positives = None
    if with_positive:
        positives = rng.integers(1, num_items + 1, size=(batch, max_len))
    return Batch(input_ids=inputs, targets=targets, positive_ids=positives)


def build_slime(batched, dtype="float64", cl_weight=0.1, **overrides):
    cfg = SlimeConfig(
        num_items=30, max_len=12, hidden_dim=16, num_layers=2,
        cl_weight=cl_weight, batched_views=batched, seed=0, dtype=dtype,
        **overrides,
    )
    return Slime4Rec(cfg)


def build_duorec(batched, dtype="float64", cl_weight=0.1):
    return DuoRec(
        num_items=30, max_len=12, hidden_dim=16, num_layers=1, num_heads=2,
        cl_weight=cl_weight, batched_views=batched, seed=0, dtype=dtype,
    )


def train_losses(model, steps=3, seed=0, with_positive=True):
    """Optimizer-coupled loss trajectory: any divergence compounds."""
    model.train()
    optimizer = Adam(model.parameters())
    losses = []
    for step in range(steps):
        batch = random_batch(seed=seed + step, with_positive=with_positive)
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()
        losses.append(float(loss.data))
    return np.array(losses)


# ----------------------------------------------------------------------
# Batched vs unbatched loss equivalence
# ----------------------------------------------------------------------


class TestBatchedViewEquivalence:
    @pytest.mark.parametrize("cl_weight", [0.0, 0.2])
    def test_slime4rec_float64_trajectory_matches(self, cl_weight):
        a = train_losses(build_slime(True, cl_weight=cl_weight))
        b = train_losses(build_slime(False, cl_weight=cl_weight))
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("cl_weight", [0.0, 0.2])
    def test_duorec_float64_trajectory_matches(self, cl_weight):
        a = train_losses(build_duorec(True, cl_weight=cl_weight))
        b = train_losses(build_duorec(False, cl_weight=cl_weight))
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("builder", [build_slime, build_duorec])
    def test_float32_trajectory_matches_loosely(self, builder):
        a = train_losses(builder(True, dtype="float32"))
        b = train_losses(builder(False, dtype="float32"))
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-4)

    def test_missing_positive_falls_back_to_rec_loss(self):
        # Two identically-seeded models so both calls consume identical
        # dropout streams: loss(batch) without positives must be exactly
        # the plain recommendation loss.
        model = build_slime(True)
        twin = build_slime(True)
        batch = random_batch(with_positive=False)
        model.train()
        twin.train()
        loss = model.loss(batch)
        rec = twin.recommendation_loss(batch.input_ids, batch.targets)
        assert float(loss.data) == pytest.approx(float(rec.data), abs=1e-12)

    def test_noise_protocol_uses_reference_path(self):
        """noise_eps > 0 couples views through the batch std -> unbatched."""
        model = build_slime(True, noise_eps=0.1)
        ref = build_slime(False, noise_eps=0.1)
        a = train_losses(model)
        b = train_losses(ref)
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-9)

    def test_gradients_match_unbatched(self):
        batch = random_batch()
        grads = {}
        for batched in (True, False):
            model = build_slime(batched)
            model.train()
            loss = model.loss(batch)
            loss.backward()
            grads[batched] = {
                name: p.grad.copy() for name, p in model.named_parameters()
            }
        assert grads[True].keys() == grads[False].keys()
        for name in grads[True]:
            np.testing.assert_allclose(
                grads[True][name], grads[False][name], rtol=0, atol=1e-9,
                err_msg=name,
            )

    def test_encode_views_rejects_shape_mismatch(self):
        model = build_slime(True)
        with pytest.raises(ValueError):
            model.encode_views(
                (np.zeros((4, 12), dtype=np.int64), np.zeros((3, 12), dtype=np.int64))
            )

    def test_encode_views_needs_two_views(self):
        model = build_slime(True)
        with pytest.raises(ValueError):
            model.encode_views((np.zeros((4, 12), dtype=np.int64),))


# ----------------------------------------------------------------------
# Per-view dropout stream semantics
# ----------------------------------------------------------------------


class TestDropoutViewStreams:
    def test_stacked_draw_equals_per_view_draws_seed_path(self):
        x = np.ones((6, 4, 3))
        stacked = F.dropout(
            Tensor(x), 0.4, training=True, rng=np.random.default_rng(7), views=3
        )
        rng = np.random.default_rng(7)
        parts = [
            F.dropout(Tensor(x[i * 2 : (i + 1) * 2]), 0.4, training=True, rng=rng)
            for i in range(3)
        ]
        np.testing.assert_array_equal(
            stacked.data, np.concatenate([p.data for p in parts], axis=0)
        )

    def test_stacked_draw_equals_per_view_draws_fast_path(self):
        x = np.ones((6, 5))
        with fast_dropout_masks():
            stacked = F.dropout(
                Tensor(x), 0.3, training=True, rng=np.random.default_rng(3), views=3
            )
            rng = np.random.default_rng(3)
            parts = [
                F.dropout(Tensor(x[i * 2 : (i + 1) * 2]), 0.3, training=True, rng=rng)
                for i in range(3)
            ]
        np.testing.assert_array_equal(
            stacked.data, np.concatenate([p.data for p in parts], axis=0)
        )

    def test_context_manager_scopes_view_count(self):
        assert dropout_view_count() == 1
        with dropout_views(3):
            assert dropout_view_count() == 3
            with dropout_views(2):
                assert dropout_view_count() == 2
            assert dropout_view_count() == 3
        assert dropout_view_count() == 1

    def test_context_drives_dropout_like_explicit_views(self):
        x = np.ones((6, 4))
        with dropout_views(2):
            via_context = F.dropout(
                Tensor(x), 0.5, training=True, rng=np.random.default_rng(11)
            )
        explicit = F.dropout(
            Tensor(x), 0.5, training=True, rng=np.random.default_rng(11), views=2
        )
        np.testing.assert_array_equal(via_context.data, explicit.data)

    def test_indivisible_leading_axis_raises(self):
        with pytest.raises(ValueError):
            F.dropout(
                Tensor(np.ones((5, 4))), 0.5, training=True,
                rng=np.random.default_rng(0), views=3,
            )

    def test_bad_view_count_raises(self):
        from repro.nn.workspace import set_dropout_view_count

        with pytest.raises(ValueError):
            set_dropout_view_count(0)

    def test_eval_mode_ignores_views(self):
        a = Tensor(np.ones((5, 4)))
        out = F.dropout(a, 0.5, training=False, rng=np.random.default_rng(0), views=3)
        assert out is a

    def test_view_count_restored_after_raising_forward(self):
        """An exception inside a batched encode must not leak view state."""
        model = build_slime(batched=True)
        model.train()
        bad = random_batch()
        # Sabotage the stacked pass *inside* the dropout_views context:
        # positive_ids with a wrong length makes encode_views raise
        # before, and a raising layer makes encode_states raise after,
        # the count is set.
        assert dropout_view_count() == 1
        with pytest.raises(ValueError):
            model.encode_views((bad.input_ids, bad.input_ids[:, :-1]))
        assert dropout_view_count() == 1

        class Boom(Exception):
            pass

        original = model.encode_states

        def raising_encode(input_ids):
            original(input_ids)  # consume some dropout draws first
            raise Boom()

        model.encode_states = raising_encode
        with pytest.raises(Boom):
            model.encode_views((bad.input_ids, bad.input_ids, bad.input_ids))
        assert dropout_view_count() == 1

    def test_view_count_restored_when_nested_context_body_raises(self):
        with pytest.raises(RuntimeError):
            with dropout_views(3):
                with dropout_views(2):
                    raise RuntimeError("mid-forward failure")
        assert dropout_view_count() == 1

    def test_invalid_count_leaves_state_untouched(self):
        with dropout_views(2):
            with pytest.raises(ValueError):
                with dropout_views(0):
                    pass  # pragma: no cover - never entered
            assert dropout_view_count() == 2
        assert dropout_view_count() == 1


# ----------------------------------------------------------------------
# Chunked cross-entropy
# ----------------------------------------------------------------------


class TestChunkedCrossEntropy:
    @pytest.mark.parametrize("chunk", [1, 5, 32, 1000])
    def test_chunked_matches_dense(self, rng, chunk):
        logits = rng.normal(size=(9, 41))
        targets = rng.integers(0, 41, size=9)
        a = Tensor(logits.copy(), requires_grad=True)
        b = Tensor(logits.copy(), requires_grad=True)
        dense = F.cross_entropy(a, targets)
        chunked = F.cross_entropy(b, targets, chunk_size=chunk)
        dense.backward()
        chunked.backward()
        np.testing.assert_allclose(float(dense.data), float(chunked.data), atol=1e-12)
        np.testing.assert_allclose(a.grad, b.grad, atol=1e-12)

    def test_chunked_respects_ignore_index(self, rng):
        logits = rng.normal(size=(8, 17))
        targets = rng.integers(0, 17, size=8)
        targets[::2] = -1
        a = Tensor(logits.copy(), requires_grad=True)
        b = Tensor(logits.copy(), requires_grad=True)
        dense = F.cross_entropy(a, targets, ignore_index=-1)
        chunked = F.cross_entropy(b, targets, ignore_index=-1, chunk_size=4)
        dense.backward()
        chunked.backward()
        np.testing.assert_allclose(float(dense.data), float(chunked.data), atol=1e-12)
        np.testing.assert_allclose(a.grad, b.grad, atol=1e-12)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_linear_ce_matches_dense_composition(self, rng, dtype):
        atol = 1e-11 if dtype is np.float64 else 1e-4
        user = rng.normal(size=(7, 8)).astype(dtype)
        weight = rng.normal(size=(31, 8)).astype(dtype)
        targets = rng.integers(0, 31, size=7)
        ua, wa = Tensor(user.copy(), requires_grad=True), Tensor(weight.copy(), requires_grad=True)
        ub, wb = Tensor(user.copy(), requires_grad=True), Tensor(weight.copy(), requires_grad=True)
        dense = F.linear_cross_entropy(ua, wa, targets)  # falls back to dense
        chunked = F.linear_cross_entropy(ub, wb, targets, chunk_size=7)
        dense.backward()
        chunked.backward()
        assert chunked.data.dtype == np.dtype(dtype)
        np.testing.assert_allclose(float(dense.data), float(chunked.data), atol=atol)
        np.testing.assert_allclose(ua.grad, ub.grad, atol=atol)
        np.testing.assert_allclose(wa.grad, wb.grad, atol=atol)

    def test_linear_ce_gradcheck(self, rng):
        from repro.autograd.gradcheck import gradcheck

        user = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        weight = Tensor(rng.normal(size=(13, 6)), requires_grad=True)
        targets = rng.integers(0, 13, size=4)
        gradcheck(
            lambda u, w: F.linear_cross_entropy(u, w, targets, chunk_size=5),
            [user, weight],
        )

    def test_linear_ce_rejects_bad_chunk(self, rng):
        user = Tensor(rng.normal(size=(3, 4)))
        weight = Tensor(rng.normal(size=(9, 4)))
        with pytest.raises(ValueError):
            F.linear_cross_entropy(user, weight, np.zeros(3, dtype=np.int64), chunk_size=0)

    def test_linear_ce_rejects_out_of_range_targets(self, rng):
        """Chunked gather must fail loudly like the dense fancy-index would."""
        user = Tensor(rng.normal(size=(3, 4)))
        weight = Tensor(rng.normal(size=(9, 4)))
        bad = np.array([1, 9, 2])  # 9 >= V
        with pytest.raises(IndexError):
            F.linear_cross_entropy(user, weight, bad, chunk_size=4)
        with pytest.raises(IndexError):
            F.linear_cross_entropy(user, weight, np.array([1, -3, 2]), chunk_size=4)

    @pytest.mark.parametrize("batched", [True, False])
    def test_model_ce_chunk_size_matches_dense(self, batched):
        batch = random_batch()
        dense_model = build_slime(batched)
        chunked_model = build_slime(batched, ce_chunk_size=7)
        dense_model.train()
        chunked_model.train()
        dense = dense_model.loss(batch)
        chunked = chunked_model.loss(batch)
        dense.backward()
        chunked.backward()
        np.testing.assert_allclose(float(dense.data), float(chunked.data), atol=1e-10)
        dense_grads = dict(dense_model.named_parameters())
        for name, p in chunked_model.named_parameters():
            np.testing.assert_allclose(
                p.grad, dense_grads[name].grad, atol=1e-10, err_msg=name
            )

    def test_config_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            SlimeConfig(num_items=10, ce_chunk_size=0)

    @pytest.mark.parametrize("chunk", [0, -4])
    def test_cross_entropy_rejects_nonpositive_chunk(self, rng, chunk):
        logits = Tensor(rng.normal(size=(5, 11)))
        targets = rng.integers(0, 11, size=5)
        with pytest.raises(ValueError, match="chunk_size"):
            F.cross_entropy(logits, targets, chunk_size=chunk)

    @pytest.mark.parametrize("chunk", [-1, 0])
    def test_linear_ce_rejects_nonpositive_chunk(self, rng, chunk):
        user = Tensor(rng.normal(size=(3, 4)))
        weight = Tensor(rng.normal(size=(9, 4)))
        with pytest.raises(ValueError, match="chunk_size"):
            F.linear_cross_entropy(user, weight, np.zeros(3, dtype=np.int64), chunk_size=chunk)

    def test_oversized_chunk_clamps_to_dense(self, rng):
        """chunk_size > V is one chunk: bitwise the dense path, no range games."""
        logits = rng.normal(size=(6, 13))
        targets = rng.integers(0, 13, size=6)
        a = Tensor(logits.copy(), requires_grad=True)
        b = Tensor(logits.copy(), requires_grad=True)
        dense = F.cross_entropy(a, targets)
        clamped = F.cross_entropy(b, targets, chunk_size=13_000)
        dense.backward()
        clamped.backward()
        assert float(dense.data) == float(clamped.data)
        np.testing.assert_array_equal(a.grad, b.grad)

        user = rng.normal(size=(4, 5))
        table = rng.normal(size=(13, 5))
        ua, wa = Tensor(user.copy(), requires_grad=True), Tensor(table.copy(), requires_grad=True)
        ub, wb = Tensor(user.copy(), requires_grad=True), Tensor(table.copy(), requires_grad=True)
        dense_lin = F.linear_cross_entropy(ua, wa, targets[:4])
        clamped_lin = F.linear_cross_entropy(ub, wb, targets[:4], chunk_size=999)
        dense_lin.backward()
        clamped_lin.backward()
        assert float(dense_lin.data) == float(clamped_lin.data)
        np.testing.assert_array_equal(ua.grad, ub.grad)
        np.testing.assert_array_equal(wa.grad, wb.grad)
