"""Tests for the experiment CLI."""

import json

import pytest

from repro.experiments.cli import main, _to_jsonable


class TestCli:
    def test_table1_quick(self, capsys):
        assert main(["table1", "--budget", "quick"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "beauty" in out

    def test_json_output_parses(self, capsys):
        main(["table1", "--budget", "quick", "--json"])
        out = capsys.readouterr().out
        payload = out.split("\n", 2)[2]  # skip the "### table1" header
        data = json.loads(payload)
        assert "beauty" in data

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_complexity_runs_without_budget(self, capsys):
        assert main(["complexity", "--budget", "quick"]) == 0
        assert "complexity" in capsys.readouterr().out


class TestJsonable:
    def test_numpy_scalars_and_arrays(self):
        import numpy as np

        out = _to_jsonable({"a": np.float32(1.5), "b": np.arange(3), 3: "x"})
        assert out == {"a": 1.5, "b": [0, 1, 2], "3": "x"}
