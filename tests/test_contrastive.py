"""Tests for the InfoNCE contrastive objective (Eqs. 33-35)."""

import numpy as np
import pytest

from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import Tensor
from repro.core.contrastive import info_nce_loss


def t(data):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=True)


class TestInfoNce:
    def test_aligned_views_give_lower_loss_than_shuffled(self, rng):
        a = rng.normal(size=(16, 8))
        aligned = info_nce_loss(t(a), t(a + 0.01 * rng.normal(size=a.shape)))
        shuffled = info_nce_loss(t(a), t(np.roll(a, 1, axis=0)))
        assert float(aligned.data) < float(shuffled.data)

    def test_perfect_alignment_loss_near_floor(self, rng):
        a = rng.normal(size=(8, 16))
        loss = info_nce_loss(t(a), t(a.copy()), temperature=0.05)
        # With tiny temperature the positive dominates -> loss ~ 0.
        assert float(loss.data) < 0.1

    def test_single_row_batch_returns_zero(self, rng):
        loss = info_nce_loss(t(rng.normal(size=(1, 4))), t(rng.normal(size=(1, 4))))
        assert float(loss.data) == 0.0

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            info_nce_loss(t(rng.normal(size=(4, 8))), t(rng.normal(size=(3, 8))))

    def test_gradients_flow_to_both_views(self, rng):
        a, b = t(rng.normal(size=(6, 5))), t(rng.normal(size=(6, 5)))
        info_nce_loss(a, b).backward()
        assert a.grad is not None and not np.allclose(a.grad, 0)
        assert b.grad is not None and not np.allclose(b.grad, 0)

    def test_gradcheck(self, rng):
        a, b = t(rng.normal(size=(4, 3))), t(rng.normal(size=(4, 3)))
        gradcheck(lambda x, y: info_nce_loss(x, y, temperature=0.5), [a, b])

    def test_scale_invariance_of_cosine(self, rng):
        """Cosine similarity makes the loss invariant to view scaling."""
        a = rng.normal(size=(8, 6))
        b = rng.normal(size=(8, 6))
        base = info_nce_loss(t(a), t(b))
        scaled = info_nce_loss(t(a * 10.0), t(b * 0.1))
        assert np.isclose(float(base.data), float(scaled.data), atol=1e-8)

    def test_temperature_sharpens(self, rng):
        a = rng.normal(size=(8, 6))
        b = a + 0.1 * rng.normal(size=a.shape)
        sharp = info_nce_loss(t(a), t(b), temperature=0.1)
        smooth = info_nce_loss(t(a), t(b), temperature=5.0)
        assert float(sharp.data) < float(smooth.data)

    def test_loss_positive_for_random_views(self, rng):
        a, b = t(rng.normal(size=(16, 8))), t(rng.normal(size=(16, 8)))
        assert float(info_nce_loss(a, b).data) > 0.0
