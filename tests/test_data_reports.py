"""Tests for the dataset diagnostic reports."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.reports import (
    length_histogram,
    popularity_report,
    repeat_ratio,
)


class TestPopularityReport:
    def test_uniform_counts_gini_near_zero(self):
        seqs = [[i + 1] * 3 for i in range(10)]  # every item 3 times
        report = popularity_report(seqs, num_items=10)
        assert report.gini == pytest.approx(0.0, abs=1e-9)
        assert report.coverage == 1.0

    def test_single_dominant_item_high_gini(self):
        seqs = [[1] * 100, [2], [3]]
        report = popularity_report(seqs, num_items=50)
        assert report.gini > 0.9
        assert report.top_10pct_share > 0.9

    def test_empty_dataset(self):
        report = popularity_report([], num_items=10)
        assert report.gini == 0.0 and report.coverage == 0.0

    def test_padding_ignored(self):
        report = popularity_report([[0, 0, 1]], num_items=5)
        assert report.coverage == pytest.approx(0.2)

    @given(
        seqs=st.lists(
            st.lists(st.integers(1, 20), min_size=1, max_size=15),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_bounds_property(self, seqs):
        report = popularity_report(seqs, num_items=20)
        assert 0.0 <= report.gini <= 1.0
        assert 0.0 <= report.top_10pct_share <= 1.0
        assert 0.0 <= report.coverage <= 1.0


class TestLengthHistogram:
    def test_buckets(self):
        seqs = [[1] * 3, [1] * 7, [1] * 15, [1] * 200]
        hist = length_histogram(seqs)
        assert hist["<=5"] == 1
        assert hist["<=10"] == 1
        assert hist["<=20"] == 1
        assert hist[">100"] == 1

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        seqs = [[1] * int(l) for l in rng.integers(1, 150, size=30)]
        hist = length_histogram(seqs)
        assert sum(hist.values()) == 30


class TestRepeatRatio:
    def test_no_repeats(self):
        assert repeat_ratio([[1, 2, 3]]) == 0.0

    def test_all_repeats_after_first(self):
        assert repeat_ratio([[7, 7, 7, 7]]) == pytest.approx(0.75)

    def test_empty(self):
        assert repeat_ratio([]) == 0.0

    def test_synthetic_presets_have_repeats(self):
        """The planted periodic behaviour must produce re-consumption."""
        from repro.data.synthetic import load_preset

        ds = load_preset("beauty", scale=0.1, max_len=10)
        assert repeat_ratio(ds.sequences) > 0.1
