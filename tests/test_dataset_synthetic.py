"""Tests for SequenceDataset and the synthetic workload generators."""

import numpy as np
import pytest

from repro.data.dataset import SequenceDataset
from repro.data.synthetic import PRESETS, SyntheticConfig, generate_interactions, load_preset


def tiny_dataset(max_len=10):
    cfg = SyntheticConfig(num_users=60, num_items=40, seed=3)
    return SequenceDataset(generate_interactions(cfg), name="tiny", max_len=max_len)


class TestGenerator:
    def test_deterministic_given_seed(self):
        cfg = SyntheticConfig(num_users=20, num_items=30, seed=5)
        assert generate_interactions(cfg) == generate_interactions(cfg)

    def test_different_seeds_differ(self):
        a = generate_interactions(SyntheticConfig(num_users=20, num_items=30, seed=1))
        b = generate_interactions(SyntheticConfig(num_users=20, num_items=30, seed=2))
        assert a != b

    def test_items_within_range(self):
        cfg = SyntheticConfig(num_users=10, num_items=25, seed=0)
        assert all(0 <= i < 25 for _, i, _ in generate_interactions(cfg))

    def test_min_length_respected(self):
        cfg = SyntheticConfig(num_users=30, num_items=30, min_length=5, seed=0)
        from collections import Counter

        counts = Counter(u for u, _, _ in generate_interactions(cfg))
        assert min(counts.values()) >= 5

    def test_timestamps_are_per_user_steps(self):
        cfg = SyntheticConfig(num_users=3, num_items=30, seed=0)
        events = generate_interactions(cfg)
        by_user = {}
        for u, _, t in events:
            by_user.setdefault(u, []).append(t)
        for ts in by_user.values():
            assert ts == sorted(ts)

    def test_scaled_config(self):
        cfg = SyntheticConfig(num_users=100, num_items=100).scaled(0.5)
        assert cfg.num_users == 50 and cfg.num_items == 50

    def test_periodic_structure_present(self):
        """Category usage must show spectral mass at the planted period."""
        cfg = SyntheticConfig(
            num_users=50, num_items=40, num_categories=2, user_categories=2,
            min_period=4.0, max_period=32.0, mean_length=64.0,
            noise_prob=0.0, temperature=0.2, seed=9,
        )
        events = generate_interactions(cfg)
        from repro.data.synthetic import _category_assignment

        item_cat, _ = _category_assignment(cfg)
        by_user = {}
        for u, i, _ in events:
            by_user.setdefault(u, []).append(item_cat[i])
        # Average the category-0 indicator spectrum over users.
        spectra = []
        for seq in by_user.values():
            if len(seq) < 32:
                continue
            sig = (np.array(seq[:32]) == 0).astype(float)
            sig = sig - sig.mean()
            spectra.append(np.abs(np.fft.rfft(sig)))
        mean_spec = np.mean(spectra, axis=0)
        # Planted period 4 over a 32-window -> bin 8 should beat the
        # median non-DC bin clearly.
        assert mean_spec[8] > 1.5 * np.median(mean_spec[1:])


class TestPresets:
    def test_all_presets_load_small(self):
        for name in PRESETS:
            ds = load_preset(name, scale=0.08, max_len=10)
            assert ds.num_users > 0 and ds.num_items > 0

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            load_preset("nope")

    def test_ml1m_denser_than_beauty(self):
        ml = load_preset("ml1m", scale=0.3, max_len=20)
        beauty = load_preset("beauty", scale=0.3, max_len=20)
        assert ml.stats().avg_length > 2 * beauty.stats().avg_length
        assert ml.stats().sparsity < beauty.stats().sparsity


class TestSequenceDataset:
    def test_vocab_includes_padding(self):
        ds = tiny_dataset()
        assert ds.vocab_size == ds.num_items + 1

    def test_stats_consistency(self):
        ds = tiny_dataset()
        stats = ds.stats()
        assert stats.num_actions == sum(len(s) for s in ds.sequences)
        assert np.isclose(stats.avg_length, stats.num_actions / stats.num_users)
        assert 0.0 <= stats.sparsity <= 1.0

    def test_train_instances_are_all_prefixes(self):
        ds = tiny_dataset()
        expected = sum(len(s) - 1 for s in ds.train_sequences)
        assert len(ds.train_instances) == expected

    def test_train_instance_targets_follow_prefix(self):
        ds = tiny_dataset()
        for prefix, target in ds.train_instances[:50]:
            # Find the source sequence and check contiguity.
            matches = [
                s for s in ds.train_sequences
                if s[: len(prefix)] == prefix and len(s) > len(prefix)
            ]
            assert any(s[len(prefix)] == target for s in matches)

    def test_eval_arrays_shapes(self):
        ds = tiny_dataset(max_len=12)
        inputs, targets = ds.eval_arrays("test")
        assert inputs.shape == (len(ds.test), 12)
        assert targets.shape == (len(ds.test),)

    def test_eval_arrays_invalid_split(self):
        with pytest.raises(KeyError):
            tiny_dataset().eval_arrays("train")

    def test_same_target_sampling(self):
        ds = tiny_dataset()
        rng = np.random.default_rng(0)
        for idx in range(min(100, len(ds.train_instances))):
            other = ds.sample_same_target(idx, rng)
            assert ds.train_instances[other][1] == ds.train_instances[idx][1]

    def test_same_target_prefers_different_instance(self):
        ds = tiny_dataset()
        rng = np.random.default_rng(0)
        diffs = 0
        checked = 0
        for idx in range(min(200, len(ds.train_instances))):
            target = ds.train_instances[idx][1]
            if len(ds._target_index[target]) > 1:
                checked += 1
                if ds.sample_same_target(idx, rng) != idx:
                    diffs += 1
        assert checked == diffs  # always different when possible

    def test_rejects_empty_after_kcore(self):
        with pytest.raises(ValueError):
            SequenceDataset([(0, 0, 0.0)], k_core=5)

    def test_encode_prefix_pads(self):
        ds = tiny_dataset(max_len=8)
        out = ds.encode_prefix([1, 2])
        assert out.shape == (8,)
        assert out[-2:].tolist() == [1, 2]
