"""Dtype-preservation sweep for the float32 end-to-end compute core.

Three layers of guarantees:

1. **Op level** — every differentiable op in ``autograd.functional``
   and both spectral ops keep float32 inputs in float32, forward and
   backward (complex64 spectra in the filter path).
2. **Module level** — every ``nn`` module built with ``dtype=float32``
   produces float32 activations and float32 parameter/input gradients.
3. **System level** — every registry baseline trains a step fully in
   float32 (parameters, loss, grads, optimizer moments, eval scores),
   and a full SLIME4Rec train+eval run in float32 matches the float64
   run's HR/NDCG within 1e-3 on the synthetic dataset.

The repo-wide conftest pins the *scalar-constant* default dtype to
float64 so gradchecks are tight; these tests pin it back to float32 —
the production configuration — because python-literal constants adopt
that dtype and a float64 constant would silently widen a float32
model's activations (see docs/ARCHITECTURE.md, "Dtype contract").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.spectral import combined_filter, spectral_filter, spectral_filter_mixed
from repro.autograd.tensor import Tensor, set_default_dtype
from repro.baselines import BASELINE_NAMES, build_baseline
from repro.baselines.transformer import TransformerBlock
from repro.core.config import SlimeConfig
from repro.core.encoder import PointwiseFeedForward
from repro.core.filter_mixer import FilterMixerLayer
from repro.core.model import Slime4Rec
from repro.data.batching import BatchIterator
from repro.data.synthetic import load_preset
from repro.evaluation import Evaluator
from repro.nn import (
    GRU,
    Dropout,
    Embedding,
    HorizontalConv,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    VerticalConv,
    init,
)
from repro.optim import Adam, clip_grad_norm
from repro.train.trainer import TrainConfig, Trainer

DTYPES = [np.float32, np.float64]


@pytest.fixture(autouse=True)
def _production_scalar_default():
    """Pin the scalar-constant dtype to float32, as in production."""
    set_default_dtype(np.float32)
    yield
    set_default_dtype(np.float32)


@pytest.fixture
def tiny_dataset():
    return load_preset("beauty", scale=0.05, max_len=16)


def _param_t(rng, shape, dtype):
    return Tensor(rng.standard_normal(shape).astype(dtype), requires_grad=True)


def _assert_graph_dtype(out, inputs, dtype):
    """Forward output and every backward gradient stay in ``dtype``."""
    assert out.dtype == dtype, f"forward produced {out.dtype}"
    F.sum(out).backward()
    for i, t in enumerate(inputs):
        assert t.grad is not None, f"input {i} got no gradient"
        assert t.grad.dtype == dtype, f"grad {i} is {t.grad.dtype}"


# ----------------------------------------------------------------------
# 1. Op-level sweep
# ----------------------------------------------------------------------

OP_CASES = {
    "add_scalar": lambda x: x + 1.5,
    "rsub_scalar": lambda x: 2.0 - x,
    "mul_scalar": lambda x: x * 0.1,
    "div_scalar": lambda x: x / 3.0,
    "rdiv": lambda x: 1.0 / x,
    "neg": lambda x: -x,
    "pow2": lambda x: x ** 2,
    "pow3": lambda x: x ** 3,
    "pow_frac": lambda x: x ** 1.7,
    "exp": F.exp,
    "log": F.log,
    "sqrt": F.sqrt,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "logsigmoid": F.logsigmoid,
    "relu": F.relu,
    "gelu": F.gelu,
    "softmax": lambda x: F.softmax(x, axis=-1),
    "log_softmax": lambda x: F.log_softmax(x, axis=-1),
    "sum_axis": lambda x: F.sum(x, axis=1),
    "mean_all": F.mean,
    "mean_axis": lambda x: F.mean(x, axis=1),
    "var": lambda x: F.var(x, axis=-1),
    "l2_normalize": F.l2_normalize,
    "maximum_scalar": lambda x: F.maximum(x, 0.25),
    "clip": lambda x: F.clip(x, 0.2, 0.8),
    "where": lambda x: F.where(x.data > 0.5, x, x * 0.5),
    "masked_fill": lambda x: F.masked_fill(x, x.data > 0.5, -1e9),
    "concat": lambda x: F.concat([x, x], axis=0),
    "stack": lambda x: F.stack([x, x], axis=0),
    "pad_axis": lambda x: F.pad_axis(x, axis=1, before=1, after=2),
    "reshape": lambda x: F.reshape(x, (x.size,)),
    "transpose": lambda x: F.transpose(x, (1, 0)),
    "getitem": lambda x: x[1:, :2],
    "sum_to": lambda x: F.sum_to(x, (1, x.shape[1])),
}


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("op", sorted(OP_CASES))
def test_functional_op_preserves_dtype(op, dtype, rng):
    # Positive inputs keep log/sqrt/pow well-defined.
    x = Tensor(rng.uniform(0.1, 1.0, size=(3, 4)).astype(dtype), requires_grad=True)
    _assert_graph_dtype(OP_CASES[op](x), [x], dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_binary_ops_preserve_dtype(dtype, rng):
    a = _param_t(rng, (3, 4), dtype)
    b = _param_t(rng, (3, 4), dtype)
    w = _param_t(rng, (4, 2), dtype)
    for out, inputs in [
        (F.add(a, b), [a, b]),
        (F.sub(a, b), [a, b]),
        (F.mul(a, b), [a, b]),
        (F.div(a, F.add(F.mul(b, b), 1.0)), [a, b]),
        (F.matmul(a, w), [a, w]),
        (F.maximum(a, b), [a, b]),
    ]:
        _assert_graph_dtype(out, inputs, dtype)
        a.zero_grad(), b.zero_grad(), w.zero_grad()


@pytest.mark.parametrize("dtype", DTYPES)
def test_loss_ops_preserve_dtype(dtype, rng):
    logits = _param_t(rng, (6, 5), dtype)
    targets = rng.integers(0, 5, size=6)
    _assert_graph_dtype(F.cross_entropy(logits, targets), [logits], dtype)

    logits2 = _param_t(rng, (6, 5), dtype)
    binary = (rng.random((6, 5)) < 0.5).astype(dtype)
    _assert_graph_dtype(
        F.binary_cross_entropy_with_logits(logits2, binary), [logits2], dtype
    )


@pytest.mark.parametrize("dtype", DTYPES)
def test_layer_norm_embedding_dropout_preserve_dtype(dtype, rng):
    x = _param_t(rng, (2, 3, 8), dtype)
    gamma = Tensor(np.ones(8, dtype=dtype), requires_grad=True)
    beta = Tensor(np.zeros(8, dtype=dtype), requires_grad=True)
    _assert_graph_dtype(F.layer_norm(x, gamma, beta), [x, gamma, beta], dtype)

    weight = _param_t(rng, (10, 4), dtype)
    idx = rng.integers(0, 10, size=(2, 5))
    _assert_graph_dtype(F.embedding(weight, idx), [weight], dtype)

    y = _param_t(rng, (4, 6), dtype)
    out = F.dropout(y, 0.5, training=True, rng=np.random.default_rng(0))
    _assert_graph_dtype(out, [y], dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_spectral_ops_preserve_dtype(dtype, rng):
    n, d = 8, 3
    m = n // 2 + 1
    complex_dtype = np.complex64 if dtype == np.float32 else np.complex128
    x = _param_t(rng, (2, n, d), dtype)
    wr, wi = _param_t(rng, (m, d), dtype), _param_t(rng, (m, d), dtype)
    mask = np.ones(m)
    _assert_graph_dtype(spectral_filter(x, wr, wi, mask), [x, wr, wi], dtype)

    x2 = _param_t(rng, (2, n, d), dtype)
    params = [_param_t(rng, (m, d), dtype) for _ in range(4)]
    dfs_mask = np.array([1, 1, 1, 0, 0], dtype=float)
    sfs_mask = 1.0 - dfs_mask
    filt = combined_filter(params[0], params[1], dfs_mask, params[2], params[3], sfs_mask, 0.5)
    assert filt.dtype == complex_dtype
    out = spectral_filter_mixed(
        x2, params[0], params[1], dfs_mask, params[2], params[3], sfs_mask, 0.5, filt=filt
    )
    _assert_graph_dtype(out, [x2] + params, dtype)


# ----------------------------------------------------------------------
# 2. Module-level sweep
# ----------------------------------------------------------------------

MODULE_CASES = {
    "linear": lambda dt, rng: (Linear(8, 4, rng=rng, dtype=dt), (3, 8)),
    "layer_norm": lambda dt, rng: (LayerNorm(8, dtype=dt), (3, 8)),
    "gru": lambda dt, rng: (GRU(8, 8, rng=rng, dtype=dt), (2, 5, 8)),
    "horizontal_conv": lambda dt, rng: (HorizontalConv(6, 8, 3, 4, rng=rng, dtype=dt), (2, 6, 8)),
    "vertical_conv": lambda dt, rng: (VerticalConv(6, 4, rng=rng, dtype=dt), (2, 6, 8)),
    "attention": lambda dt, rng: (
        MultiHeadSelfAttention(8, 2, dropout=0.2, rng=rng, dtype=dt),
        (2, 6, 8),
    ),
    "ffn": lambda dt, rng: (PointwiseFeedForward(8, rng=rng, dtype=dt), (2, 6, 8)),
    "transformer_block": lambda dt, rng: (
        TransformerBlock(8, num_heads=2, dropout=0.2, rng=rng, dtype=dt),
        (2, 6, 8),
    ),
    "filter_mixer": lambda dt, rng: (
        FilterMixerLayer(
            seq_len=8,
            hidden_dim=4,
            dfs_mask=np.array([1, 1, 1, 0, 0], dtype=float),
            sfs_mask=np.array([0, 0, 1, 1, 1], dtype=float),
            gamma=0.5,
            dropout=0.2,
            rng=rng,
            dtype=dt,
        ),
        (2, 8, 4),
    ),
    "filter_mixer_single_branch": lambda dt, rng: (
        FilterMixerLayer(
            seq_len=8,
            hidden_dim=4,
            dfs_mask=np.ones(5),
            sfs_mask=None,
            gamma=0.0,
            dropout=0.2,
            rng=rng,
            dtype=dt,
        ),
        (2, 8, 4),
    ),
}


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("case", sorted(MODULE_CASES))
def test_nn_module_preserves_dtype(case, dtype, rng):
    module, shape = MODULE_CASES[case](dtype, rng)
    for name, param in module.named_parameters():
        assert param.dtype == dtype, f"param {name} initialized as {param.dtype}"
    x = Tensor(rng.standard_normal(shape).astype(dtype), requires_grad=True)
    out = module(x)
    assert out.dtype == dtype
    F.sum(out).backward()
    assert x.grad is not None and x.grad.dtype == dtype
    for name, param in module.named_parameters():
        assert param.grad is not None, f"param {name} got no gradient"
        assert param.grad.dtype == dtype, f"param {name} grad is {param.grad.dtype}"


@pytest.mark.parametrize("dtype", DTYPES)
def test_embedding_module_preserves_dtype(dtype, rng):
    emb = Embedding(10, 4, padding_idx=0, rng=rng, dtype=dtype)
    out = emb(rng.integers(0, 10, size=(2, 5)))
    assert out.dtype == dtype
    F.sum(out).backward()
    assert emb.weight.grad.dtype == dtype


def test_dropout_follows_input_dtype(rng):
    drop = Dropout(0.5, rng=np.random.default_rng(0))
    for dtype in DTYPES:
        out = drop(Tensor(rng.standard_normal((3, 4)).astype(dtype)))
        assert out.dtype == dtype


# ----------------------------------------------------------------------
# 3. Dtype knob plumbing
# ----------------------------------------------------------------------

def test_default_dtype_is_float64():
    assert init.get_default_dtype() == np.float64
    model = Linear(4, 2)
    assert model.weight.dtype == np.float64


def test_default_dtype_context_manager(rng):
    with init.default_dtype("float32"):
        inside = Linear(4, 2, rng=rng)
    outside = Linear(4, 2, rng=rng)
    assert inside.weight.dtype == np.float32
    assert outside.weight.dtype == np.float64


def test_resolve_dtype_rejects_non_float():
    with pytest.raises(ValueError):
        init.resolve_dtype(np.int64)
    with pytest.raises(ValueError):
        init.resolve_dtype("float16")


def test_slime_config_normalizes_dtype():
    assert SlimeConfig(num_items=5, dtype=np.float32).dtype == "float32"
    assert SlimeConfig(num_items=5, dtype="float64").dtype == "float64"
    assert SlimeConfig(num_items=5).dtype is None
    with pytest.raises(ValueError):
        SlimeConfig(num_items=5, dtype="int32")
    with pytest.raises(ValueError):
        SlimeConfig(num_items=5, dtype="floatx")  # unknown name, not TypeError


def test_module_to_casts_parameters(rng):
    cfg = SlimeConfig(num_items=20, max_len=8, hidden_dim=8, num_layers=1, seed=0)
    model = Slime4Rec(cfg)
    assert all(p.dtype == np.float64 for p in model.parameters())
    model.to(np.float32)
    assert all(p.dtype == np.float32 for p in model.parameters())
    assert model.dtype == np.float32
    assert model.config.dtype == "float32"  # config keeps describing the model
    assert cfg.dtype is None  # ...without mutating the caller's shared config
    ids = rng.integers(1, 20, size=(2, 8))
    assert model.predict_scores(ids).dtype == np.float32
    with pytest.raises(ValueError):
        model.to(np.float16)  # same float32/float64 contract as construction


def test_float32_init_is_rounded_float64_init(rng):
    """Same seed, same draws: the float32 model is the cast float64 model."""
    a = Linear(16, 8, rng=np.random.default_rng(7), dtype=np.float64)
    b = Linear(16, 8, rng=np.random.default_rng(7), dtype=np.float32)
    np.testing.assert_array_equal(a.weight.data.astype(np.float32), b.weight.data)


# ----------------------------------------------------------------------
# 4. System-level: every registry baseline, one full float32 step
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", BASELINE_NAMES + ["S3Rec"])
def test_baseline_trains_fully_in_float32(name, tiny_dataset):
    model = build_baseline(name, tiny_dataset, hidden_dim=32, seed=0, dtype="float32")
    assert getattr(model, "dtype", np.float32) == np.float32
    bad = {n: p.dtype for n, p in model.named_parameters() if p.dtype != np.float32}
    assert not bad, f"non-float32 parameters: {bad}"

    iterator = BatchIterator(tiny_dataset, batch_size=32, with_same_target=True, seed=0)
    batch = next(iter(iterator.epoch()))
    optimizer = Adam(model.parameters())
    loss = model.loss(batch)
    assert loss.dtype == np.float32, f"loss widened to {loss.dtype}"
    loss.backward()
    clip_grad_norm(optimizer.params, 5.0)
    bad = {n: p.grad.dtype for n, p in model.named_parameters()
           if p.grad is not None and p.grad.dtype != np.float32}
    assert not bad, f"non-float32 gradients: {bad}"
    optimizer.step()
    assert all(m.dtype == np.float32 for m in optimizer._m)
    assert all(v.dtype == np.float32 for v in optimizer._v)
    assert all(s.dtype == np.float32 for s in optimizer._scratch)
    assert all(p.dtype == np.float32 for p in model.parameters())

    scores = np.asarray(model.predict_scores(batch.input_ids[:4]))
    assert scores.dtype == np.float32, "evaluation must rank in the model dtype"


# ----------------------------------------------------------------------
# 5. System-level: float32 train+eval matches float64 within tolerance
# ----------------------------------------------------------------------

def _train_and_eval(dataset, dtype):
    cfg = SlimeConfig(
        num_items=dataset.num_items,
        max_len=dataset.max_len,
        hidden_dim=32,
        num_layers=2,
        seed=0,
        dtype=dtype,
    )
    model = Slime4Rec(cfg)
    trainer = Trainer(model, dataset, TrainConfig(epochs=2, batch_size=128, patience=0, seed=0))
    history = trainer.fit()
    return model, trainer, history, trainer.test()


def test_float32_full_run_matches_float64_metrics():
    dataset = load_preset("beauty", scale=0.25, max_len=24)
    _, _, hist64, res64 = _train_and_eval(dataset, "float64")
    model32, trainer32, hist32, res32 = _train_and_eval(dataset, "float32")

    # Losses agree to float32 resolution; metrics within the 1e-3 budget.
    np.testing.assert_allclose(hist32.losses, hist64.losses, rtol=1e-5)
    for key, value in res64.metrics.items():
        assert abs(res32.metrics[key] - value) <= 1e-3, (
            f"{key}: float32={res32.metrics[key]:.6f} float64={value:.6f}"
        )

    # After the full run nothing in the float32 model drifted to float64:
    # parameters, gradients, and optimizer state all stayed narrow.
    assert all(p.dtype == np.float32 for p in model32.parameters())
    assert all(
        p.grad.dtype == np.float32
        for p in model32.parameters()
        if p.grad is not None
    )
    opt = trainer32.optimizer
    assert all(buf.dtype == np.float32 for buf in opt._m + opt._v + opt._scratch)

    # And the evaluator ranked float32 scores without widening.
    evaluator = Evaluator(dataset)
    context = model32.score_context()
    assert context.dtype == np.float32
    assert evaluator.ranks(model32, split="test").size > 0
