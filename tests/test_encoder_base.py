"""Tests for the shared SequentialEncoderBase plumbing."""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core.encoder import PointwiseFeedForward, SequentialEncoderBase


class _IdentityEncoder(SequentialEncoderBase):
    """Minimal concrete encoder: hidden states = embeddings."""

    def encode_states(self, input_ids):
        return self.embed(input_ids)


@pytest.fixture
def encoder():
    return _IdentityEncoder(num_items=20, max_len=8, hidden_dim=16, embed_dropout=0.0, seed=0)


class TestEmbeddingLayer:
    def test_embed_shape(self, encoder):
        out = encoder.embed(np.zeros((3, 8), dtype=np.int64))
        assert out.shape == (3, 8, 16)

    def test_wrong_length_rejected(self, encoder):
        with pytest.raises(ValueError, match="length"):
            encoder.embed(np.zeros((3, 9), dtype=np.int64))

    def test_positions_break_translation_symmetry(self, encoder):
        """Same item at different positions gets different embeddings."""
        encoder.eval()
        ids = np.zeros((1, 8), dtype=np.int64)
        ids[0, 3] = 5
        a = encoder.embed(ids).data[0, 3]
        ids2 = np.zeros((1, 8), dtype=np.int64)
        ids2[0, 6] = 5
        b = encoder.embed(ids2).data[0, 6]
        assert not np.allclose(a, b)


class TestPredictionLayer:
    def test_logits_use_item_embedding_table(self, encoder):
        encoder.eval()
        ids = np.zeros((2, 8), dtype=np.int64)
        ids[:, -1] = [1, 2]
        logits = encoder.logits(ids)
        user = encoder.user_representation(ids).data
        manual = user @ encoder.item_embedding.weight.data.T
        assert np.allclose(logits.data, manual, atol=1e-8)

    def test_predict_scores_has_no_graph(self, encoder):
        scores = encoder.predict_scores(np.zeros((1, 8), dtype=np.int64))
        assert isinstance(scores, np.ndarray)

    def test_recommendation_loss_decreases_with_correct_logits(self, encoder):
        ids = np.zeros((4, 8), dtype=np.int64)
        targets = np.array([1, 2, 3, 4])
        loss = encoder.recommendation_loss(ids, targets)
        assert float(loss.data) > 0

    def test_score_table_excludes_extra_tokens(self):
        enc = _IdentityEncoder(
            num_items=20, max_len=8, hidden_dim=16, extra_tokens=1, seed=0
        )
        table = enc._score_table()
        assert table.shape == (21, 16)  # padding + items, no extra token


class TestNoiseInjection:
    def test_zero_eps_is_identity(self, encoder):
        x = Tensor(np.ones((2, 8, 16)))
        assert encoder.inject_noise(x) is x

    def test_positive_eps_perturbs(self):
        enc = _IdentityEncoder(num_items=20, max_len=8, hidden_dim=16, noise_eps=0.5, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 8, 16)))
        out = enc.inject_noise(x)
        assert not np.allclose(out.data, x.data)

    def test_constant_representation_receives_no_noise(self):
        """Noise is scaled by std(x); a constant signal stays constant."""
        enc = _IdentityEncoder(num_items=20, max_len=8, hidden_dim=16, noise_eps=0.5, seed=0)
        x = Tensor(np.ones((2, 8, 16)))
        assert np.allclose(enc.inject_noise(x).data, x.data)

    def test_noise_scales_with_representation_std(self):
        enc = _IdentityEncoder(num_items=20, max_len=8, hidden_dim=16, noise_eps=0.1, seed=0)
        rng = np.random.default_rng(0)
        small = Tensor(rng.normal(0, 1e-3, (2, 8, 16)))
        big = Tensor(rng.normal(0, 10.0, (2, 8, 16)))
        small_delta = np.abs(enc.inject_noise(small).data - small.data).max()
        big_delta = np.abs(enc.inject_noise(big).data - big.data).max()
        assert big_delta > 100 * small_delta


class TestPointwiseFeedForward:
    def test_shape_preserved(self, rng):
        ffn = PointwiseFeedForward(16, rng=rng)
        out = ffn(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_inner_dim_expansion(self, rng):
        ffn = PointwiseFeedForward(8, inner_dim=32, rng=rng)
        assert ffn.fc1.out_features == 32
        assert ffn.fc2.in_features == 32

    def test_nonlinearity_present(self, rng):
        """FFN must not be linear: f(2x) != 2 f(x) in general."""
        ffn = PointwiseFeedForward(8, rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(1, 3, 8)))
        fx = ffn(x).data
        f2x = ffn(Tensor(2 * x.data)).data
        assert not np.allclose(f2x, 2 * fx, atol=1e-6)
