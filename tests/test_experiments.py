"""Tests for the experiment harness (tiny budgets)."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentBudget,
    ascii_heatmap,
    run_complexity_comparison,
    run_fig7_filter_visualization,
    run_table1_dataset_stats,
)
from repro.experiments.common import run_model


@pytest.fixture(scope="module")
def budget():
    b = ExperimentBudget.quick()
    b.datasets = ["beauty"]
    b.epochs = 1
    return b


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {"table1", "table2", "table3", "table4", "table5",
                    "fig3", "fig4", "fig5", "fig6", "fig7", "complexity"}
        assert expected == set(EXPERIMENTS)

    def test_budget_presets(self):
        quick = ExperimentBudget.quick()
        small = ExperimentBudget.small()
        assert quick.scale < small.scale <= 1.0

    def test_budget_caches_datasets(self, budget):
        assert budget.dataset("beauty") is budget.dataset("beauty")


class TestRunners:
    def test_table1_stats(self, budget):
        rows = run_table1_dataset_stats(budget)
        assert "beauty" in rows
        assert rows["beauty"]["users"] > 0
        assert 0 < rows["beauty"]["sparsity"] < 1

    def test_run_model_returns_metrics(self, budget):
        metrics = run_model("FMLP-Rec", budget.dataset("beauty"), budget)
        assert set(metrics) == {"HR@5", "HR@10", "NDCG@5", "NDCG@10"}
        assert all(0 <= v <= 1 for v in metrics.values())

    def test_run_model_accepts_overrides(self, budget):
        metrics = run_model(
            "SLIME4Rec", budget.dataset("beauty"), budget, alpha=0.2, slide_mode=3
        )
        assert all(np.isfinite(list(metrics.values())))

    def test_fig7_visualization_outputs(self, budget):
        out = run_fig7_filter_visualization(budget)
        assert out["dfs_amplitude"].shape[0] == 4  # layers
        assert set(np.unique(out["recaptured_by_sfs"])) <= {0, 1}
        # SFS always covers the whole band -> recapture fills DFS gaps.
        combined = np.clip(out["dfs_coverage"] + out["recaptured_by_sfs"], 0, 1)
        assert combined.sum() == out["dfs_coverage"].shape[0]

    def test_complexity_comparison_shape(self):
        out = run_complexity_comparison(seq_lens=(8, 16), repeats=1)
        assert set(out) == {"filter_mixer", "self_attention"}
        assert set(out["filter_mixer"]) == {8, 16}
        assert all(v > 0 for v in out["filter_mixer"].values())


class TestAsciiHeatmap:
    def test_contains_layers(self):
        art = ascii_heatmap(np.random.default_rng(0).random((3, 20)), title="demo")
        assert art.startswith("demo")
        assert art.count("layer") == 3

    def test_constant_matrix_does_not_crash(self):
        art = ascii_heatmap(np.ones((2, 5)))
        assert "layer 0" in art

    def test_wide_matrix_downsampled(self):
        art = ascii_heatmap(np.random.default_rng(0).random((1, 500)), width=40)
        line = art.splitlines()[0]
        assert len(line) < 80
