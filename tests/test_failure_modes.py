"""Failure-injection and adversarial-input tests.

Production code meets malformed inputs; these tests pin down how the
library fails (loudly and precisely) and what it tolerates (extreme but
legal values) rather than assuming the happy path.
"""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core import Slime4Rec, SlimeConfig
from repro.data.batching import Batch
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.optim import Adam
from repro.train import TrainConfig, Trainer
from repro.train.trainer import Trainer as TrainerClass


@pytest.fixture(scope="module")
def dataset():
    cfg = SyntheticConfig(num_users=40, num_items=30, seed=11)
    return SequenceDataset(generate_interactions(cfg), max_len=8)


class TestExtremeValues:
    def test_softmax_survives_huge_logits(self):
        out = F.softmax(Tensor(np.array([[1e30, -1e30, 0.0]])))
        assert np.all(np.isfinite(out.data))
        assert np.isclose(out.data.sum(), 1.0)

    def test_cross_entropy_survives_huge_logits(self):
        loss = F.cross_entropy(Tensor(np.array([[1e20, -1e20]])), np.array([0]))
        assert np.isfinite(loss.data)

    def test_sigmoid_extreme_inputs_bounded(self):
        out = F.sigmoid(Tensor(np.array([1e10, -1e10])))
        assert np.all((out.data >= 0) & (out.data <= 1))
        assert np.all(np.isfinite(out.data))

    def test_layer_norm_constant_input_finite(self):
        out = F.layer_norm(
            Tensor(np.full((2, 4), 7.0)), Tensor(np.ones(4)), Tensor(np.zeros(4))
        )
        assert np.all(np.isfinite(out.data))

    def test_l2_normalize_zero_vector_finite(self):
        out = F.l2_normalize(Tensor(np.zeros((1, 4))))
        assert np.all(np.isfinite(out.data))


class TestAdversarialBatches:
    def test_all_padding_batch(self, dataset):
        """A batch of empty histories must not crash or produce NaN."""
        model = Slime4Rec(
            SlimeConfig(num_items=dataset.num_items, max_len=8, hidden_dim=16, seed=0)
        )
        batch = Batch(
            input_ids=np.zeros((4, 8), dtype=np.int64),
            targets=np.ones(4, dtype=np.int64),
        )
        loss = model.loss(batch)
        assert np.isfinite(loss.data)
        loss.backward()

    def test_single_row_batch(self, dataset):
        model = Slime4Rec(
            SlimeConfig(num_items=dataset.num_items, max_len=8, hidden_dim=16,
                        cl_weight=0.5, seed=0)
        )
        batch = Batch(
            input_ids=np.ones((1, 8), dtype=np.int64),
            targets=np.array([2]),
            positive_ids=np.ones((1, 8), dtype=np.int64),
        )
        # Contrastive term degrades to zero for B=1 instead of NaN.
        loss = model.loss(batch)
        assert np.isfinite(loss.data)

    def test_out_of_range_item_id_raises(self, dataset):
        model = Slime4Rec(
            SlimeConfig(num_items=dataset.num_items, max_len=8, hidden_dim=16, seed=0)
        )
        bad = np.full((1, 8), dataset.num_items + 50, dtype=np.int64)
        with pytest.raises(IndexError):
            model.predict_scores(bad)


class TestOptimizerRobustness:
    def test_nan_gradient_detected_by_clip(self):
        """clip_grad_norm reports a NaN norm instead of hiding it."""
        from repro.optim import clip_grad_norm

        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([np.nan, 1.0])
        assert np.isnan(clip_grad_norm([p], 5.0))

    def test_adam_recovers_after_zero_grad_epochs(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([p], lr=0.1)
        p.grad = np.zeros(2)
        opt.step()
        p.grad = np.ones(2)
        opt.step()
        assert np.all(np.isfinite(p.data))


class TestTrainerEdgeCases:
    def test_batch_size_larger_than_dataset(self, dataset):
        model = Slime4Rec(
            SlimeConfig(num_items=dataset.num_items, max_len=8, hidden_dim=16, seed=0)
        )
        trainer = Trainer(
            model, dataset, TrainConfig(epochs=1, batch_size=100_000, patience=0)
        )
        history = trainer.fit()
        assert len(history.losses) == 1

    def test_scheduler_integration(self, dataset):
        from repro.optim import StepLR

        model = Slime4Rec(
            SlimeConfig(num_items=dataset.num_items, max_len=8, hidden_dim=16, seed=0)
        )
        trainer = TrainerClass(
            model,
            dataset,
            TrainConfig(epochs=1, batch_size=64, patience=0),
            scheduler_factory=lambda opt: StepLR(opt, step_size=1, gamma=0.5),
        )
        trainer.fit()
        assert trainer.optimizer.lr < trainer.config.lr

    def test_zero_epochs_is_a_noop(self, dataset):
        model = Slime4Rec(
            SlimeConfig(num_items=dataset.num_items, max_len=8, hidden_dim=16, seed=0)
        )
        before = {k: v.copy() for k, v in model.state_dict().items()}
        trainer = Trainer(model, dataset, TrainConfig(epochs=0, batch_size=64))
        history = trainer.fit()
        assert history.losses == []
        after = model.state_dict()
        assert all(np.allclose(before[k], after[k]) for k in before)
