"""Crash/resume, durability, fault-injection, and numeric-guard tests.

The headline contract: a training run killed at any trip point and
resumed from its checkpoint store produces a trajectory (losses,
validation metrics, final parameters) **bitwise-identical** to a run
that was never interrupted — across models (SLIME4Rec and a CE
baseline) and dtypes (float64 and float32).
"""

import json

import numpy as np
import pytest

from repro.autograd.workspace import generator_state, set_generator_state
from repro.baselines import build_baseline
from repro.data.batching import BatchIterator
from repro.data.dataset import SequenceDataset
from repro.data.negative_sampling import NegativeSampler
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.optim import SGD, Adam, clip_grad_norm
from repro.train import TrainConfig, Trainer
from repro.utils import faults
from repro.utils.faults import FaultInjector, InjectedCrash, InjectedIOError
from repro.utils.io import (
    CheckpointStore,
    load_checkpoint,
    save_checkpoint,
)

EPOCHS = 3
BATCH = 32


@pytest.fixture(scope="module")
def dataset():
    cfg = SyntheticConfig(num_users=60, num_items=40, seed=8)
    return SequenceDataset(generate_interactions(cfg), max_len=10)


def build_model(dataset, name, dtype="float64"):
    return build_baseline(
        name, dataset, hidden_dim=16, num_layers=1, seed=0, dtype=dtype
    )


def make_trainer(model, dataset, name, **config_overrides):
    config_overrides.setdefault("epochs", EPOCHS)
    config_overrides.setdefault("batch_size", BATCH)
    config_overrides.setdefault("patience", 0)
    config = TrainConfig(**config_overrides)
    return Trainer(model, dataset, config, with_same_target=(name == "SLIME4Rec"))


@pytest.fixture(scope="module")
def reference(dataset):
    """Uninterrupted reference runs, cached per (model, dtype)."""
    cache = {}

    def get(name, dtype):
        key = (name, dtype)
        if key not in cache:
            model = build_model(dataset, name, dtype)
            trainer = make_trainer(model, dataset, name)
            history = trainer.fit()
            cache[key] = {
                "losses": list(history.losses),
                "valid": [dict(m) for m in history.valid_metrics],
                "params": {k: v.copy() for k, v in model.state_dict().items()},
                "steps_per_epoch": len(trainer.iterator),
            }
        return cache[key]

    return get


def assert_matches_reference(history, model, ref):
    assert history.losses == ref["losses"]
    assert history.valid_metrics == ref["valid"]
    state = model.state_dict()
    assert set(state) == set(ref["params"])
    for key, value in state.items():
        assert np.array_equal(value, ref["params"][key]), key


# ----------------------------------------------------------------------
# Tentpole: kill-point matrix — train, kill, resume, compare bitwise
# ----------------------------------------------------------------------

class TestKillResumeBitwise:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("model_name", ["SLIME4Rec", "SASRec"])
    @pytest.mark.parametrize(
        "kill", ["mid_epoch", "at_save", "post_save_pre_rotate"]
    )
    def test_killed_run_resumes_bitwise_identically(
        self, dataset, reference, tmp_path, kill, model_name, dtype
    ):
        ref = reference(model_name, dtype)
        spe = ref["steps_per_epoch"]
        assert spe >= 3, "geometry too small for a mid-epoch kill"
        every = spe - 1  # guarantees mid-epoch periodic saves
        # First periodic save inside epoch 2 — by then epoch 1's
        # boundary checkpoint exists, so every kill leaves a resumable
        # store.
        save_step = next(s for s in range(every, 10 * spe, every) if s > spe)
        if kill == "mid_epoch":
            injector = FaultInjector().crash_at("trainer.step", at=spe + 1)
        elif kill == "at_save":
            # Dies before any bytes of the new checkpoint are written;
            # resume falls back to the epoch-1 boundary checkpoint.
            injector = FaultInjector().crash_at("checkpoint.pre_save", at=save_step)
        else:
            # Dies after the atomic publish + manifest update but before
            # rotation pruning; resume uses the just-published file.
            injector = FaultInjector().crash_at("checkpoint.post_save", at=save_step)

        store_dir = tmp_path / "store"
        overrides = dict(
            checkpoint_dir=str(store_dir), checkpoint_every=every, keep_last=2
        )
        model = build_model(dataset, model_name, dtype)
        trainer = make_trainer(model, dataset, model_name, **overrides)
        with faults.inject(injector):
            with pytest.raises(InjectedCrash):
                trainer.fit()
        assert injector.fired, "the scheduled fault never tripped"
        assert CheckpointStore(store_dir).latest_step() is not None

        # A fresh process: rebuild model and trainer the same way.
        model2 = build_model(dataset, model_name, dtype)
        trainer2 = make_trainer(model2, dataset, model_name, **overrides)
        history = trainer2.fit(resume_from=store_dir)
        assert_matches_reference(history, model2, ref)

    def test_checkpointing_does_not_perturb_training(
        self, dataset, reference, tmp_path
    ):
        """Enabling the store must not change the trajectory at all."""
        ref = reference("SLIME4Rec", "float64")
        model = build_model(dataset, "SLIME4Rec")
        trainer = make_trainer(
            model, dataset, "SLIME4Rec",
            checkpoint_dir=str(tmp_path), checkpoint_every=3,
        )
        history = trainer.fit()
        assert_matches_reference(history, model, ref)

    def test_resume_from_single_file_checkpoint(self, dataset, reference, tmp_path):
        """fit(resume_from=<file>) accepts one archive, not just a store."""
        ref = reference("SASRec", "float64")
        store_dir = tmp_path / "store"
        model = build_model(dataset, "SASRec")
        trainer = make_trainer(
            model, dataset, "SASRec", checkpoint_dir=str(store_dir)
        )
        injector = FaultInjector().crash_at("trainer.epoch", at=0)
        with faults.inject(injector):
            with pytest.raises(InjectedCrash):
                trainer.fit()
        newest = sorted(store_dir.glob("ckpt-*.npz"))[-1]

        model2 = build_model(dataset, "SASRec")
        trainer2 = make_trainer(
            model2, dataset, "SASRec", checkpoint_dir=str(store_dir)
        )
        history = trainer2.fit(resume_from=newest)
        assert_matches_reference(history, model2, ref)

    def test_resume_rejects_plain_model_checkpoint(self, dataset, tmp_path):
        model = build_model(dataset, "SASRec")
        path = save_checkpoint(model, tmp_path / "weights.npz")
        trainer = make_trainer(build_model(dataset, "SASRec"), dataset, "SASRec")
        with pytest.raises(ValueError, match="not a run-state checkpoint"):
            trainer.fit(resume_from=path)


class TestCorruptRecovery:
    def test_truncated_newest_falls_back_with_warning(
        self, dataset, reference, tmp_path
    ):
        """Corrupt the newest checkpoint: resume warns, uses the
        previous one, and still reproduces the reference bitwise."""
        ref = reference("SLIME4Rec", "float64")
        store_dir = tmp_path / "store"
        model = build_model(dataset, "SLIME4Rec")
        trainer = make_trainer(
            model, dataset, "SLIME4Rec", checkpoint_dir=str(store_dir)
        )
        injector = FaultInjector().crash_at("trainer.epoch", at=1)
        with faults.inject(injector):
            with pytest.raises(InjectedCrash):
                trainer.fit()
        files = sorted(store_dir.glob("ckpt-*.npz"))
        assert len(files) == 2  # epoch-boundary saves for epochs 1 and 2
        data = files[-1].read_bytes()
        files[-1].write_bytes(data[: len(data) // 3])

        model2 = build_model(dataset, "SLIME4Rec")
        trainer2 = make_trainer(
            model2, dataset, "SLIME4Rec", checkpoint_dir=str(store_dir)
        )
        with pytest.warns(RuntimeWarning, match="failed verification"):
            history = trainer2.fit(resume_from=store_dir)
        assert_matches_reference(history, model2, ref)


# ----------------------------------------------------------------------
# Numeric guards
# ----------------------------------------------------------------------

def poison_loss_once(model, at_call):
    """Make the ``at_call``-th model.loss return NaN (a transient fault)."""
    original = model.loss
    counter = {"n": 0}

    def poisoned(batch):
        loss = original(batch)
        if counter["n"] == at_call:
            loss.data = loss.data * np.nan
        counter["n"] += 1
        return loss

    model.loss = poisoned
    return counter


class TestNumericGuards:
    def test_raise_policy_fails_fast(self, dataset):
        model = build_model(dataset, "SASRec")
        poison_loss_once(model, at_call=2)
        trainer = make_trainer(model, dataset, "SASRec")
        with pytest.raises(FloatingPointError, match="non-finite loss at step 2"):
            trainer.fit()

    def test_skip_policy_drops_the_step_and_continues(self, dataset, reference):
        model = build_model(dataset, "SASRec")
        poison_loss_once(model, at_call=2)
        trainer = make_trainer(
            model, dataset, "SASRec", guard_policy="skip"
        )
        history = trainer.fit()
        assert history.nonfinite_losses == 1
        assert history.skipped_steps == 1
        assert len(history.losses) == EPOCHS
        assert all(np.isfinite(history.losses))
        assert "guards[" in history.summary()
        # The skipped update changes the trajectory relative to the
        # clean reference (one fewer optimizer step in epoch 1).
        ref = reference("SASRec", "float64")
        assert history.losses != ref["losses"]

    def test_skip_policy_counts_nonfinite_grads(self, dataset):
        model = build_model(dataset, "SASRec")
        trainer = make_trainer(model, dataset, "SASRec", guard_policy="skip")
        original = model.loss
        counter = {"n": 0}

        class GradPoisoningLoss:
            """Delegates to the real loss tensor, then corrupts a grad."""

            def __init__(self, loss):
                self._loss = loss
                self.data = loss.data

            def backward(self):
                self._loss.backward()
                param = trainer.optimizer.params[0]
                param.grad = np.full_like(param.grad, np.inf)

        def poisoned(batch):
            loss = original(batch)
            if counter["n"] == 1:
                loss = GradPoisoningLoss(loss)
            counter["n"] += 1
            return loss

        model.loss = poisoned
        history = trainer.fit()
        assert history.nonfinite_grads == 1
        assert history.nonfinite_losses == 0
        assert history.skipped_steps == 1

    def test_rollback_policy_recovers_transient_fault_bitwise(
        self, dataset, reference, tmp_path
    ):
        """A one-off NaN under the rollback policy: restore the last
        checkpoint, replay, and end up bitwise-equal to the clean run."""
        ref = reference("SASRec", "float64")
        spe = ref["steps_per_epoch"]
        model = build_model(dataset, "SASRec")
        # Poison a step in epoch 2, after epoch 1's boundary checkpoint.
        poison_loss_once(model, at_call=spe + 1)
        trainer = make_trainer(
            model, dataset, "SASRec",
            guard_policy="rollback", checkpoint_dir=str(tmp_path),
        )
        history = trainer.fit()
        assert history.rollbacks == 1
        assert history.nonfinite_losses == 1
        assert_matches_reference(history, model, ref)

    def test_rollback_gives_up_on_deterministic_divergence(
        self, dataset, reference, tmp_path
    ):
        ref = reference("SASRec", "float64")
        spe = ref["steps_per_epoch"]
        model = build_model(dataset, "SASRec")
        trainer = make_trainer(
            model, dataset, "SASRec",
            guard_policy="rollback", checkpoint_dir=str(tmp_path),
            max_rollbacks=2,
        )
        original = model.loss
        step_of = lambda: trainer._global_step  # noqa: E731

        def poisoned(batch):
            loss = original(batch)
            if step_of() == spe + 1:  # recurs on every replay
                loss.data = loss.data * np.nan
            return loss

        model.loss = poisoned
        with pytest.raises(FloatingPointError, match="giving up after 2 rollback"):
            trainer.fit()
        assert trainer.history.rollbacks == 2

    def test_rollback_without_any_checkpoint_raises(self, dataset, tmp_path):
        model = build_model(dataset, "SASRec")
        poison_loss_once(model, at_call=0)  # before the first save
        trainer = make_trainer(
            model, dataset, "SASRec",
            guard_policy="rollback", checkpoint_dir=str(tmp_path),
        )
        with pytest.raises(FloatingPointError, match="no checkpoint exists yet"):
            trainer.fit()

    def test_rollback_requires_checkpoint_dir(self, dataset):
        model = build_model(dataset, "SASRec")
        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            make_trainer(model, dataset, "SASRec", guard_policy="rollback")

    def test_unknown_guard_policy_rejected(self, dataset):
        model = build_model(dataset, "SASRec")
        with pytest.raises(ValueError, match="guard_policy"):
            make_trainer(model, dataset, "SASRec", guard_policy="ignore")

    def test_spike_counter_wiring(self, dataset):
        model = build_model(dataset, "SASRec")
        # Any loss beats a vanishing threshold once the window warms up.
        trainer = make_trainer(
            model, dataset, "SASRec", spike_factor=1e-9, epochs=1
        )
        history = trainer.fit()
        assert history.loss_spikes > 0
        assert f"loss_spikes={history.loss_spikes}" in history.summary()


class TestClipGradNormNonFinite:
    class _P:
        def __init__(self, grad):
            self.grad = None if grad is None else np.asarray(grad, dtype=np.float64)

    def test_finite_grads_clip_as_before(self):
        params = [self._P([3.0, 4.0])]  # norm 5
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == 5.0
        assert np.allclose(params[0].grad, [0.6, 0.8])

    def test_nan_grad_returns_nan_and_leaves_grads_unscaled(self):
        params = [self._P([1.0, np.nan]), self._P([2.0, 2.0])]
        norm = clip_grad_norm(params, max_norm=1.0)
        assert np.isnan(norm)
        # Unscaled: scaling by nan/inf would poison every parameter.
        assert np.array_equal(params[1].grad, [2.0, 2.0])

    def test_inf_grad_returns_inf_and_leaves_grads_unscaled(self):
        params = [self._P([np.inf]), self._P([7.0])]
        norm = clip_grad_norm(params, max_norm=1.0)
        assert np.isinf(norm)
        assert np.array_equal(params[1].grad, [7.0])

    def test_none_grads_skipped(self):
        params = [self._P(None), self._P([0.0])]
        assert clip_grad_norm(params, max_norm=1.0) == 0.0


# ----------------------------------------------------------------------
# RNG stream capture/restore
# ----------------------------------------------------------------------

class TestGeneratorState:
    def test_round_trip_reproduces_the_stream(self):
        rng = np.random.default_rng(123)
        rng.standard_normal(100)  # advance mid-stream
        state = generator_state(rng)
        first = rng.standard_normal(10)
        set_generator_state(rng, state)
        assert np.array_equal(rng.standard_normal(10), first)

    def test_state_is_a_deep_copy(self):
        rng = np.random.default_rng(0)
        state = generator_state(rng)
        rng.standard_normal(5)
        assert state == generator_state(np.random.default_rng(0))

    def test_state_is_json_serializable(self):
        # The trainer embeds generator states in JSON metadata.
        rng = np.random.default_rng(7)
        rng.integers(0, 100, size=33)
        state = generator_state(rng)
        restored = json.loads(json.dumps(state))
        fresh = np.random.default_rng(0)
        set_generator_state(fresh, restored)
        assert np.array_equal(fresh.integers(0, 1 << 32, 8),
                              rng.integers(0, 1 << 32, 8))


class TestModuleRngStateDict:
    def test_round_trip_restores_dropout_streams(self, dataset):
        model = build_model(dataset, "SLIME4Rec")
        batch = one_batch(dataset, with_same_target=True)
        model.train()
        snapshot = model.rng_state_dict()
        assert snapshot  # dropout generators exist
        first = float(model.loss(batch).data)  # train mode draws dropout masks
        model.load_rng_state_dict(snapshot)
        replay = float(model.loss(batch).data)
        assert first == replay

    def test_unexpected_key_raises(self, dataset):
        model = build_model(dataset, "SASRec")
        snapshot = model.rng_state_dict()
        snapshot["nonexistent.stream"] = {"x": 1}
        with pytest.raises(KeyError, match="nonexistent.stream"):
            model.load_rng_state_dict(snapshot)

    def test_missing_key_raises(self, dataset):
        model = build_model(dataset, "SASRec")
        snapshot = model.rng_state_dict()
        assert snapshot
        snapshot.pop(next(iter(snapshot)))
        with pytest.raises(KeyError):
            model.load_rng_state_dict(snapshot)


class TestNegativeSamplerState:
    def test_round_trip_resumes_mid_stream(self):
        sampler = NegativeSampler(num_items=50, strategy="uniform", seed=3)
        sampler.sample((8, 4))  # advance mid-stream
        state = sampler.rng_state_dict()
        first = sampler.sample((8, 4))
        fresh = NegativeSampler(num_items=50, strategy="uniform", seed=999)
        fresh.load_rng_state_dict(state)
        assert np.array_equal(fresh.sample((8, 4)), first)

    def test_geometry_mismatch_rejected(self):
        sampler = NegativeSampler(num_items=50, strategy="uniform", seed=3)
        state = sampler.rng_state_dict()
        other = NegativeSampler(num_items=51, strategy="uniform", seed=3)
        with pytest.raises(ValueError, match="num_items"):
            other.load_rng_state_dict(state)


class TestBatchIteratorResume:
    @staticmethod
    def collect(iterator, epochs):
        out = []
        for _ in range(epochs):
            out.append(list(iterator.epoch()))
        return out

    @staticmethod
    def assert_batches_equal(a, b):
        assert np.array_equal(a.input_ids, b.input_ids)
        assert np.array_equal(a.targets, b.targets)
        if a.positive_ids is None:
            assert b.positive_ids is None
        else:
            assert np.array_equal(a.positive_ids, b.positive_ids)

    @pytest.mark.parametrize("with_same_target", [False, True])
    def test_mid_epoch_resume_replays_the_stream(self, dataset, with_same_target):
        make = lambda seed=5: BatchIterator(  # noqa: E731
            dataset, batch_size=16, with_same_target=with_same_target, seed=seed
        )
        full = self.collect(make(), epochs=2)

        partial = make()
        consumed = 0
        for batch in partial.epoch():
            consumed += 1
            if consumed == 2:
                break
        state = partial.state_dict()
        assert state["position"] == 2

        resumed = make(seed=12345)  # construction seed is irrelevant post-restore
        resumed.load_state_dict(state)
        rest = list(resumed.epoch())
        assert len(rest) == len(full[0]) - 2
        for got, want in zip(rest, full[0][2:]):
            self.assert_batches_equal(got, want)
        # The *next* epoch must also match: the generator position after
        # the replayed epoch equals the uninterrupted one.
        for got, want in zip(list(resumed.epoch()), full[1]):
            self.assert_batches_equal(got, want)

    def test_epoch_boundary_resume(self, dataset):
        make = lambda: BatchIterator(dataset, batch_size=16, seed=5)  # noqa: E731
        full = self.collect(make(), epochs=2)

        first = make()
        list(first.epoch())
        state = first.state_dict()
        assert state["position"] == 0

        resumed = make()
        resumed.load_state_dict(state)
        for got, want in zip(list(resumed.epoch()), full[1]):
            self.assert_batches_equal(got, want)

    def test_out_of_range_position_rejected(self, dataset):
        iterator = BatchIterator(dataset, batch_size=16, seed=5)
        state = iterator.state_dict()
        state["position"] = len(iterator) + 1
        with pytest.raises(ValueError, match="out of range"):
            iterator.load_state_dict(state)


# ----------------------------------------------------------------------
# Optimizer state round trips
# ----------------------------------------------------------------------

def one_batch(dataset, with_same_target=False):
    iterator = BatchIterator(
        dataset, batch_size=32, with_same_target=with_same_target, seed=0
    )
    return next(iter(iterator.epoch()))


def train_steps(model, optimizer, batch, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()


class TestOptimizerState:
    def test_adam_round_trip_is_bitwise(self, dataset):
        batch = one_batch(dataset)
        model = build_model(dataset, "SASRec")
        adam = Adam(model.parameters(), lr=1e-3)
        train_steps(model, adam, batch, 3)
        state = adam.state_dict()
        assert state["step"] == 3

        model2 = build_model(dataset, "SASRec")
        model2.load_state_dict(model.state_dict())
        model2.load_rng_state_dict(model.rng_state_dict())  # dropout streams
        adam2 = Adam(model2.parameters(), lr=1e-3)
        adam2.load_state_dict(state)

        train_steps(model, adam, batch, 2)
        train_steps(model2, adam2, batch, 2)
        for a, b in zip(model.parameters(), model2.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_adam_rejects_wrong_buffer_count(self, dataset):
        model = build_model(dataset, "SASRec")
        adam = Adam(model.parameters())
        state = adam.state_dict()
        state["m"] = state["m"][:-1]
        with pytest.raises(ValueError, match="m"):
            adam.load_state_dict(state)

    def test_adam_rejects_shape_mismatch(self, dataset):
        model = build_model(dataset, "SASRec")
        adam = Adam(model.parameters())
        state = adam.state_dict()
        state["v"][0] = np.zeros((2, 2), dtype=state["v"][0].dtype)
        with pytest.raises(ValueError, match="v buffer 0 mismatch"):
            adam.load_state_dict(state)

    def test_sgd_momentum_round_trip(self, dataset):
        batch = one_batch(dataset)
        model = build_model(dataset, "SASRec")
        sgd = SGD(model.parameters(), lr=1e-2, momentum=0.9)
        train_steps(model, sgd, batch, 2)
        state = sgd.state_dict()

        model2 = build_model(dataset, "SASRec")
        model2.load_state_dict(model.state_dict())
        model2.load_rng_state_dict(model.rng_state_dict())  # dropout streams
        sgd2 = SGD(model2.parameters(), lr=1e-2, momentum=0.9)
        sgd2.load_state_dict(state)

        train_steps(model, sgd, batch, 1)
        train_steps(model2, sgd2, batch, 1)
        for a, b in zip(model.parameters(), model2.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_sgd_momentum_presence_mismatch_rejected(self, dataset):
        model = build_model(dataset, "SASRec")
        with_momentum = SGD(model.parameters(), momentum=0.9)
        plain = SGD(model.parameters())
        with pytest.raises(ValueError, match="momentum"):
            plain.load_state_dict(with_momentum.state_dict())


# ----------------------------------------------------------------------
# Satellite: dtype validation on Module.load_state_dict
# ----------------------------------------------------------------------

class TestLoadStateDictDtype:
    def test_dtype_mismatch_names_the_offending_key(self, dataset):
        model64 = build_model(dataset, "SASRec", dtype="float64")
        model32 = build_model(dataset, "SASRec", dtype="float32")
        with pytest.raises(ValueError, match="dtype mismatch for '"):
            model64.load_state_dict(model32.state_dict())
        # Two-pass validation: nothing was partially assigned.
        fresh = build_model(dataset, "SASRec", dtype="float64")
        for a, b in zip(model64.parameters(), fresh.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_cast_true_converts_explicitly(self, dataset):
        model64 = build_model(dataset, "SASRec", dtype="float64")
        model32 = build_model(dataset, "SASRec", dtype="float32")
        model64.load_state_dict(model32.state_dict(), cast=True)
        for param, source in zip(
            model64.parameters(), model32.parameters()
        ):
            assert param.data.dtype == np.float64
            assert np.array_equal(param.data, source.data.astype(np.float64))


# ----------------------------------------------------------------------
# Durable writes: atomic publish + checksummed rotated store
# ----------------------------------------------------------------------

class _ArrayBag:
    def __init__(self, **arrays):
        self._arrays = arrays

    def state_dict(self):
        return dict(self._arrays)


def payload(value, n=3):
    return {f"w{i}": np.full((4, 4), value + i, dtype=np.float64) for i in range(n)}


class TestAtomicWrites:
    def test_injected_write_failure_preserves_the_old_file(self, tmp_path):
        target = tmp_path / "model.npz"
        save_checkpoint(_ArrayBag(w=np.arange(3.0)), target)
        before = target.read_bytes()
        with faults.inject(FaultInjector().io_error_at("checkpoint.write")):
            with pytest.raises(InjectedIOError):
                save_checkpoint(_ArrayBag(w=np.arange(9.0)), target)
        assert target.read_bytes() == before
        assert not list(tmp_path.glob(".*tmp*")), "temp file leaked"
        restored = load_checkpoint(target)
        assert np.array_equal(restored["state"]["w"], np.arange(3.0))

    def test_save_checkpoint_records_metadata(self, tmp_path):
        path = save_checkpoint(
            _ArrayBag(w=np.zeros(2)), tmp_path / "m", metadata={"epoch": 4}
        )
        result = load_checkpoint(path)
        assert result["metadata"]["epoch"] == 4
        assert result["metadata"]["model_class"] == "_ArrayBag"


class TestCheckpointStore:
    def test_rotation_keeps_last_k(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=2)
        for step in range(1, 6):
            store.save(payload(step), {"format": "t", "step": step}, step=step)
        entries = store.entries()
        assert [e["step"] for e in entries] == [4, 5]
        assert sorted(p.name for p in tmp_path.glob("ckpt-*.npz")) == [
            "ckpt-0000000004.npz",
            "ckpt-0000000005.npz",
        ]
        assert store.latest_step() == 5

    def test_load_latest_verifies_checksum_and_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=3)
        for step in (1, 2):
            store.save(payload(step), {"step": step}, step=step)
        newest = tmp_path / "ckpt-0000000002.npz"
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 2])
        with pytest.warns(RuntimeWarning, match="falling back to the previous"):
            result = store.load_latest()
        assert result["step"] == 1
        assert np.array_equal(result["state"]["w0"], payload(1)["w0"])

    def test_all_corrupt_raises_filenotfound(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=3)
        store.save(payload(1), {"step": 1}, step=1)
        (tmp_path / "ckpt-0000000001.npz").write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning):
            with pytest.raises(FileNotFoundError, match="no loadable checkpoint"):
                store.load_latest()

    def test_empty_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "nowhere")
        assert store.latest_step() is None
        with pytest.raises(FileNotFoundError):
            store.load_latest()

    def test_missing_manifest_rebuilt_from_directory(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=3)
        for step in (3, 7):
            store.save(payload(step), {"step": step}, step=step)
        (tmp_path / CheckpointStore.MANIFEST).unlink()
        rebuilt = CheckpointStore(tmp_path, keep_last=3)
        assert [e["step"] for e in rebuilt.entries()] == [3, 7]
        assert rebuilt.load_latest()["step"] == 7

    def test_corrupt_manifest_warns_and_degrades(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=3)
        store.save(payload(1), {"step": 1}, step=1)
        (tmp_path / CheckpointStore.MANIFEST).write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="rebuilding the entry list"):
            assert [e["step"] for e in store.entries()] == [1]

    def test_injected_io_error_during_save_leaves_store_loadable(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=3)
        store.save(payload(1), {"step": 1}, step=1)
        with faults.inject(FaultInjector().io_error_at("checkpoint.write")):
            with pytest.raises(OSError):
                store.save(payload(2), {"step": 2}, step=2)
        assert not list(tmp_path.glob(".*tmp*"))
        assert store.load_latest()["step"] == 1

    def test_crash_after_rotation_loses_nothing(self, tmp_path):
        # checkpoint.end trips after rotation completes: a crash there
        # must find the new checkpoint published and the prune already
        # applied — the fully-durable end state.
        store = CheckpointStore(tmp_path, keep_last=2)
        for step in (1, 2):
            store.save(payload(step), {"step": step}, step=step)
        with faults.inject(FaultInjector().crash_at("checkpoint.end", at=3)):
            with pytest.raises(InjectedCrash):
                store.save(payload(3), {"step": 3}, step=3)
        assert not list(tmp_path.glob(".*tmp*"))
        assert store.load_latest()["step"] == 3
        assert [e["step"] for e in store.entries()] == [2, 3]

    def test_keep_last_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointStore(tmp_path, keep_last=0)


# ----------------------------------------------------------------------
# Fault injector mechanics
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_noop_without_installed_injector(self):
        faults.trip("trainer.step", 5)  # must not raise
        assert faults.active_injector() is None

    def test_crash_matches_scheduled_index_exactly(self):
        injector = FaultInjector().crash_at("trainer.step", at=2)
        with faults.inject(injector):
            faults.trip("trainer.step", 0)
            faults.trip("trainer.step", 1)
            with pytest.raises(InjectedCrash) as info:
                faults.trip("trainer.step", 2)
        assert info.value.point == "trainer.step"
        assert info.value.index == 2
        assert injector.fired == [("trainer.step", 2)]
        assert injector.counts["trainer.step"] == 3

    def test_each_fault_fires_at_most_once(self):
        injector = FaultInjector().crash_at("trainer.epoch")
        with faults.inject(injector):
            with pytest.raises(InjectedCrash):
                faults.trip("trainer.epoch")
            faults.trip("trainer.epoch")  # re-trip after "resume": no fire

    def test_unindexed_trip_counts_occurrences(self):
        injector = FaultInjector().io_error_at("checkpoint.write", at=1)
        with faults.inject(injector):
            faults.trip("checkpoint.write")  # occurrence 0
            with pytest.raises(InjectedIOError):
                faults.trip("checkpoint.write")  # occurrence 1

    def test_injected_crash_is_not_an_exception(self):
        # `except Exception` recovery paths must not swallow a crash.
        assert not issubclass(InjectedCrash, Exception)
        assert issubclass(InjectedIOError, OSError)

    def test_injector_uninstalled_on_exit(self):
        injector = FaultInjector()
        with faults.inject(injector):
            assert faults.active_injector() is injector
        assert faults.active_injector() is None


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------

class TestCliFlags:
    @pytest.mark.parametrize(
        "argv",
        [
            ["--resume"],
            ["--checkpoint-every", "10"],
            ["--guard-policy", "rollback"],
        ],
    )
    def test_flags_requiring_checkpoint_dir_fail_fast(self, argv, capsys):
        from repro.train.cli import main

        with pytest.raises(SystemExit):
            main(["--model", "SASRec", *argv])
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_end_to_end_train_and_resume(self, tmp_path, capsys):
        from repro.train.cli import main

        base = [
            "--model", "SASRec", "--dataset", "beauty", "--scale", "0.1",
            "--max-len", "8", "--hidden-dim", "8", "--num-layers", "1",
            "--epochs", "1", "--batch-size", "64", "--quiet",
            "--checkpoint-dir", str(tmp_path / "run"),
        ]
        assert main(base) == 0
        assert (tmp_path / "run" / "manifest.json").exists()
        capsys.readouterr()
        assert main([*base, "--epochs", "2", "--resume"]) == 0
        store = CheckpointStore(tmp_path / "run")
        meta = store.load_latest()["metadata"]
        assert meta["epoch"] == 2
