"""Tests for the frequency ramp structure geometry (Eqs. 16-25)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.filters import (
    coverage_report,
    dfs_windows,
    ramp_masks,
    sfs_windows,
    window_mask,
)


class TestDfsWindows:
    def test_alpha_one_covers_everything_every_layer(self):
        # The paper: alpha=1 reduces to FMLP-Rec's global filter (step=0).
        for start, end in dfs_windows(26, 4, 1.0):
            assert (start, end) == (0, 26)

    def test_layer0_at_high_end_for_arrow_left(self):
        windows = dfs_windows(26, 4, 0.25, "high_to_low")
        assert windows[0][1] == 26  # ends at the top bin
        assert windows[-1][0] == 0  # final layer reaches DC

    def test_low_to_high_is_reverse(self):
        left = dfs_windows(26, 4, 0.25, "high_to_low")
        right = dfs_windows(26, 4, 0.25, "low_to_high")
        assert right == list(reversed(left))

    def test_window_size_matches_alpha(self):
        for start, end in dfs_windows(26, 4, 0.3):
            assert end - start == round(0.3 * 26)

    def test_single_layer_uses_topmost_window(self):
        (window,) = dfs_windows(20, 1, 0.5, "high_to_low")
        assert window == (10, 20)

    def test_monotonic_descent(self):
        windows = dfs_windows(51, 8, 0.2, "high_to_low")
        starts = [s for s, _ in windows]
        assert starts == sorted(starts, reverse=True)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            dfs_windows(10, 2, 1.5)

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            dfs_windows(10, 2, 0.5, "sideways")

    @given(
        m=st.integers(2, 64),
        layers=st.integers(1, 8),
        alpha=st.floats(0.05, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_windows_always_in_bounds(self, m, layers, alpha):
        for start, end in dfs_windows(m, layers, alpha):
            assert 0 <= start < end <= m


class TestSfsWindows:
    @given(m=st.integers(1, 100), layers=st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_exact_partition_property(self, m, layers):
        """The union of SFS bands is [0, M) with no gaps or overlaps."""
        windows = sfs_windows(m, layers)
        covered = np.zeros(m, dtype=int)
        for start, end in windows:
            covered[start:end] += 1
        assert np.all(covered == 1)

    def test_high_to_low_layer0_top_band(self):
        windows = sfs_windows(20, 4, "high_to_low")
        assert windows[0] == (15, 20)
        assert windows[-1] == (0, 5)

    def test_low_to_high_ascending(self):
        windows = sfs_windows(20, 4, "low_to_high")
        assert windows == [(0, 5), (5, 10), (10, 15), (15, 20)]

    def test_band_size_is_m_over_l(self):
        for start, end in sfs_windows(24, 4):
            assert end - start == 6

    def test_uneven_split_still_partitions(self):
        windows = sfs_windows(10, 3)
        total = sum(e - s for s, e in windows)
        assert total == 10


class TestWindowMask:
    def test_mask_values(self):
        mask = window_mask(6, (1, 4))
        assert mask.tolist() == [0, 1, 1, 1, 0, 0]

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValueError):
            window_mask(5, (2, 7))

    def test_full_window(self):
        assert window_mask(4, (0, 4)).sum() == 4


class TestRampMasks:
    def test_structure(self):
        dfs, sfs = ramp_masks(26, 4, 0.3, "high_to_low", "high_to_low")
        assert len(dfs) == 4 and len(sfs) == 4
        assert all(m.shape == (26,) for m in dfs + sfs)

    def test_sfs_recaptures_dfs_gaps_when_alpha_below_beta(self):
        """Paper Section III-B3: when alpha < 1/L the static split covers
        the frequencies the dynamic windows skip over."""
        m, layers, alpha = 40, 4, 0.1  # alpha < 1/L = 0.25
        dfs, sfs = ramp_masks(m, layers, alpha, "high_to_low", "high_to_low")
        dfs_union = np.clip(np.sum(dfs, axis=0), 0, 1)
        sfs_union = np.clip(np.sum(sfs, axis=0), 0, 1)
        assert dfs_union.sum() < m  # DFS alone leaves gaps
        assert sfs_union.sum() == m  # SFS covers them
        combined = np.clip(dfs_union + sfs_union, 0, 1)
        assert combined.sum() == m

    def test_coverage_report_detects_gaps_iff_alpha_below_beta(self):
        """The Section III-B3 inequality: gaps appear exactly when the
        dynamic window is smaller than the slide step, i.e. alpha < 1/L
        (up to rounding at band edges)."""
        m, layers = 80, 4
        gappy = coverage_report(m, layers, alpha=0.1)  # 0.1 < 1/4
        full = coverage_report(m, layers, alpha=0.5)  # 0.5 > 1/4
        assert gappy["dfs_has_gaps"]
        assert not full["dfs_has_gaps"]
        assert gappy["sfs_covered"] == m  # SFS always complete
        assert gappy["combined_covered"] == m

    @given(
        m=st.integers(8, 80),
        layers=st.integers(2, 8),
        alpha=st.floats(0.05, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_combined_coverage_always_complete_property(self, m, layers, alpha):
        """DFS may skip bins, but DFS+SFS never does — the design's
        core guarantee (Table III's rationale)."""
        report = coverage_report(m, layers, alpha)
        assert report["combined_covered"] == m

    def test_mode4_windows_aligned_in_direction(self):
        """In mode 4 both window sequences descend in frequency together."""
        dfs, sfs = ramp_masks(30, 3, 0.3, "high_to_low", "high_to_low")
        dfs_centers = [np.average(np.arange(30), weights=m) for m in dfs]
        sfs_centers = [np.average(np.arange(30), weights=m) for m in sfs]
        assert dfs_centers == sorted(dfs_centers, reverse=True)
        assert sfs_centers == sorted(sfs_centers, reverse=True)
