"""Static-graph tape capture & replay, pinned bitwise against the dynamic engine.

The contract under test (``repro.autograd.graph``): a training step
captured once into a :class:`~repro.autograd.graph.Tape` and replayed
on subsequent same-shape batches produces **bitwise-identical** losses,
gradients and parameter trajectories to the dynamic engine — across
models, dtypes, batched-view modes and dropout mask modes — and every
divergence the tape cannot absorb (ragged batch, ambient config change,
parameter rebind, replay-unsafe op) triggers the documented fallback or
recapture instead of silently wrong numbers.
"""

import logging

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.graph import (
    GraphCaptureError,
    TapeExecutor,
    capture,
    is_capturing,
)
from repro.autograd.tensor import Tensor
from repro.baselines import build_baseline
from repro.baselines.fmlprec import FMLPRec
from repro.baselines.gru4rec import GRU4Rec
from repro.baselines.s3rec import S3Rec
from repro.baselines.sasrec import SASRec
from repro.core import Slime4Rec, SlimeConfig
from repro.data.batching import Batch
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.nn.workspace import dropout_views, fast_dropout_masks
from repro.optim import Adam, clip_grad_norm
from repro.train import TrainConfig, Trainer

NUM_ITEMS = 30
MAX_LEN = 12


def random_batch(seed=0, batch=6, with_positive=True):
    rng = np.random.default_rng(seed)
    inputs = rng.integers(1, NUM_ITEMS + 1, size=(batch, MAX_LEN))
    inputs[:, : MAX_LEN // 3] = 0  # left padding
    targets = rng.integers(1, NUM_ITEMS + 1, size=batch)
    positives = None
    if with_positive:
        positives = rng.integers(1, NUM_ITEMS + 1, size=(batch, MAX_LEN))
    return Batch(input_ids=inputs, targets=targets, positive_ids=positives)


def build_slime(dtype="float64", batched=True, **overrides):
    cfg = SlimeConfig(
        num_items=NUM_ITEMS, max_len=MAX_LEN, hidden_dim=16, num_layers=2,
        cl_weight=0.1, batched_views=batched, seed=0, dtype=dtype, **overrides,
    )
    return Slime4Rec(cfg)


def build_model(name, dtype="float64"):
    if name == "SLIME4Rec":
        return build_slime(dtype)
    cls = {"SASRec": SASRec, "FMLP-Rec": FMLPRec, "GRU4Rec": GRU4Rec}[name]
    kwargs = dict(num_items=NUM_ITEMS, max_len=MAX_LEN, hidden_dim=16, seed=0, dtype=dtype)
    if name != "GRU4Rec":
        kwargs["num_layers"] = 1
    return cls(**kwargs)


def run_trajectory(model, static, steps=10, seed=0, with_positive=True):
    """Optimizer-coupled run: per-step losses and per-step named grads.

    The grad snapshot is taken *after* clipping, so the comparison pins
    the whole backward + clip + Adam pipeline, not just the forward.
    """
    model.train()
    optimizer = Adam(model.parameters())
    executor = TapeExecutor(model) if static else None
    losses, grads = [], []
    for step in range(steps):
        batch = random_batch(seed=seed + step, with_positive=with_positive)
        optimizer.zero_grad()
        if static:
            result = executor.step(batch)
            loss_value = result.loss
            result.backward()
        else:
            loss = model.loss(batch)
            loss_value = float(loss.data)
            loss.backward()
        clip_grad_norm(optimizer.params, 1.0)
        grads.append(
            {n: p.grad.copy() for n, p in model.named_parameters() if p.grad is not None}
        )
        optimizer.step()
        losses.append(loss_value)
    return losses, grads, executor


def assert_trajectories_bitwise(dynamic, static):
    d_losses, d_grads, _ = dynamic
    s_losses, s_grads, executor = static
    assert d_losses == s_losses  # float equality == bitwise for finite values
    for step, (dg, sg) in enumerate(zip(d_grads, s_grads)):
        assert dg.keys() == sg.keys()
        for name in dg:
            assert np.array_equal(dg[name], sg[name]), f"step {step}: {name}"
    # The static run must actually have replayed, not fallen back.
    stats = executor.stats()
    assert stats["captures"] == 1
    assert stats["replays"] == len(s_losses) - 1
    assert stats["fallback_steps"] == 0
    assert stats["disabled_reason"] is None


# ----------------------------------------------------------------------
# Tentpole: replay-vs-dynamic bitwise equality matrix
# ----------------------------------------------------------------------


class TestReplayBitwiseMatrix:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("name", ["SLIME4Rec", "SASRec", "FMLP-Rec", "GRU4Rec"])
    def test_losses_and_grads_bitwise(self, name, dtype):
        with_positive = name == "SLIME4Rec"
        dynamic = run_trajectory(
            build_model(name, dtype), static=False, with_positive=with_positive
        )
        static = run_trajectory(
            build_model(name, dtype), static=True, with_positive=with_positive
        )
        assert_trajectories_bitwise(dynamic, static)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_slime_unbatched_views_bitwise(self, dtype):
        dynamic = run_trajectory(build_slime(dtype, batched=False), static=False)
        static = run_trajectory(build_slime(dtype, batched=False), static=True)
        assert_trajectories_bitwise(dynamic, static)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_slime_fast_mask_mode_bitwise(self, dtype):
        with fast_dropout_masks():
            dynamic = run_trajectory(build_slime(dtype), static=False)
            static = run_trajectory(build_slime(dtype), static=True)
        assert_trajectories_bitwise(dynamic, static)

    def test_trainer_flag_end_to_end_bitwise(self, small_dataset):
        """SlimeConfig(static_graph=True) through Trainer.fit, vs dynamic."""
        params = {}
        for static in (False, True):
            model, trainer = fit_slime(small_dataset, static=static, epochs=2)
            params[static] = model.state_dict()
            if static:
                stats = trainer._executor.stats()
                assert stats["captures"] == 1 and stats["replays"] > 0
        assert params[False].keys() == params[True].keys()
        for name in params[False]:
            assert np.array_equal(params[False][name], params[True][name]), name


# ----------------------------------------------------------------------
# Capture -> checkpoint -> resume, bitwise vs an uninterrupted dynamic run
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_dataset():
    cfg = SyntheticConfig(num_users=60, num_items=40, seed=8)
    return SequenceDataset(generate_interactions(cfg), max_len=10)


def fit_slime(dataset, static, epochs, checkpoint_dir=None, resume_from=None):
    model = build_baseline(
        "SLIME4Rec", dataset, hidden_dim=16, num_layers=1, seed=0,
        static_graph=static,
    )
    config = TrainConfig(
        epochs=epochs, batch_size=32, patience=0, verbose=False,
        checkpoint_dir=checkpoint_dir,
    )
    trainer = Trainer(model, dataset, config, with_same_target=True)
    trainer.fit(resume_from=resume_from)
    return model, trainer


class TestCaptureCheckpointResume:
    def test_static_resume_matches_uninterrupted_dynamic_run(
        self, small_dataset, tmp_path
    ):
        reference, _ = fit_slime(small_dataset, static=False, epochs=2)
        store = str(tmp_path / "store")
        # Static run stops after epoch 1 (boundary checkpoint written) ...
        fit_slime(small_dataset, static=True, epochs=1, checkpoint_dir=store)
        # ... and a fresh static trainer resumes it to epoch 2.  The tape
        # is re-captured from restored weights + restored RNG streams, so
        # the continued trajectory must land exactly on the uninterrupted
        # dynamic run's parameters.
        resumed, trainer = fit_slime(
            small_dataset, static=True, epochs=2,
            checkpoint_dir=store, resume_from=store,
        )
        stats = trainer._executor.stats()
        assert stats["captures"] == 1 and stats["replays"] > 0
        ref_state = reference.state_dict()
        for name, value in resumed.state_dict().items():
            assert np.array_equal(value, ref_state[name]), name


# ----------------------------------------------------------------------
# Tape invalidation and fallback rules
# ----------------------------------------------------------------------


class TestTapeInvalidation:
    def test_ragged_final_batch_falls_back_per_step(self):
        model = build_slime()
        model.train()
        twin = build_slime()
        twin.train()
        executor = TapeExecutor(model)
        expected_modes = ["capture", "dynamic", "replay"]
        for step, batch_size in enumerate((6, 4, 6)):
            batch = random_batch(seed=step, batch=batch_size)
            result = executor.step(batch)
            assert result.mode == expected_modes[step]
            result.backward()
            ref = twin.loss(batch)
            ref.backward()
            assert result.loss == float(ref.data)
        stats = executor.stats()
        assert stats["fallback_steps"] == 1
        assert stats["recaptures"] == 0  # the tape survived the ragged step

    def test_dropout_view_count_change_triggers_recapture(self):
        model = build_slime()
        model.train()
        executor = TapeExecutor(model)
        assert executor.step(random_batch(seed=0)).mode == "capture"
        with dropout_views(3):
            # Ambient view count diverged from the captured snapshot.
            assert executor.step(random_batch(seed=1)).mode == "capture"
        assert executor.stats()["recaptures"] == 1

    def test_training_mode_flip_triggers_recapture(self):
        model = build_slime()
        model.train()
        executor = TapeExecutor(model)
        assert executor.step(random_batch(seed=0)).mode == "capture"
        model.eval()
        assert executor.step(random_batch(seed=1)).mode == "capture"
        assert executor.stats()["recaptures"] == 1

    def test_load_state_dict_triggers_recapture(self):
        model = build_slime()
        model.train()
        executor = TapeExecutor(model)
        assert executor.step(random_batch(seed=0)).mode == "capture"
        # Same values, fresh payload arrays: the binding snapshot must
        # notice the rebind, not compare contents.
        model.load_state_dict(model.state_dict())
        assert executor.step(random_batch(seed=1)).mode == "capture"
        assert executor.stats()["recaptures"] == 1

    def test_dtype_cast_recaptures_and_reallocates_grad_buffers(self):
        model = build_slime()
        model.train()
        executor = TapeExecutor(model)
        result = executor.step(random_batch(seed=0))
        result.backward()
        old_ids = {n: id(p.grad) for n, p in model.named_parameters() if p.grad is not None}
        model.to(np.float32)  # cast=True-style payload change: new dtype
        result = executor.step(random_batch(seed=1))
        assert result.mode == "capture"
        result.backward()
        for name, p in model.named_parameters():
            if p.grad is None:
                continue
            assert p.grad.dtype == np.float32, name
            assert id(p.grad) != old_ids[name], name

    def test_capture_error_names_the_unsafe_op(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with capture():
            with pytest.raises(GraphCaptureError, match="_replayless_backward"):
                F._make(x.data * 2.0, (x,), _replayless_backward)
        assert not is_capturing()

    def test_noise_eps_disables_tape_and_stays_bitwise(self):
        model = build_slime(noise_eps=0.1)
        model.train()
        twin = build_slime(noise_eps=0.1)
        twin.train()
        executor = TapeExecutor(model)
        for step in range(3):
            batch = random_batch(seed=step)
            result = executor.step(batch)
            assert result.mode == "dynamic"
            result.backward()
            ref = twin.loss(batch)
            ref.backward()
            # The failed first capture rewound the RNG streams, so even
            # the step that tripped the fallback matches bitwise.
            assert result.loss == float(ref.data)
            grads = dict(twin.named_parameters())
            for name, p in model.named_parameters():
                if p.grad is not None:
                    assert np.array_equal(p.grad, grads[name].grad), name
        stats = executor.stats()
        assert stats["captures"] == 0
        assert stats["fallback_steps"] == 3
        assert "inject_noise" in stats["disabled_reason"]

    def test_s3rec_pretrain_switch_disables_capture(self):
        model = S3Rec(
            num_items=NUM_ITEMS, max_len=MAX_LEN, hidden_dim=16,
            num_layers=1, seed=0, pretrain_steps=2,
        )
        model.train()
        executor = TapeExecutor(model)
        result = executor.step(random_batch(seed=0, with_positive=False))
        assert result.mode == "dynamic"
        assert "S3Rec" in executor.stats()["disabled_reason"]

    def test_fallback_reason_logged_once(self, caplog):
        model = build_slime()
        model.train()
        executor = TapeExecutor(model)
        executor.step(random_batch(seed=0))
        with caplog.at_level(logging.WARNING, logger="repro.autograd.graph"):
            executor.step(random_batch(seed=1, batch=4))
            executor.step(random_batch(seed=2, batch=4))
        geometry_warnings = [
            r for r in caplog.records if "geometry diverged" in r.getMessage()
        ]
        assert len(geometry_warnings) == 1


def _replayless_backward(grad):  # pragma: no cover - never called
    raise AssertionError("backward of a capture-rejected op must not run")


# ----------------------------------------------------------------------
# Grad-buffer ownership under repeated replays
# ----------------------------------------------------------------------


class TestGradBufferOwnership:
    def test_buffers_zeroed_not_reallocated_across_replays(self):
        model = build_slime()
        model.train()
        executor = TapeExecutor(model)
        buffer_ids = []
        for step in range(4):
            result = executor.step(random_batch(seed=step))
            result.backward()
            buffer_ids.append(
                {n: id(p.grad) for n, p in model.named_parameters() if p.grad is not None}
            )
        for later in buffer_ids[1:]:
            assert later == buffer_ids[0]

    def test_captures_interleaved_with_dynamic_steps(self):
        """The double-release regression: three capture/replay rounds with
        plain dynamic steps in between must keep grads correct — dynamic
        backward rebinds ``p.grad`` to fresh (borrowed) arrays, and the
        next replay must re-seed its owned buffers rather than scale or
        accumulate into the orphaned ones."""
        model = build_slime()
        model.train()
        twin = build_slime()
        twin.train()
        executor = TapeExecutor(model)
        for step in range(9):
            batch = random_batch(seed=step)
            if step % 3 == 2:  # every third step runs outside the executor
                loss = model.loss(batch)
                loss.backward()
                loss_value = float(loss.data)
            else:
                result = executor.step(batch)
                result.backward()
                loss_value = result.loss
            ref = twin.loss(batch)
            ref.backward()
            assert loss_value == float(ref.data), f"step {step}"
            grads = dict(twin.named_parameters())
            for name, p in model.named_parameters():
                if p.grad is not None:
                    assert np.array_equal(p.grad, grads[name].grad), f"step {step}: {name}"
            for m in (model, twin):
                for p in m.parameters():
                    p.zero_grad()

    def test_clip_rebinds_shared_borrowed_grads(self):
        """A backward that hands the *same* array to two parents must not
        double-scale under clipping: borrowed grads are rebound, not
        scaled in place."""
        x = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        y = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        z = F.add(x, y)
        z.backward(np.array([3.0, 4.0]))
        assert x.grad is y.grad  # shared borrowed reference
        norm = clip_grad_norm([x, y], 1.0)
        expected = np.array([3.0, 4.0]) * (1.0 / norm)
        np.testing.assert_allclose(x.grad, expected)
        np.testing.assert_allclose(y.grad, expected)

    def test_clip_scales_executor_buffers_in_place(self):
        model = build_slime()
        model.train()
        optimizer = Adam(model.parameters())
        executor = TapeExecutor(model)
        for step in range(2):
            optimizer.zero_grad()
            result = executor.step(random_batch(seed=step))
            result.backward()
            before = {
                n: id(p.grad) for n, p in model.named_parameters() if p.grad is not None
            }
            clip_grad_norm(optimizer.params, 1e-6)  # tiny cap: always scales
            after = {
                n: id(p.grad) for n, p in model.named_parameters() if p.grad is not None
            }
            assert before == after  # owned buffers scaled in place
            optimizer.step()
