"""End-to-end integration tests crossing all subsystem boundaries."""

import numpy as np
import pytest

from repro import (
    SlimeConfig,
    Slime4Rec,
    TrainConfig,
    Trainer,
    build_baseline,
    load_preset,
)
from repro.evaluation import Evaluator


@pytest.fixture(scope="module")
def dataset():
    return load_preset("beauty", scale=0.15, max_len=16)


class _RandomModel:
    """Uniform random scorer — the floor any trained model must beat."""

    def __init__(self, vocab):
        self._vocab = vocab
        self._rng = np.random.default_rng(0)

    def eval(self):
        return self

    def predict_scores(self, input_ids):
        return self._rng.random((input_ids.shape[0], self._vocab))


class TestEndToEnd:
    def test_slime4rec_beats_random_scorer(self, dataset):
        model = Slime4Rec(
            SlimeConfig(num_items=dataset.num_items, max_len=16, hidden_dim=32, seed=0)
        )
        trainer = Trainer(model, dataset, TrainConfig(epochs=4, batch_size=128, patience=0))
        trainer.fit()
        trained = trainer.test()
        random_result = Evaluator(dataset).evaluate(_RandomModel(dataset.vocab_size))
        # The tiny catalog (~50 items) gives random a high floor at K=10;
        # NDCG@5 separates trained from random much more sharply.
        assert trained["NDCG@5"] > 1.5 * random_result["NDCG@5"]
        assert trained["HR@10"] > random_result["HR@10"]

    def test_frequency_model_competitive_with_attention_on_periodic_data(self, dataset):
        """On frequency-structured data, SLIME4Rec should at least match
        SASRec under an identical small budget (the paper's core claim,
        shape level)."""
        config = TrainConfig(epochs=4, batch_size=128, patience=0)
        slime = Slime4Rec(
            SlimeConfig(num_items=dataset.num_items, max_len=16, hidden_dim=32, seed=0)
        )
        slime_tr = Trainer(slime, dataset, config)
        slime_tr.fit()
        sas = build_baseline("SASRec", dataset, hidden_dim=32, seed=0)
        sas_tr = Trainer(sas, dataset, config)
        sas_tr.fit()
        ours = slime_tr.test()["NDCG@10"]
        theirs = sas_tr.test()["NDCG@10"]
        assert ours >= theirs * 0.75, (ours, theirs)

    def test_checkpoint_transfer_between_instances(self, dataset):
        cfg = SlimeConfig(num_items=dataset.num_items, max_len=16, hidden_dim=32, seed=0)
        source = Slime4Rec(cfg)
        trainer = Trainer(source, dataset, TrainConfig(epochs=2, batch_size=128, patience=0))
        trainer.fit()
        clone = Slime4Rec(cfg)
        clone.load_state_dict(source.state_dict())
        inputs, _ = dataset.eval_arrays("test")
        source.eval(), clone.eval()
        assert np.allclose(
            source.predict_scores(inputs[:8]), clone.predict_scores(inputs[:8])
        )

    def test_fmlp_is_special_case_of_slime(self, dataset):
        """alpha=1 + DFS-only + no CL: the masks reduce to FMLP-Rec's
        global filter, so both models see identical frequency coverage."""
        slime = Slime4Rec(
            SlimeConfig(
                num_items=dataset.num_items, max_len=16, hidden_dim=32,
                alpha=1.0, use_sfs=False, cl_weight=0.0, seed=0,
            )
        )
        fmlp = build_baseline("FMLP-Rec", dataset, hidden_dim=32, seed=0)
        for s_layer, f_layer in zip(slime.layers, fmlp.layers):
            assert np.array_equal(s_layer.dfs_mask, f_layer.dfs_mask)
            assert s_layer.sfs_mask is None and f_layer.sfs_mask is None

    def test_float32_training_stable(self, dataset):
        """Default dtype (float32) must train without NaNs."""
        from repro.autograd.tensor import set_default_dtype

        set_default_dtype(np.float32)
        try:
            model = Slime4Rec(
                SlimeConfig(num_items=dataset.num_items, max_len=16, hidden_dim=32, seed=0)
            )
            trainer = Trainer(model, dataset, TrainConfig(epochs=2, batch_size=128, patience=0))
            history = trainer.fit()
            assert np.all(np.isfinite(history.losses))
        finally:
            set_default_dtype(np.float64)

    def test_all_slide_modes_trainable(self, dataset):
        for mode in (1, 2, 3, 4):
            model = Slime4Rec(
                SlimeConfig(
                    num_items=dataset.num_items, max_len=16, hidden_dim=16,
                    slide_mode=mode, seed=0,
                )
            )
            trainer = Trainer(model, dataset, TrainConfig(epochs=1, batch_size=128, patience=0))
            history = trainer.fit()
            assert np.isfinite(history.losses[0])
