"""Tier-1 gate: the repo's own source must lint clean.

This is the CI teeth of ``repro-lint``: every invariant rule (replay
coverage, dtype stability, grad-buffer ownership, serving lock
discipline, trip-point hygiene, export drift) runs over ``src/repro``
on every test run, against the committed justification-annotated
baseline.  A new violation fails the suite with the finding text; a
fixed violation fails too (stale baseline entry) so the baseline can
only shrink deliberately.
"""

from pathlib import Path

from repro.analysis.lint import format_findings, run_lint

ROOT = Path(__file__).resolve().parents[1]


def test_src_is_lint_clean():
    report = run_lint(
        [ROOT / "src" / "repro"],
        root=ROOT,
        baseline=ROOT / "lint_baseline.txt",
    )
    assert report.clean, (
        "repro-lint found new violations (fix them or baseline with a "
        "justification):\n" + format_findings(report.findings)
    )
    assert not report.stale_baseline, (
        "baseline entries no longer match any finding — remove them: "
        + ", ".join(report.stale_baseline)
    )


def test_lint_run_is_fast_enough_for_ci():
    report = run_lint(
        [ROOT / "src" / "repro"],
        root=ROOT,
        baseline=ROOT / "lint_baseline.txt",
    )
    assert report.duration < 5.0, (
        f"lint took {report.duration:.2f}s; the tier-1 budget is 5s"
    )
    assert report.files_analyzed > 80  # the whole package was scanned
