"""Analyzer self-tests: fixture-pinned true/false positives per rule.

Every rule R1–R6 gets at least one pinned true positive (the fixture
violation is found) and one pinned false positive (the known-good
sibling stays silent), plus pragma handling and the baseline
round-trip.  Fixtures live under ``tests/lint_fixtures/`` and are
parsed, never imported (``collect_ignore`` in conftest.py).
"""

from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    format_finding,
    load_baseline,
    render_baseline,
    run_lint,
)
from repro.analysis.lint.baseline import BaselineError
from repro.analysis.lint.cli import main as lint_main

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint(name, rules, **kwargs):
    kwargs.setdefault("root", FIXTURES)
    return run_lint([FIXTURES / name], rules=rules, **kwargs)


def details(report):
    return sorted(f.detail for f in report.findings)


# ----------------------------------------------------------------------
# R1 replay-coverage
# ----------------------------------------------------------------------
class TestReplayRule:
    def test_true_positives(self):
        report = lint("r1_replay.py", ["R1"])
        assert details(report) == [
            "ambient:forward:np.random.default_rng",
            "ambient:forward:time.time",
            "make-no-replay",
            "make-no-replay",
            "tensor-no-record",
        ]

    def test_false_positive_pins(self):
        assert lint("r1_clean.py", ["R1"]).findings == []

    def test_pragma_suppresses(self):
        assert lint("r1_replay.py", ["R1"]).suppressed == 1


# ----------------------------------------------------------------------
# R2 dtype-stability
# ----------------------------------------------------------------------
class TestDtypeRule:
    def test_true_positives(self):
        report = lint("r2_dtype.py", ["R2"])
        assert details(report) == [
            "alloc:array-literal:pad_op.forward",
            "alloc:zeros:pad_op.forward",
            "np-prod:mean_op.backward",
            "scalar-return:forward:.mean()",
            "scalar-return:forward:@",
        ]

    def test_false_positive_pins(self):
        assert lint("r2_clean.py", ["R2"]).findings == []

    def test_out_of_scope_modules_are_silent(self):
        assert lint("r2_out_of_scope.py", ["R2"]).findings == []

    def test_pragma_suppresses(self):
        assert lint("r2_dtype.py", ["R2"]).suppressed == 1


# ----------------------------------------------------------------------
# R3 buffer-ownership
# ----------------------------------------------------------------------
class TestGradRule:
    def test_true_positives(self):
        report = lint("r3_grad.py", ["R3"])
        forms = sorted(f.detail.split(":")[1] for f in report.findings)
        assert forms == sorted(
            [
                "augmented assignment",
                "slice assignment",
                "np.copyto",
                "out= target",
                ".fill()",
            ]
        )

    def test_false_positive_pins(self):
        assert lint("r3_clean.py", ["R3"]).findings == []

    def test_pragma_suppresses(self):
        assert lint("r3_grad.py", ["R3"]).suppressed == 1


# ----------------------------------------------------------------------
# R4 lock-discipline
# ----------------------------------------------------------------------
class TestLockRule:
    def test_true_positives(self):
        report = lint("r4_locks.py", ["R4"])
        assert details(report) == [
            "CondQueue.stale_len._items",
            "Counter.drain_async._count",
            "Counter.peek._count",
            "Counter.reset._count",
        ]

    def test_nested_closures_drop_the_held_set(self):
        report = lint("r4_locks.py", ["R4"])
        assert any(f.detail == "Counter.drain_async._count" for f in report.findings)

    def test_false_positive_pins(self):
        assert lint("r4_clean.py", ["R4"]).findings == []

    def test_pragma_suppresses(self):
        assert lint("r4_locks.py", ["R4"]).suppressed == 1


# ----------------------------------------------------------------------
# R5 trip-point hygiene
# ----------------------------------------------------------------------
class TestTripRule:
    def test_both_directions(self):
        root = FIXTURES / "trip_project"
        report = run_lint([root], root=root, rules=["R5"])
        assert details(report) == ["unknown:stage.missing", "untested:stage.flush"]

    def test_covered_point_is_silent(self):
        root = FIXTURES / "trip_project"
        report = run_lint([root], root=root, rules=["R5"])
        assert not any("stage.run" in (f.detail or "") for f in report.findings)


# ----------------------------------------------------------------------
# R6 export-drift
# ----------------------------------------------------------------------
class TestExportRule:
    def test_true_positives(self):
        report = lint("r6_exports.py", ["R6"])
        assert details(report) == ["drift:helper", "unresolved:vanished"]

    def test_false_positive_pins(self):
        assert lint("r6_clean.py", ["R6"]).findings == []

    def test_pragma_suppresses(self):
        assert lint("r6_exports.py", ["R6"]).suppressed == 1

    def test_cross_module_import_resolution(self):
        root = FIXTURES / "exports_project"
        report = run_lint([root / "src"], root=root, rules=["R6"])
        assert "import:mod_a.absent" in details(report)
        assert "import:mod_a.provided" not in details(report)


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_line_number_independent(self):
        a = Finding("R4", "unlocked", "x.py", 10, "C.m", "msg", "C.m.attr")
        b = Finding("R4", "unlocked", "x.py", 99, "C.m", "msg", "C.m.attr")
        assert a.fingerprint == b.fingerprint

    def test_distinct_scopes_differ(self):
        a = Finding("R4", "unlocked", "x.py", 10, "C.m", "msg", "C.m.attr")
        b = Finding("R4", "unlocked", "x.py", 10, "C.n", "msg", "C.n.attr")
        assert a.fingerprint != b.fingerprint

    def test_output_format_is_stable(self):
        f = Finding("R1", "replay", "src/a.py", 7, "op", "broken", "k")
        assert format_finding(f) == (
            f"src/a.py:7: R1 [{f.fingerprint}] op: broken"
        )


class TestBaseline:
    def test_round_trip(self, tmp_path):
        report = lint("r4_locks.py", ["R4"])
        assert report.findings
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            render_baseline(
                report.findings,
                {f.fingerprint: "accepted for the fixture" for f in report.findings},
            )
        )
        again = lint("r4_locks.py", ["R4"], baseline=baseline)
        assert again.findings == []
        assert len(again.baselined) == len(report.findings)
        assert again.stale_baseline == []

    def test_stale_entries_are_reported(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            "deadbeef00 R4 gone.py Class.method -- the finding was fixed\n"
        )
        report = lint("r4_clean.py", ["R4"], baseline=baseline)
        assert report.stale_baseline == ["deadbeef00"]

    def test_justification_is_mandatory(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("deadbeef00 R4 x.py scope\n")
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(baseline)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.txt") == {}


class TestCli:
    def test_findings_exit_code(self, capsys):
        rc = lint_main(
            [
                str(FIXTURES / "r3_grad.py"),
                "--root",
                str(FIXTURES),
                "--rules",
                "R3",
                "--no-baseline",
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "r3_grad.py" in out and "R3" in out

    def test_clean_exit_code(self, capsys):
        rc = lint_main(
            [
                str(FIXTURES / "r3_clean.py"),
                "--root",
                str(FIXTURES),
                "--rules",
                "R3",
                "--no-baseline",
            ]
        )
        assert rc == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        args = [
            str(FIXTURES / "r4_locks.py"),
            "--root",
            str(FIXTURES),
            "--rules",
            "R4",
            "--baseline",
            str(baseline),
        ]
        assert lint_main(args + ["--write-baseline"]) == 0
        assert baseline.is_file()
        assert lint_main(args) == 0  # everything baselined now

    def test_unknown_rule_is_usage_error(self, capsys):
        assert lint_main(["--rules", "R99", str(FIXTURES / "r3_clean.py")]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rule in out
