"""Tests for the real-file interaction loader."""

import pytest

from repro.data.loaders import load_interactions_file


class TestLoadInteractionsFile:
    def test_three_column_format(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 10 100.0\n1 11 101.0\n2 10 50.0\n")
        out = load_interactions_file(path)
        assert out == [(1, 10, 100.0), (1, 11, 101.0), (2, 10, 50.0)]

    def test_two_column_uses_line_number(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 10\n1 11\n")
        out = load_interactions_file(path)
        assert out[0][2] == 0.0 and out[1][2] == 1.0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("# header\n\n1 10 5.0\n")
        assert load_interactions_file(path) == [(1, 10, 5.0)]

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1,10,3.5\n")
        assert load_interactions_file(path, delimiter=",") == [(1, 10, 3.5)]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 10 1.0\njunk\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            load_interactions_file(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no interactions"):
            load_interactions_file(path)

    def test_round_trip_into_dataset(self, tmp_path):
        from repro.data.dataset import SequenceDataset

        lines = []
        for user in range(6):
            for t, item in enumerate(range(5)):
                lines.append(f"{user} {item} {t}")
        path = tmp_path / "dense.txt"
        path.write_text("\n".join(lines))
        ds = SequenceDataset(load_interactions_file(path), max_len=5)
        assert ds.num_users == 6 and ds.num_items == 5
