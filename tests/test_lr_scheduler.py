"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.optim import Adam
from repro.optim.lr_scheduler import ConstantLR, StepLR, WarmupCosineLR


@pytest.fixture
def optimizer():
    param = Tensor(np.zeros(2), requires_grad=True)
    return Adam([param], lr=0.1)


class TestConstantLR:
    def test_never_changes(self, optimizer):
        sched = ConstantLR(optimizer)
        for _ in range(10):
            assert sched.step() == 0.1


class TestStepLR:
    def test_decays_at_boundaries(self, optimizer):
        sched = StepLR(optimizer, step_size=3, gamma=0.5)
        lrs = [sched.step() for _ in range(7)]
        assert lrs[0] == lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.05)
        assert lrs[6] == pytest.approx(0.025)

    def test_mutates_optimizer(self, optimizer):
        sched = StepLR(optimizer, step_size=1, gamma=0.1)
        sched.step()
        assert optimizer.lr == pytest.approx(0.01)

    def test_invalid_step_size(self, optimizer):
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)


class TestWarmupCosine:
    def test_linear_warmup(self, optimizer):
        sched = WarmupCosineLR(optimizer, warmup_steps=4, total_steps=20)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([0.025, 0.05, 0.075, 0.1])

    def test_decays_to_min(self, optimizer):
        sched = WarmupCosineLR(optimizer, warmup_steps=2, total_steps=10, min_lr=0.01)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[-1] == pytest.approx(0.01, abs=1e-9)

    def test_monotone_decay_after_warmup(self, optimizer):
        sched = WarmupCosineLR(optimizer, warmup_steps=2, total_steps=12)
        lrs = [sched.step() for _ in range(12)]
        post = lrs[2:]
        assert all(a >= b for a, b in zip(post, post[1:]))

    def test_clamps_past_total(self, optimizer):
        sched = WarmupCosineLR(optimizer, warmup_steps=1, total_steps=5, min_lr=0.0)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.0, abs=1e-12)

    def test_invalid_totals(self, optimizer):
        with pytest.raises(ValueError):
            WarmupCosineLR(optimizer, warmup_steps=5, total_steps=5)
