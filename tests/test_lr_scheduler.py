"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.optim import Adam
from repro.optim.lr_scheduler import ConstantLR, StepLR, WarmupCosineLR


@pytest.fixture
def optimizer():
    param = Tensor(np.zeros(2), requires_grad=True)
    return Adam([param], lr=0.1)


class TestConstantLR:
    def test_never_changes(self, optimizer):
        sched = ConstantLR(optimizer)
        for _ in range(10):
            assert sched.step() == 0.1


class TestStepLR:
    def test_decays_at_boundaries(self, optimizer):
        sched = StepLR(optimizer, step_size=3, gamma=0.5)
        lrs = [sched.step() for _ in range(7)]
        assert lrs[0] == lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.05)
        assert lrs[6] == pytest.approx(0.025)

    def test_mutates_optimizer(self, optimizer):
        sched = StepLR(optimizer, step_size=1, gamma=0.1)
        sched.step()
        assert optimizer.lr == pytest.approx(0.01)

    def test_invalid_step_size(self, optimizer):
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)


class TestWarmupCosine:
    def test_linear_warmup(self, optimizer):
        sched = WarmupCosineLR(optimizer, warmup_steps=4, total_steps=20)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([0.025, 0.05, 0.075, 0.1])

    def test_decays_to_min(self, optimizer):
        sched = WarmupCosineLR(optimizer, warmup_steps=2, total_steps=10, min_lr=0.01)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[-1] == pytest.approx(0.01, abs=1e-9)

    def test_monotone_decay_after_warmup(self, optimizer):
        sched = WarmupCosineLR(optimizer, warmup_steps=2, total_steps=12)
        lrs = [sched.step() for _ in range(12)]
        post = lrs[2:]
        assert all(a >= b for a, b in zip(post, post[1:]))

    def test_clamps_past_total(self, optimizer):
        sched = WarmupCosineLR(optimizer, warmup_steps=1, total_steps=5, min_lr=0.0)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.0, abs=1e-12)

    def test_invalid_totals(self, optimizer):
        with pytest.raises(ValueError):
            WarmupCosineLR(optimizer, warmup_steps=5, total_steps=5)


class TestResume:
    """Rebuilding a scheduler mid-run must continue, not restart, the
    schedule — the base_lr re-anchoring bug."""

    def _reference_lrs(self, steps=12):
        param = Tensor(np.zeros(2), requires_grad=True)
        opt = Adam([param], lr=0.1)
        sched = WarmupCosineLR(opt, warmup_steps=4, total_steps=12)
        return [sched.step() for _ in range(steps)]

    def test_last_step_continues_warmup_cosine(self, optimizer):
        reference = self._reference_lrs()
        sched = WarmupCosineLR(optimizer, warmup_steps=4, total_steps=12)
        for _ in range(5):
            sched.step()
        # Rebuild against the *already-decayed* optimizer: without an
        # explicit anchor + last_step this would re-anchor warmup to
        # the decayed lr and restart from step 1.
        resumed = WarmupCosineLR(
            optimizer, warmup_steps=4, total_steps=12,
            last_step=sched.last_step, base_lr=sched.base_lr,
        )
        assert optimizer.lr == pytest.approx(reference[4])  # resync at build
        continued = [resumed.step() for _ in range(7)]
        assert continued == pytest.approx(reference[5:])

    def test_state_dict_round_trip(self, optimizer):
        reference = self._reference_lrs()
        sched = WarmupCosineLR(optimizer, warmup_steps=4, total_steps=12)
        for _ in range(3):
            sched.step()
        state = sched.state_dict()
        assert state == {"step": 3, "base_lr": 0.1}

        param = Tensor(np.zeros(2), requires_grad=True)
        fresh_opt = Adam([param], lr=0.05)  # wrong lr on purpose
        fresh = WarmupCosineLR(fresh_opt, warmup_steps=4, total_steps=12)
        fresh.load_state_dict(state)
        assert fresh.base_lr == pytest.approx(0.1)
        assert fresh_opt.lr == pytest.approx(reference[2])  # lr re-applied
        continued = [fresh.step() for _ in range(9)]
        assert continued == pytest.approx(reference[3:])

    def test_step_lr_resume(self, optimizer):
        sched = StepLR(optimizer, step_size=2, gamma=0.5)
        reference = [sched.step() for _ in range(6)]

        param = Tensor(np.zeros(2), requires_grad=True)
        opt = Adam([param], lr=0.1)
        resumed = StepLR(opt, step_size=2, gamma=0.5, last_step=4, base_lr=0.1)
        assert opt.lr == pytest.approx(reference[3])
        assert [resumed.step(), resumed.step()] == pytest.approx(reference[4:])

    def test_negative_last_step_rejected(self, optimizer):
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=2, last_step=-1)

    def test_fresh_scheduler_state_is_zero(self, optimizer):
        sched = ConstantLR(optimizer)
        assert sched.last_step == 0
        assert sched.state_dict() == {"step": 0, "base_lr": 0.1}

    def test_constant_lr_resyncs_at_construction(self, optimizer):
        ConstantLR(optimizer, last_step=3, base_lr=0.2)
        assert optimizer.lr == pytest.approx(0.2)
