"""Tests for ranking metrics and the full-catalog evaluator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.evaluation import Evaluator, hit_ratio_at_k, ndcg_at_k, rank_of_target


class TestRankOfTarget:
    def test_best_item_rank_zero(self):
        scores = np.array([[0.1, 0.9, 0.5]])
        assert rank_of_target(scores, np.array([1]))[0] == 0

    def test_worst_item(self):
        scores = np.array([[0.9, 0.5, 0.1]])
        assert rank_of_target(scores, np.array([2]))[0] == 2

    def test_tie_breaking_is_pessimistic_by_id(self):
        scores = np.array([[0.5, 0.5, 0.5]])
        # Equal scores: smaller ids rank ahead of the target.
        assert rank_of_target(scores, np.array([2]))[0] == 2
        assert rank_of_target(scores, np.array([0]))[0] == 0

    def test_batch(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9]])
        ranks = rank_of_target(scores, np.array([0, 0]))
        assert ranks.tolist() == [0, 1]

    @given(
        n_items=st.integers(2, 30),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_argsort_without_ties(self, n_items, seed):
        r = np.random.default_rng(seed)
        scores = r.permutation(n_items).astype(float)[None, :]  # unique scores
        target = int(r.integers(n_items))
        expected = int(np.where(np.argsort(-scores[0]) == target)[0][0])
        assert rank_of_target(scores, np.array([target]))[0] == expected


class TestMetrics:
    def test_hr_simple(self):
        assert hit_ratio_at_k([0, 4, 10], 5) == pytest.approx(2 / 3)

    def test_hr_empty(self):
        assert hit_ratio_at_k([], 5) == 0.0

    def test_ndcg_rank_zero_is_one(self):
        assert ndcg_at_k([0], 5) == pytest.approx(1.0)

    def test_ndcg_discount(self):
        assert ndcg_at_k([1], 5) == pytest.approx(1.0 / np.log2(3))

    def test_ndcg_outside_k_is_zero(self):
        assert ndcg_at_k([7], 5) == 0.0

    def test_ndcg_leq_hr(self):
        ranks = [0, 2, 9, 15]
        for k in (5, 10):
            assert ndcg_at_k(ranks, k) <= hit_ratio_at_k(ranks, k) + 1e-12

    @given(
        ranks=st.lists(st.integers(0, 50), min_size=1, max_size=30),
        k=st.integers(1, 20),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_property(self, ranks, k):
        hr = hit_ratio_at_k(ranks, k)
        ndcg = ndcg_at_k(ranks, k)
        assert 0.0 <= ndcg <= hr <= 1.0

    def test_monotonic_in_k(self):
        ranks = [0, 3, 8, 12, 40]
        hrs = [hit_ratio_at_k(ranks, k) for k in (1, 5, 10, 50)]
        assert hrs == sorted(hrs)


class _OracleModel:
    """Scores the true target highest — must achieve perfect metrics."""

    def __init__(self, dataset, split):
        inputs, targets = dataset.eval_arrays(split)
        self._lookup = {inp.tobytes(): t for inp, t in zip(inputs, targets)}
        self._vocab = dataset.vocab_size

    def eval(self):
        return self

    def predict_scores(self, input_ids):
        scores = np.zeros((input_ids.shape[0], self._vocab))
        for row, inp in enumerate(input_ids):
            scores[row, self._lookup[inp.tobytes()]] = 1.0
        return scores


class _AntiOracleModel(_OracleModel):
    def predict_scores(self, input_ids):
        return -super().predict_scores(input_ids)


@pytest.fixture
def dataset():
    cfg = SyntheticConfig(num_users=40, num_items=35, seed=4)
    return SequenceDataset(generate_interactions(cfg), max_len=8)


class TestRankOfTargetPaddingAndChunks:
    def test_exclude_padding_equals_neg_inf_masking(self):
        rng = np.random.default_rng(3)
        scores = rng.normal(size=(16, 12))
        targets = rng.integers(1, 12, size=16)
        masked = scores.copy()
        masked[:, 0] = -np.inf
        assert np.array_equal(
            rank_of_target(scores, targets, exclude_padding=True),
            rank_of_target(masked, targets),
        )

    def test_exclude_padding_rejects_padding_targets(self):
        with pytest.raises(ValueError):
            rank_of_target(np.zeros((2, 5)), np.array([0, 3]), exclude_padding=True)

    def test_exclude_padding_does_not_write_scores(self):
        scores = np.full((4, 6), 0.5)
        scores[:, 0] = 99.0  # padding would win without exclusion
        before = scores.copy()
        rank_of_target(scores, np.array([1, 2, 3, 4]), exclude_padding=True)
        assert np.array_equal(scores, before)

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 100])
    def test_chunked_ranks_identical(self, chunk_size):
        rng = np.random.default_rng(5)
        scores = rng.normal(size=(17, 9))
        targets = rng.integers(0, 9, size=17)
        assert np.array_equal(
            rank_of_target(scores, targets, chunk_size=chunk_size),
            rank_of_target(scores, targets),
        )


class _SharedBufferModel(_OracleModel):
    """Returns the same cached score buffer on every call.

    Models that cache or memoize their scores hand the evaluator a view
    of shared state; the evaluator must treat it as read-only.
    """

    def __init__(self, dataset, split):
        super().__init__(dataset, split)
        self._buffer = None

    def predict_scores(self, input_ids):
        scores = super().predict_scores(input_ids)
        scores[:, 0] = 100.0  # shared state that must survive evaluation
        self._buffer = scores
        return self._buffer


class TestEvaluator:
    def test_shared_score_buffer_not_corrupted(self, dataset):
        """Regression: ranks() used to write -inf into the model's buffer."""
        model = _SharedBufferModel(dataset, "test")
        result = Evaluator(dataset, ks=(1,)).evaluate(model, split="test")
        assert result["HR@1"] == 1.0  # padding still excluded from ranking
        assert np.allclose(model._buffer[:, 0], 100.0)  # buffer untouched
        assert np.all(np.isfinite(model._buffer))
    def test_oracle_scores_perfectly(self, dataset):
        ev = Evaluator(dataset, ks=(5, 10))
        result = ev.evaluate(_OracleModel(dataset, "test"), split="test")
        assert result["HR@5"] == 1.0
        assert result["NDCG@10"] == 1.0

    def test_anti_oracle_scores_zero_at_small_k(self, dataset):
        ev = Evaluator(dataset, ks=(1,))
        result = ev.evaluate(_AntiOracleModel(dataset, "test"), split="test")
        assert result["HR@1"] == 0.0

    def test_padding_item_never_recommended(self, dataset):
        class PadLover(_OracleModel):
            def predict_scores(self, input_ids):
                scores = super().predict_scores(input_ids)
                scores[:, 0] = 100.0  # tries to recommend padding
                return scores

        ev = Evaluator(dataset, ks=(1,))
        result = ev.evaluate(PadLover(dataset, "test"), split="test")
        # padding masked -> target still wins at rank 0
        assert result["HR@1"] == 1.0

    def test_valid_and_test_splits_differ(self, dataset):
        ev = Evaluator(dataset, ks=(5,))
        model = _OracleModel(dataset, "test")
        test_res = ev.evaluate(model, split="test")
        # the oracle for test is (almost surely) not the oracle for valid
        valid_inputs, _ = dataset.eval_arrays("valid")
        assert test_res["HR@5"] == 1.0

    def test_batched_evaluation_matches_single_batch(self, dataset):
        model = _OracleModel(dataset, "test")
        small = Evaluator(dataset, ks=(5,), batch_size=7).ranks(model)
        big = Evaluator(dataset, ks=(5,), batch_size=10_000).ranks(model)
        assert np.array_equal(small, big)

    def test_result_as_row_format(self, dataset):
        ev = Evaluator(dataset, ks=(5,))
        row = ev.evaluate(_OracleModel(dataset, "test")).as_row()
        assert "HR@5" in row and "NDCG@5" in row
