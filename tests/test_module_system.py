"""Tests for the Module registration / state_dict machinery."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn import Dropout, Linear, Module, ModuleList, Parameter


class Composite(Module):
    def __init__(self):
        super().__init__()
        self.inner = Linear(2, 3, rng=np.random.default_rng(0))
        self.scale = Parameter(np.ones(3))
        self.drop = Dropout(0.5)

    def forward(self, x):
        return self.inner(x)


class TestRegistration:
    def test_named_parameters_recursive(self):
        model = Composite()
        names = {n for n, _ in model.named_parameters()}
        assert names == {"inner.weight", "inner.bias", "scale"}

    def test_num_parameters(self):
        model = Composite()
        assert model.num_parameters() == 2 * 3 + 3 + 3

    def test_modules_iterates_tree(self):
        model = Composite()
        kinds = [type(m).__name__ for m in model.modules()]
        assert "Composite" in kinds and "Linear" in kinds and "Dropout" in kinds


class TestTrainEval:
    def test_eval_propagates(self):
        model = Composite()
        model.eval()
        assert not model.drop.training
        model.train()
        assert model.drop.training


class TestStateDict:
    def test_round_trip(self):
        a = Composite()
        b = Composite()
        b.inner.weight.data += 1.0
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.inner.weight.data, b.inner.weight.data)

    def test_state_dict_is_a_copy(self):
        model = Composite()
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] == 1.0

    def test_missing_key_raises(self):
        model = Composite()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = Composite()
        state = model.state_dict()
        state["ghost"] = np.ones(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Composite()
        state = model.state_dict()
        state["scale"] = np.ones(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestModuleList:
    def test_parameters_discovered(self):
        rng = np.random.default_rng(0)
        lst = ModuleList([Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)])
        assert len(lst) == 2
        assert len(list(lst)) == 2
        assert len({n for n, _ in lst.named_parameters()}) == 4

    def test_indexing(self):
        rng = np.random.default_rng(0)
        first = Linear(2, 2, rng=rng)
        lst = ModuleList([first])
        assert lst[0] is first

    def test_zero_grad_clears_all(self):
        model = Composite()
        for p in model.parameters():
            p.grad = np.ones_like(p.data)
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())
